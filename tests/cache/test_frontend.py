"""Tests for the cache front end: scalar streams -> line-grain commands,
and the end-to-end motivation experiment (cached scalar loop vs PVA
gathered loop)."""

import pytest

from repro.baselines.cacheline_serial import CacheLineSerialSDRAM
from repro.cache.frontend import CacheFrontEnd, ScalarAccess
from repro.cache.l2 import L2Cache
from repro.params import SystemParams
from repro.pva.system import PVAMemorySystem
from repro.types import AccessType, Vector, VectorCommand

PROTO = SystemParams()


class TestFeed:
    def test_unit_stride_loop_fills_once_per_line(self):
        frontend = CacheFrontEnd(PROTO)
        accesses = CacheFrontEnd.strided_loop(base=0, stride=1, length=128)
        commands = frontend.feed(accesses)
        assert len(commands) == 4  # 128 words / 32-word lines
        assert all(c.access is AccessType.READ for c in commands)
        assert all(c.vector.stride == 1 for c in commands)

    def test_strided_loop_fills_per_stride(self):
        frontend = CacheFrontEnd(PROTO)
        accesses = CacheFrontEnd.strided_loop(base=0, stride=16, length=64)
        commands = frontend.feed(accesses)
        # Two elements per 32-word line -> one fill per 2 accesses.
        assert len(commands) == 32

    def test_write_allocate_and_drain(self):
        frontend = CacheFrontEnd(PROTO)
        accesses = CacheFrontEnd.strided_loop(
            base=0, stride=1, length=32, is_write=True
        )
        commands = frontend.feed(accesses)
        assert len(commands) == 1  # the allocate fill
        drained = frontend.drain()
        assert len(drained) == 1
        assert drained[0].access is AccessType.WRITE

    def test_eviction_emits_writeback_before_fill(self):
        cache = L2Cache(total_words=64, associativity=1, line_words=32)
        frontend = CacheFrontEnd(PROTO, cache=cache)
        # Write line 0, then touch a conflicting line (2 sets: lines 0 and
        # 2 share set 0).
        frontend.feed([ScalarAccess(0, is_write=True)])
        commands = frontend.feed([ScalarAccess(128)])
        assert [c.access for c in commands] == [
            AccessType.WRITE,
            AccessType.READ,
        ]
        assert commands[0].vector.base == 0

    def test_traffic_words(self):
        frontend = CacheFrontEnd(PROTO)
        commands = frontend.feed(
            CacheFrontEnd.strided_loop(base=0, stride=8, length=32)
        )
        assert frontend.traffic_words(commands) == len(commands) * 32


class TestMotivationExperiment:
    """Chapter 1, quantified: the same strided loop through a cache
    versus through the PVA's scatter/gather."""

    @pytest.mark.parametrize("stride", [4, 16, 19])
    def test_pva_moves_fewer_words(self, stride):
        length = 512
        frontend = CacheFrontEnd(PROTO)
        cached_commands = frontend.feed(
            CacheFrontEnd.strided_loop(base=0, stride=stride, length=length)
        )
        cached_traffic = frontend.traffic_words(cached_commands)
        # The PVA path: gathered commands carry only useful elements.
        vector = Vector(base=0, stride=stride, length=length)
        pva_traffic = sum(
            piece.length
            for piece in vector.split(PROTO.cache_line_words)
        )
        assert pva_traffic == length
        assert cached_traffic > 2 * pva_traffic

    @pytest.mark.parametrize("stride", [16, 19])
    def test_pva_faster_end_to_end(self, stride):
        """Run both command streams on their memory systems: cached
        scalar loop on the line-fill system, gathered loop on the PVA."""
        length = 512
        frontend = CacheFrontEnd(PROTO)
        cached_commands = frontend.feed(
            CacheFrontEnd.strided_loop(base=0, stride=stride, length=length)
        )
        conventional = CacheLineSerialSDRAM(PROTO).run(cached_commands)
        vector = Vector(base=0, stride=stride, length=length)
        gathered = [
            VectorCommand(vector=piece, access=AccessType.READ)
            for piece in vector.split(PROTO.cache_line_words)
        ]
        pva = PVAMemorySystem(PROTO).run(gathered)
        assert pva.cycles < conventional.cycles

    def test_cache_utilization_collapses_with_stride(self):
        """The pollution metric: ~100% at unit stride, ~1/32 at stride 32."""
        unit = CacheFrontEnd(PROTO)
        unit.feed(CacheFrontEnd.strided_loop(0, 1, 1024))
        strided = CacheFrontEnd(PROTO)
        strided.feed(CacheFrontEnd.strided_loop(0, 32, 1024))
        line = PROTO.cache_line_words
        assert unit.cache.stats.utilization(line) == 1.0
        assert strided.cache.stats.utilization(line) == pytest.approx(
            1 / 32
        )

"""Tests for the L2 cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.l2 import L2Cache
from repro.errors import ConfigurationError


def small_cache(**kwargs):
    defaults = dict(total_words=1024, associativity=2, line_words=8)
    defaults.update(kwargs)
    return L2Cache(**defaults)


class TestConstruction:
    def test_geometry(self):
        cache = small_cache()
        assert cache.num_sets == 64
        assert cache.line_words == 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            L2Cache(total_words=1000)
        with pytest.raises(ConfigurationError):
            L2Cache(line_words=10)
        with pytest.raises(ConfigurationError):
            L2Cache(associativity=0)
        with pytest.raises(ConfigurationError):
            L2Cache(total_words=64, associativity=3, line_words=8)


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        hit, writeback = cache.access(100)
        assert not hit and writeback is None
        hit, _ = cache.access(100)
        assert hit
        hit, _ = cache.access(103)  # same line
        assert hit
        assert cache.stats.misses == 1
        assert cache.stats.hits == 2

    def test_line_granularity(self):
        cache = small_cache()
        cache.access(0)
        assert cache.contains(7)
        assert not cache.contains(8)

    def test_lru_eviction(self):
        cache = small_cache(total_words=32, associativity=2, line_words=8)
        # 2 sets x 2 ways. Lines 0, 2, 4 all map to set 0.
        cache.access(0)
        cache.access(16)
        cache.access(0)  # touch line 0: line 16 becomes LRU
        cache.access(32)  # evicts line 16
        assert cache.contains(0)
        assert not cache.contains(16)
        assert cache.contains(32)

    def test_dirty_eviction_returns_writeback(self):
        cache = small_cache(total_words=32, associativity=2, line_words=8)
        cache.access(0, is_write=True)
        cache.access(16)
        _, writeback = cache.access(32)  # evicts dirty line 0
        assert writeback == 0
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = small_cache(total_words=32, associativity=2, line_words=8)
        cache.access(0)
        cache.access(16)
        _, writeback = cache.access(32)
        assert writeback is None

    def test_flush(self):
        cache = small_cache()
        cache.access(0, is_write=True)
        cache.access(64, is_write=True)
        cache.access(128)
        writebacks = cache.flush()
        assert sorted(writebacks) == [0, 64]
        assert cache.flush() == []  # now clean


class TestPollutionAccounting:
    def test_unit_stride_full_utilization(self):
        cache = small_cache()
        for i in range(64):
            cache.access(i)
        assert cache.stats.utilization(cache.line_words) == 1.0

    def test_large_stride_poor_utilization(self):
        """Stride == line size: one useful word per fetched line —
        chapter 1's pollution argument."""
        cache = small_cache()
        for i in range(32):
            cache.access(i * 8)
        assert cache.stats.utilization(cache.line_words) == pytest.approx(
            1 / 8
        )

    @given(stride=st.integers(1, 16))
    @settings(max_examples=20, deadline=None)
    def test_utilization_tracks_inverse_stride(self, stride):
        cache = L2Cache(total_words=1 << 14, associativity=4, line_words=8)
        for i in range(200):
            cache.access(i * stride)
        utilization = cache.stats.utilization(cache.line_words)
        assert 0.0 < utilization <= 1.0
        if stride in (1, 2, 4, 8):
            # Power-of-two divisor strides: exactly line/stride useful
            # words per fetched line.
            assert utilization == pytest.approx(1 / stride)
        if stride > 8:
            # At most one word per line is useful.
            assert utilization == pytest.approx(1 / 8)

    def test_miss_rate(self):
        cache = small_cache()
        for i in range(16):
            cache.access(i)
        assert cache.stats.miss_rate == pytest.approx(2 / 16)

"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            if name == "ReproError":
                continue
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_timing_violation_is_scheduling_error(self):
        assert issubclass(errors.TimingViolation, errors.SchedulingError)

    def test_catch_all(self):
        """A single except clause covers every library failure."""
        with pytest.raises(errors.ReproError):
            raise errors.VectorSpecError("bad vector")
        with pytest.raises(errors.ReproError):
            raise errors.TimingViolation("tRP violated")

    def test_exports_are_complete(self):
        declared = set(errors.__all__)
        defined = {
            name
            for name, value in vars(errors).items()
            if isinstance(value, type) and issubclass(value, Exception)
        }
        assert declared == defined

    def test_engine_errors_are_engine_errors(self):
        assert issubclass(errors.PointFailedError, errors.EngineError)
        assert issubclass(errors.IncompleteBatchError, errors.EngineError)


class TestRaiseSites:
    """Every public error class is raised by at least one documented
    library site, and each is catchable as ReproError (asserted by the
    ``pytest.raises(errors.ReproError)`` outer check in each test)."""

    def _raises(self, expected):
        # The specific class *and* the base must both catch it.
        assert issubclass(expected, errors.ReproError)
        return pytest.raises(expected)

    def test_configuration_error_from_invalid_params(self):
        from repro.params import SystemParams

        with self._raises(errors.ConfigurationError):
            SystemParams(num_banks=3)  # not a power of two

    def test_vector_spec_error_from_bit_reverse(self):
        from repro.extensions.bitreversal import bit_reverse

        with self._raises(errors.VectorSpecError):
            bit_reverse(1, bits=-1)

    def test_address_error_from_shadow_translate(self):
        from repro.extensions.shadow import ShadowRegion

        region = ShadowRegion(
            shadow_base=0, target_base=0, stride=2, length=8
        )
        with self._raises(errors.AddressError):
            region.translate(8)  # one past the end

    def test_protocol_error_from_busy_vector_bus(self):
        from repro.bus.vector_bus import VectorBus
        from repro.params import SystemParams

        bus = VectorBus(SystemParams())
        bus.broadcast_request(0, request_cycles=4)
        with self._raises(errors.ProtocolError):
            bus.broadcast_request(1)  # claimed while busy

    def test_scheduling_error_from_column_without_open_row(self):
        from repro.params import SDRAMTiming
        from repro.sdram.bank import InternalBank

        bank = InternalBank(0, SDRAMTiming())
        with self._raises(errors.SchedulingError):
            bank.column(0, is_write=False, auto_precharge=False)

    def test_timing_violation_from_busy_restimer(self):
        from repro.sdram.restimer import Restimer

        timer = Restimer("t_rcd")
        timer.hold_until(10)
        with self._raises(errors.TimingViolation):
            timer.check(5)

    def test_tlb_miss_error_from_unmapped_address(self):
        from repro.vm import MMCTLB

        tlb = MMCTLB.identity(total_words=1024, page_words=256)
        with self._raises(errors.TLBMissError):
            tlb.lookup(4096)

    def test_capacity_error_from_full_staging_unit(self):
        from repro.pva.staging import ReadStagingUnit

        unit = ReadStagingUnit(capacity=1)
        unit.open(0, expected=4)
        with self._raises(errors.CapacityError):
            unit.open(1, expected=4)

    def test_simulation_timeout_from_watchdog(self):
        from repro.sim.runner import SimulationLimits, Watchdog

        dog = Watchdog(1, limits=SimulationLimits(max_cycles_per_command=4))
        with self._raises(errors.SimulationTimeout):
            dog.check(5)

    def test_point_failed_error_from_batch_result(self):
        from repro.engine import BatchResult, ExperimentPoint, KernelTraceSpec
        from repro.engine.resilience import PointFailure

        failure = PointFailure(
            index=0,
            point=ExperimentPoint(
                system="pva-sdram",
                trace=KernelTraceSpec(kernel="copy", stride=1, elements=64),
            ),
            error_type="InjectedFault",
            message="boom",
            traceback="",
            attempts=1,
        )
        with self._raises(errors.PointFailedError):
            BatchResult([None], [failure]).raise_if_failed()

    def test_incomplete_batch_error_from_lost_point(self, monkeypatch):
        from repro.engine import (
            ExperimentEngine,
            ExperimentPoint,
            KernelTraceSpec,
        )

        engine = ExperimentEngine(jobs=1)
        monkeypatch.setattr(engine, "_execute", lambda pending, abort=None: iter(()))
        with self._raises(errors.IncompleteBatchError):
            engine.run(
                [
                    ExperimentPoint(
                        system="pva-sdram",
                        trace=KernelTraceSpec(
                            kernel="copy", stride=1, elements=64
                        ),
                    )
                ]
            )

    def test_cache_integrity_error_from_invalid_put(self, tmp_path):
        from repro.engine import ResultCache

        with self._raises(errors.CacheIntegrityError):
            ResultCache(tmp_path).put("ab" + "0" * 62, {"cycles": -1})

"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            if name == "ReproError":
                continue
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_timing_violation_is_scheduling_error(self):
        assert issubclass(errors.TimingViolation, errors.SchedulingError)

    def test_catch_all(self):
        """A single except clause covers every library failure."""
        with pytest.raises(errors.ReproError):
            raise errors.VectorSpecError("bad vector")
        with pytest.raises(errors.ReproError):
            raise errors.TimingViolation("tRP violated")

    def test_exports_are_complete(self):
        declared = set(errors.__all__)
        defined = {
            name
            for name, value in vars(errors).items()
            if isinstance(value, type) and issubclass(value, Exception)
        }
        assert declared == defined

"""Tests for per-bank subvector descriptors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.subvector import SubVector, subvectors_by_bank
from repro.types import Vector, expand_reference


@st.composite
def vectors(draw):
    return Vector(
        base=draw(st.integers(0, 2048)),
        stride=draw(st.integers(1, 128)),
        length=draw(st.integers(1, 96)),
    )


class TestSubvectorsByBank:
    @given(v=vectors(), m=st.sampled_from([1, 2, 4, 8, 16, 32]))
    @settings(max_examples=200)
    def test_partition_of_indices(self, v, m):
        """Every vector index appears in exactly one bank's subvector."""
        subs = subvectors_by_bank(v, m)
        seen = {}
        for bank, sub in subs.items():
            for index in sub.indices():
                assert index not in seen
                seen[index] = bank
        assert sorted(seen) == list(range(v.length))

    @given(v=vectors(), m=st.sampled_from([1, 2, 4, 8, 16, 32]))
    @settings(max_examples=200)
    def test_addresses_match_reference(self, v, m):
        subs = subvectors_by_bank(v, m)
        reference = {e.index: e.address for e in expand_reference(v)}
        for sub in subs.values():
            for index, address in zip(sub.indices(), sub.addresses()):
                assert address == reference[index]
                assert address % m == sub.bank

    @given(v=vectors(), m=st.sampled_from([2, 4, 8, 16]))
    @settings(max_examples=100)
    def test_counts_sum_to_length(self, v, m):
        subs = subvectors_by_bank(v, m)
        assert sum(s.count for s in subs.values()) == v.length

    def test_every_bank_represented(self):
        v = Vector(base=0, stride=2, length=4)
        subs = subvectors_by_bank(v, 16)
        assert set(subs) == set(range(16))
        assert subs[1].is_empty
        assert not subs[0].is_empty


class TestSubVectorFields:
    def test_address_step_is_stride_times_delta(self):
        v = Vector(base=0, stride=6, length=32)  # 6 = 3*2^1, delta = 8
        subs = subvectors_by_bank(v, 16)
        for sub in subs.values():
            assert sub.delta == 8
            assert sub.address_step == 48

    def test_address_step_multiple_of_banks(self):
        """The local-address step (address_step / M) must be integral —
        the property the bank controller's shift-and-add relies on."""
        for stride in range(1, 40):
            v = Vector(base=0, stride=stride, length=64)
            for sub in subvectors_by_bank(v, 16).values():
                assert sub.address_step % 16 == 0

    def test_last_index(self):
        v = Vector(base=0, stride=1, length=32)
        sub = subvectors_by_bank(v, 16)[3]
        assert sub.first_index == 3
        assert sub.count == 2
        assert sub.last_index == 19

    def test_last_index_empty_raises(self):
        sub = SubVector(
            bank=0,
            first_index=0,
            delta=1,
            count=0,
            first_address=0,
            address_step=16,
        )
        with pytest.raises(ValueError):
            _ = sub.last_index

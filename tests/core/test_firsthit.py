"""Tests for the word-interleave FirstHit/NextHit theorems (section 4.1.4).

The closed forms are validated exhaustively against brute-force expansion
on small grids and property-tested with hypothesis on larger ones.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cacheline import first_hit_bruteforce
from repro.core.firsthit import (
    NO_HIT,
    bank_subvector,
    first_hit,
    hit_count,
    next_hit,
)
from repro.errors import ConfigurationError
from repro.types import Vector, expand_reference

BANK_COUNTS = [1, 2, 4, 8, 16, 32]


class TestNextHit:
    def test_theorem_44_values(self):
        assert next_hit(1, 16) == 16
        assert next_hit(2, 16) == 8
        assert next_hit(10, 16) == 8  # 10 = 5*2^1
        assert next_hit(19, 16) == 16

    def test_single_bank_stride(self):
        """S mod M == 0: the bank holds every element."""
        assert next_hit(16, 16) == 1
        assert next_hit(32, 16) == 1

    @given(
        stride=st.integers(1, 500),
        m=st.sampled_from(BANK_COUNTS),
    )
    def test_next_hit_revisits_same_bank(self, stride, m):
        """If a bank holds V[n], it also holds V[n + delta]."""
        delta = next_hit(stride, m)
        v = Vector(base=0, stride=stride, length=4 * m + delta + 1)
        banks = [a % m for a in v.addresses()]
        for n in range(len(banks) - delta):
            assert banks[n] == banks[n + delta]

    @given(
        stride=st.integers(1, 500),
        m=st.sampled_from([2, 4, 8, 16, 32]),
    )
    def test_next_hit_is_minimal(self, stride, m):
        """No smaller positive increment revisits the bank."""
        delta = next_hit(stride, m)
        v = Vector(base=0, stride=stride, length=delta + 1)
        banks = [a % m for a in v.addresses()]
        for smaller in range(1, delta):
            assert banks[0] != banks[smaller]


class TestFirstHitExhaustive:
    @pytest.mark.parametrize("m", [1, 2, 4, 8, 16])
    def test_matches_bruteforce_small_grid(self, m):
        """Exhaustive check over bases, strides and banks."""
        for base in range(0, 2 * m, max(1, m // 4)):
            for stride in range(1, 2 * m + 2):
                v = Vector(base=base, stride=stride, length=2 * m + 3)
                for bank in range(m):
                    assert first_hit(v, bank, m) == first_hit_bruteforce(
                        v, bank, m
                    ), (base, stride, bank, m)

    def test_paper_stride_10_sequence(self):
        """Section 4.1.4: with M=16, stride 10 hits banks
        2,12,6,0,10,4,14,8,2,... from base bank 2."""
        v = Vector(base=2, stride=10, length=9)
        banks = [a % 16 for a in v.addresses()]
        assert banks == [2, 12, 6, 0, 10, 4, 14, 8, 2]
        # Every even bank gets a hit (s=1 -> every 2nd bank), odd banks none.
        for bank in range(16):
            hit = first_hit(v, bank, 16)
            if bank % 2 == 0:
                assert hit is not NO_HIT
            else:
                assert hit is NO_HIT

    def test_base_bank_hits_at_zero(self):
        """Case 0: the base bank's first hit is always index 0."""
        for stride in range(1, 40):
            v = Vector(base=7, stride=stride, length=3)
            assert first_hit(v, 7 % 16, 16) == 0

    def test_short_vector_misses_distant_banks(self):
        """K_i >= L means no hit even when lemma 4.2 allows the bank."""
        v = Vector(base=0, stride=1, length=4)
        assert first_hit(v, 3, 16) == 3
        assert first_hit(v, 4, 16) is NO_HIT

    def test_invalid_bank(self):
        v = Vector(base=0, stride=1, length=4)
        with pytest.raises(ConfigurationError):
            first_hit(v, 16, 16)
        with pytest.raises(ConfigurationError):
            first_hit(v, -1, 16)


@st.composite
def vectors(draw):
    return Vector(
        base=draw(st.integers(0, 4096)),
        stride=draw(st.integers(1, 256)),
        length=draw(st.integers(1, 128)),
    )


class TestFirstHitProperties:
    @given(v=vectors(), m=st.sampled_from(BANK_COUNTS))
    @settings(max_examples=200)
    def test_matches_bruteforce(self, v, m):
        for bank in range(m):
            assert first_hit(v, bank, m) == first_hit_bruteforce(v, bank, m)

    @given(v=vectors(), m=st.sampled_from(BANK_COUNTS))
    @settings(max_examples=200)
    def test_partition_property(self, v, m):
        """Every element is claimed by exactly one bank, and the union of
        bank subvectors reproduces the vector exactly."""
        claimed = {}
        for bank in range(m):
            for address in bank_subvector(v, bank, m):
                assert address not in claimed
                claimed[address] = bank
        reference = {e.address: e.address % m for e in expand_reference(v)}
        assert claimed == reference

    @given(v=vectors(), m=st.sampled_from(BANK_COUNTS))
    @settings(max_examples=200)
    def test_hit_count_sums_to_length(self, v, m):
        assert sum(hit_count(v, bank, m) for bank in range(m)) == v.length

    @given(v=vectors(), m=st.sampled_from([2, 4, 8, 16]))
    @settings(max_examples=100)
    def test_first_hit_is_minimal(self, v, m):
        """No earlier element of the vector lands on the bank."""
        for bank in range(m):
            k = first_hit(v, bank, m)
            if k is NO_HIT:
                for e in expand_reference(v):
                    assert e.address % m != bank
            else:
                assert v.element_address(k) % m == bank
                for i in range(k):
                    assert v.element_address(i) % m != bank


class TestBankSubvector:
    def test_empty_for_missed_bank(self):
        v = Vector(base=0, stride=2, length=8)
        assert bank_subvector(v, 1, 16) == []

    def test_addresses_in_index_order(self):
        v = Vector(base=0, stride=3, length=32)
        sub = bank_subvector(v, 0, 16)
        # delta = 16 for odd stride: indices 0 and 16.
        assert sub == [0, 48]

    def test_single_bank_stride_gets_everything(self):
        v = Vector(base=5, stride=16, length=10)
        sub = bank_subvector(v, 5, 16)
        assert sub == list(v.addresses())

"""Tests for the shared value types (vectors and commands)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import VectorSpecError
from repro.types import (
    AccessType,
    ElementAccess,
    ExplicitCommand,
    Vector,
    VectorCommand,
    expand_reference,
)


class TestVectorValidation:
    def test_negative_base_rejected(self):
        with pytest.raises(VectorSpecError):
            Vector(base=-1, stride=1, length=1)

    def test_zero_length_rejected(self):
        with pytest.raises(VectorSpecError):
            Vector(base=0, stride=1, length=0)

    def test_negative_length_rejected(self):
        with pytest.raises(VectorSpecError):
            Vector(base=0, stride=1, length=-5)

    def test_zero_stride_rejected(self):
        with pytest.raises(VectorSpecError):
            Vector(base=0, stride=0, length=4)

    def test_negative_stride_rejected(self):
        with pytest.raises(VectorSpecError):
            Vector(base=0, stride=-4, length=4)

    def test_valid_vector_constructs(self):
        v = Vector(base=8, stride=3, length=5)
        assert (v.base, v.stride, v.length) == (8, 3, 5)


class TestVectorAddressing:
    def test_paper_example(self):
        """V = <A, 4, 5> designates A[0], A[4], A[8], A[12], A[16]."""
        v = Vector(base=0, stride=4, length=5)
        assert list(v.addresses()) == [0, 4, 8, 12, 16]

    def test_element_address(self):
        v = Vector(base=10, stride=7, length=4)
        assert v.element_address(0) == 10
        assert v.element_address(3) == 31

    def test_element_address_out_of_range(self):
        v = Vector(base=10, stride=7, length=4)
        with pytest.raises(IndexError):
            v.element_address(4)
        with pytest.raises(IndexError):
            v.element_address(-1)

    def test_last_address(self):
        v = Vector(base=5, stride=9, length=10)
        assert v.last_address == 5 + 9 * 9

    def test_span_words(self):
        assert Vector(base=0, stride=1, length=32).span_words == 32
        assert Vector(base=0, stride=4, length=8).span_words == 29

    @given(
        base=st.integers(0, 10**6),
        stride=st.integers(1, 100),
        length=st.integers(1, 200),
    )
    def test_addresses_are_arithmetic_progression(self, base, stride, length):
        v = Vector(base=base, stride=stride, length=length)
        addresses = list(v.addresses())
        assert len(addresses) == length
        assert addresses[0] == base
        assert all(
            b - a == stride for a, b in zip(addresses, addresses[1:])
        )


class TestVectorSplit:
    def test_split_exact_chunks(self):
        v = Vector(base=0, stride=2, length=96)
        pieces = v.split(32)
        assert [p.length for p in pieces] == [32, 32, 32]
        assert pieces[1].base == 64
        assert pieces[2].base == 128

    def test_split_with_remainder(self):
        v = Vector(base=3, stride=5, length=70)
        pieces = v.split(32)
        assert [p.length for p in pieces] == [32, 32, 6]

    def test_split_preserves_addresses(self):
        v = Vector(base=7, stride=3, length=50)
        joined = []
        for piece in v.split(16):
            joined.extend(piece.addresses())
        assert joined == list(v.addresses())

    def test_split_invalid_max(self):
        with pytest.raises(VectorSpecError):
            Vector(base=0, stride=1, length=4).split(0)

    @given(
        length=st.integers(1, 300),
        stride=st.integers(1, 40),
        chunk=st.integers(1, 64),
    )
    def test_split_total_length(self, length, stride, chunk):
        v = Vector(base=0, stride=stride, length=length)
        pieces = v.split(chunk)
        assert sum(p.length for p in pieces) == length
        assert all(p.length <= chunk for p in pieces)


class TestCommands:
    def test_read_write_flags(self):
        v = Vector(base=0, stride=1, length=4)
        r = VectorCommand(vector=v, access=AccessType.READ)
        w = VectorCommand(vector=v, access=AccessType.WRITE)
        assert r.is_read and not r.is_write
        assert w.is_write and not w.is_read

    def test_access_type_properties(self):
        assert AccessType.READ.is_read
        assert AccessType.WRITE.is_write
        assert not AccessType.READ.is_write

    def test_explicit_command_validation(self):
        with pytest.raises(VectorSpecError):
            ExplicitCommand(addresses=(), access=AccessType.READ, broadcast_cycles=1)
        with pytest.raises(VectorSpecError):
            ExplicitCommand(
                addresses=(1, -2), access=AccessType.READ, broadcast_cycles=1
            )
        with pytest.raises(VectorSpecError):
            ExplicitCommand(
                addresses=(1,), access=AccessType.READ, broadcast_cycles=0
            )

    def test_explicit_command_length(self):
        cmd = ExplicitCommand(
            addresses=(4, 9, 1), access=AccessType.WRITE, broadcast_cycles=3
        )
        assert cmd.length == 3
        assert cmd.is_write


class TestExpandReference:
    def test_expansion_matches_addresses(self):
        v = Vector(base=6, stride=11, length=7)
        ref = expand_reference(v)
        assert [e.index for e in ref] == list(range(7))
        assert [e.address for e in ref] == list(v.addresses())

    def test_element_access_fields(self):
        e = ElementAccess(index=2, address=40)
        assert e.index == 2 and e.address == 40

"""Tests for the general cache-line-interleave algorithms (section 4.1.2)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cacheline import (
    CaseAnalysis,
    InterleaveCase,
    bank_sequence,
    classify_case,
    first_hit_bruteforce,
    next_hit_exact,
    next_hit_paper,
)
from repro.errors import VectorSpecError
from repro.types import Vector


class TestPaperExamples:
    """The four worked examples of section 4.1.2 (M=8, N=4)."""

    def test_example_1_case_1(self):
        v = Vector(base=0, stride=8, length=16)
        analysis = classify_case(v, bank=3, num_banks=8, block_words=4)
        assert analysis.case is InterleaveCase.CASE_1
        assert (analysis.theta, analysis.delta_theta, analysis.delta_b) == (
            0,
            0,
            2,
        )
        assert bank_sequence(v, 8, 4)[:8] == [0, 2, 4, 6, 0, 2, 4, 6]

    def test_example_2_case_1_offset_base(self):
        v = Vector(base=5, stride=8, length=16)
        analysis = classify_case(v, bank=3, num_banks=8, block_words=4)
        assert analysis.case is InterleaveCase.CASE_1
        assert analysis.theta == 1
        assert bank_sequence(v, 8, 4)[:8] == [1, 3, 5, 7, 1, 3, 5, 7]

    def test_example_3_case_2_1(self):
        v = Vector(base=0, stride=9, length=4)
        analysis = classify_case(v, bank=3, num_banks=8, block_words=4)
        assert analysis.case is InterleaveCase.CASE_2_1
        assert (analysis.delta_theta, analysis.delta_b) == (1, 2)
        assert bank_sequence(v, 8, 4) == [0, 2, 4, 6]

    def test_example_4_case_2_2(self):
        v = Vector(base=0, stride=9, length=10)
        analysis = classify_case(v, bank=3, num_banks=8, block_words=4)
        assert analysis.case is InterleaveCase.CASE_2_2
        assert bank_sequence(v, 8, 4) == [0, 2, 4, 6, 1, 3, 5, 7, 2, 4]

    def test_case_0_base_bank(self):
        v = Vector(base=13, stride=9, length=10)
        analysis = classify_case(v, bank=3, num_banks=8, block_words=4)
        assert analysis.case is InterleaveCase.CASE_0


class TestNextHitExact:
    def test_word_interleave_reduces_to_theorem(self):
        """With N=1 the exact solver agrees with 2^(m-s)."""
        from repro.core.firsthit import next_hit

        for stride in range(1, 33):
            assert next_hit_exact(0, stride, 16, 1) == next_hit(stride, 16)

    def test_simple_block_case(self):
        # M=4, N=4, stride 1: next element in the same bank block.
        assert next_hit_exact(0, 1, 4, 4) == 1
        # theta=3, stride 1: the next element spills to the next bank;
        # the same bank is revisited a full rotation later.
        assert next_hit_exact(3, 1, 4, 4) == 13

    def test_validation(self):
        with pytest.raises(VectorSpecError):
            next_hit_exact(4, 1, 4, 4)  # theta out of range
        with pytest.raises(VectorSpecError):
            next_hit_exact(0, 0, 4, 4)

    @given(
        theta=st.integers(0, 3),
        stride=st.integers(1, 127),
    )
    @settings(max_examples=200)
    def test_exact_matches_linear_scan(self, theta, stride):
        """The solver's answer is the first p with
        (theta + p*stride) mod NM < N — verified by naive scan."""
        m, n = 8, 4
        nm = m * n
        result = next_hit_exact(theta, stride, m, n)
        period = nm // math.gcd(stride % nm if stride % nm else nm, nm)
        naive = None
        for p in range(1, period + 1):
            if (theta + p * stride) % nm < n:
                naive = p
                break
        assert result == naive


class TestNextHitPaperPort:
    """Characterisation of the draft paper's recursive C routine.

    The routine is documented as assuming a hit exists and the stride is
    pre-reduced; we verify it agrees with the exact semantics across the
    region where those assumptions hold, and record (rather than hide)
    where the draft code diverges.
    """

    def agreement_fraction(self, m, n):
        nm = m * n
        total = agree = 0
        for theta in range(n):
            for stride in range(1, nm):
                exact = next_hit_exact(theta, stride, m, n)
                if exact is None:
                    continue
                total += 1
                try:
                    if next_hit_paper(theta, stride, nm, n) == exact:
                        agree += 1
                except (ZeroDivisionError, RecursionError):
                    pass
        return agree / total

    def test_agrees_for_small_strides(self):
        """stride < N (the first branch) is exact whenever
        theta + stride stays in the block."""
        m, n = 8, 4
        for theta in range(n):
            for stride in range(1, n):
                if theta + stride < n:
                    assert next_hit_paper(theta, stride, m * n, n) == 1

    def test_agrees_with_exact_mostly(self):
        """The draft routine matches the exact solver on the vast
        majority of the input space (it was validated in Verilog against
        common cases; the tail divergences are draft-paper artefacts)."""
        fraction = self.agreement_fraction(8, 4)
        assert fraction > 0.9, f"agreement only {fraction:.2%}"

    def test_word_interleave_whole_block_hit(self):
        """N=1... stride multiple of NM: next hit after NM/stride."""
        assert next_hit_paper(0, 8, 32, 1) == 4


class TestBruteforce:
    def test_finds_first_index(self):
        v = Vector(base=0, stride=9, length=10)
        assert first_hit_bruteforce(v, 1, 8, 4) == 4  # from the example

    def test_none_when_never_hit(self):
        v = Vector(base=0, stride=8, length=16)
        assert first_hit_bruteforce(v, 1, 8, 4) is None

    def test_word_interleave_default(self):
        v = Vector(base=3, stride=1, length=8)
        assert first_hit_bruteforce(v, 5, 16) == 2

"""Tests for bank decoding and stride decomposition (section 4.1.1/4.1.4)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.decode import BankDecoder, decompose_stride
from repro.errors import ConfigurationError, VectorSpecError


class TestBankDecoder:
    def test_word_interleave_is_modulo(self):
        d = BankDecoder(num_banks=16, block_words=1)
        assert [d.bank_of(a) for a in range(20)] == [a % 16 for a in range(20)]

    def test_cacheline_interleave_bit_select(self):
        """DecodeBank(addr) = (addr >> n) mod M."""
        d = BankDecoder(num_banks=8, block_words=4)
        assert d.bank_of(0) == 0
        assert d.bank_of(3) == 0  # same block
        assert d.bank_of(4) == 1
        assert d.bank_of(31) == 7
        assert d.bank_of(32) == 0  # wraps

    def test_non_power_of_two_banks_rejected(self):
        with pytest.raises(ConfigurationError):
            BankDecoder(num_banks=6)

    def test_non_power_of_two_block_rejected(self):
        with pytest.raises(ConfigurationError):
            BankDecoder(num_banks=4, block_words=3)

    def test_negative_address_rejected(self):
        with pytest.raises(VectorSpecError):
            BankDecoder(num_banks=4).bank_of(-1)

    def test_local_word_word_interleave(self):
        d = BankDecoder(num_banks=16, block_words=1)
        assert d.local_word(0) == 0
        assert d.local_word(16) == 1
        assert d.local_word(5 + 3 * 16) == 3

    def test_local_word_cacheline_interleave(self):
        d = BankDecoder(num_banks=4, block_words=8)
        # Bank 0 owns words 0-7, 32-39, ...
        assert d.local_word(0) == 0
        assert d.local_word(7) == 7
        assert d.local_word(32) == 8
        assert d.local_word(37) == 13

    @given(
        address=st.integers(0, 10**7),
        m=st.sampled_from([1, 2, 4, 8, 16, 32]),
        n=st.sampled_from([1, 2, 4, 8, 32]),
    )
    def test_bank_local_roundtrip(self, address, m, n):
        """(bank, local) uniquely reconstructs the address."""
        d = BankDecoder(num_banks=m, block_words=n)
        bank = d.bank_of(address)
        local = d.local_word(address)
        block = local // n
        offset = local % n
        rebuilt = ((block * m + bank) * n) + offset
        assert rebuilt == address

    def test_block_offset(self):
        d = BankDecoder(num_banks=4, block_words=8)
        assert d.block_offset(13) == 5


class TestStrideDecomposition:
    def test_paper_examples(self):
        """S = 6 = 3*2^1, S = 7 = 7*2^0, S = 8 = 1*2^3 (section 4.1.4)."""
        d6 = decompose_stride(6, 16)
        assert (d6.sigma, d6.s) == (3, 1)
        d7 = decompose_stride(7, 16)
        assert (d7.sigma, d7.s) == (7, 0)
        d8 = decompose_stride(8, 16)
        assert (d8.sigma, d8.s) == (1, 3)

    def test_stride_multiple_of_banks(self):
        d = decompose_stride(32, 16)
        assert d.s == 4  # s == m: single-bank case
        assert d.delta == 1
        assert d.banks_hit == 1

    def test_delta_is_next_hit(self):
        """Theorem 4.4: delta = 2^(m-s)."""
        assert decompose_stride(1, 16).delta == 16
        assert decompose_stride(2, 16).delta == 8
        assert decompose_stride(12, 16).delta == 4  # 12 = 3*2^2
        assert decompose_stride(19, 16).delta == 16  # odd stride

    def test_banks_hit_parallelism(self):
        """Available parallelism is M / 2^s (section 6.3.1)."""
        assert decompose_stride(1, 16).banks_hit == 16
        assert decompose_stride(4, 16).banks_hit == 4
        assert decompose_stride(16, 16).banks_hit == 1
        assert decompose_stride(19, 16).banks_hit == 16

    def test_k1_is_modular_inverse(self):
        """K1 * sigma === 1 (mod 2^(m-s))."""
        for stride in range(1, 64):
            d = decompose_stride(stride, 16)
            if d.delta > 1:
                assert (d.k1 * d.sigma) % d.delta == 1

    def test_k1_single_bank_case(self):
        assert decompose_stride(16, 16).k1 == 0

    def test_power_of_two_detection(self):
        assert decompose_stride(8, 16).is_power_of_two_stride
        assert decompose_stride(16, 16).is_power_of_two_stride
        assert not decompose_stride(6, 16).is_power_of_two_stride
        assert not decompose_stride(19, 16).is_power_of_two_stride

    def test_invalid_stride(self):
        with pytest.raises(VectorSpecError):
            decompose_stride(0, 16)
        with pytest.raises(VectorSpecError):
            decompose_stride(-3, 16)

    def test_invalid_banks(self):
        with pytest.raises(ConfigurationError):
            decompose_stride(3, 12)

    @given(
        stride=st.integers(1, 10**6),
        m_bits=st.integers(0, 6),
    )
    def test_decomposition_reconstructs_stride_mod_m(self, stride, m_bits):
        m = 1 << m_bits
        d = decompose_stride(stride, m)
        if stride % m == 0:
            assert d.s == m_bits and d.sigma == 1
        else:
            assert d.sigma % 2 == 1
            assert d.sigma << d.s == stride % m

    @given(stride=st.integers(1, 1000))
    def test_lemma_41_only_low_bits_matter(self, stride):
        """Lemma 4.1: stride and stride mod M decompose identically."""
        m = 16
        d1 = decompose_stride(stride, m)
        d2 = decompose_stride(stride % m if stride % m else m, m)
        assert (d1.sigma, d1.s, d1.delta) == (d2.sigma, d2.s, d2.delta)

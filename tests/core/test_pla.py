"""Tests for the PLA implementation models (sections 4.2, 4.3.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.firsthit import NO_HIT, first_hit
from repro.core.pla import FullKiPLA, K1PLA, NextHitPLA, pla_product_terms
from repro.errors import ConfigurationError
from repro.types import Vector


class TestNextHitPLA:
    def test_matches_theorem(self):
        from repro.core.firsthit import next_hit

        pla = NextHitPLA(16)
        for stride in range(1, 100):
            assert pla.lookup(stride) == next_hit(stride, 16)

    def test_table_size(self):
        assert len(NextHitPLA(16)) == 16
        assert len(NextHitPLA(4)) == 4

    def test_invalid_banks(self):
        with pytest.raises(ConfigurationError):
            NextHitPLA(10)


class TestK1PLA:
    @pytest.mark.parametrize("m", [2, 4, 8, 16, 32])
    def test_first_hit_index_matches_reference(self, m):
        """The PLA + multiply path computes the same K_i as the theorem,
        for every stride class and bank distance."""
        pla = K1PLA(m)
        for stride in range(1, 2 * m + 1):
            # A long vector so K_i < L never filters results.
            v = Vector(base=0, stride=stride, length=4 * m + 1)
            for bank in range(m):
                expected = first_hit(v, bank, m)
                got = pla.first_hit_index(stride, bank)  # d == bank (b0=0)
                assert got == expected, (m, stride, bank)

    def test_entry_exposes_decomposition(self):
        pla = K1PLA(16)
        entry = pla.entry(12)  # 12 = 3 * 2^2
        assert entry.s == 2
        assert entry.delta == 4
        assert not entry.power_of_two

    def test_power_of_two_flag(self):
        pla = K1PLA(16)
        assert pla.entry(8).power_of_two
        assert pla.entry(16).power_of_two
        assert not pla.entry(6).power_of_two

    def test_no_hit_for_wrong_distance(self):
        pla = K1PLA(16)
        # stride 4 (s=2): only distances that are multiples of 4 hit.
        assert pla.first_hit_index(4, 1) is None
        assert pla.first_hit_index(4, 2) is None
        assert pla.first_hit_index(4, 4) is not None

    def test_single_bank_stride(self):
        pla = K1PLA(16)
        assert pla.first_hit_index(16, 0) == 0
        for d in range(1, 16):
            assert pla.first_hit_index(16, d) is None


class TestFullKiPLA:
    @pytest.mark.parametrize("m", [2, 4, 8, 16])
    def test_equivalent_to_k1_design(self, m):
        full = FullKiPLA(m)
        k1 = K1PLA(m)
        for stride in range(m):
            for d in range(m):
                assert full.first_hit_index(stride, d) == k1.first_hit_index(
                    stride, d
                )

    def test_table_is_m_squared(self):
        assert len(FullKiPLA(8)) == 64
        assert len(FullKiPLA(16)) == 256


class TestScaling:
    def test_full_ki_grows_quadratically(self):
        """Section 4.3.1: full-Ki PLA complexity ~ M^2, K1 PLA ~ M."""
        t8 = pla_product_terms(8, "full_ki")
        t16 = pla_product_terms(16, "full_ki")
        t32 = pla_product_terms(32, "full_ki")
        # Roughly x4 per doubling.
        assert 3.0 < t16 / t8 < 5.0
        assert 3.0 < t32 / t16 < 5.0

    def test_k1_grows_linearly(self):
        assert pla_product_terms(8, "k1") == 8
        assert pla_product_terms(16, "k1") == 16
        assert pla_product_terms(32, "k1") == 32

    def test_unknown_design_rejected(self):
        with pytest.raises(ConfigurationError):
            pla_product_terms(16, "magic")


@given(
    stride=st.integers(1, 300),
    base=st.integers(0, 300),
    m=st.sampled_from([2, 4, 8, 16, 32]),
)
@settings(max_examples=150)
def test_k1_pla_with_nonzero_base(stride, base, m):
    """The PLA works on bank distance d = (b - b0) mod M; combined with
    the decoder it reproduces first_hit for arbitrary bases."""
    pla = K1PLA(m)
    v = Vector(base=base, stride=stride, length=8 * m)
    b0 = base % m
    for bank in range(m):
        d = (bank - b0) % m
        assert pla.first_hit_index(stride, d) == first_hit(v, bank, m)


class TestSharedK1PLA:
    """The process-wide memoized K1 PLA (one compiled table per bank
    count, shared by every system instance)."""

    def test_same_bank_count_shares_one_instance(self):
        from repro.core.pla import shared_k1_pla

        assert shared_k1_pla(16) is shared_k1_pla(16)

    def test_distinct_bank_counts_get_distinct_tables(self):
        from repro.core.pla import shared_k1_pla

        assert shared_k1_pla(8) is not shared_k1_pla(16)
        assert len(shared_k1_pla(8)) != len(shared_k1_pla(16))

    def test_systems_share_the_compiled_table(self):
        from repro.api import build_system
        from repro.params import SystemParams

        params = SystemParams()
        first = build_system("pva-sdram", params)
        second = build_system("pva-sdram", params)
        assert first.banks[0].fhp.pla is second.banks[0].fhp.pla

    def test_shared_table_is_immutable(self):
        """No aliasing hazard: the shared entries are frozen, so one
        system cannot perturb another through the cache."""
        import dataclasses

        from repro.core.pla import shared_k1_pla

        entry = shared_k1_pla(16).entry(12)
        with pytest.raises(dataclasses.FrozenInstanceError):
            entry.s = 99

    def test_shared_table_matches_fresh_table(self):
        from repro.core.pla import shared_k1_pla

        fresh = K1PLA(16)
        shared = shared_k1_pla(16)
        for stride in range(1, 40):
            for d in range(16):
                assert shared.first_hit_index(
                    stride, d
                ) == fresh.first_hit_index(stride, d)

"""Tests for SplitVector and the MMC TLB (section 4.3.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.split import exact_split_vector, split_vector
from repro.errors import ConfigurationError, TLBMissError
from repro.types import Vector
from repro.vm.tlb import MMCTLB, PageMapping


@pytest.fixture
def identity_tlb():
    return MMCTLB.identity(total_words=1 << 20, page_words=1 << 10)


class TestTLB:
    def test_identity_lookup(self, identity_tlb):
        assert identity_tlb.lookup(0) == (0, 1024)
        assert identity_tlb.lookup(1500) == (1500, 1024)

    def test_miss_raises(self, identity_tlb):
        with pytest.raises(TLBMissError):
            identity_tlb.lookup(1 << 20)

    def test_translation(self):
        tlb = MMCTLB()
        tlb.map(PageMapping(virtual_base=0, physical_base=4096, page_words=1024))
        assert tlb.lookup(100) == (4196, 1024)

    def test_overlap_rejected(self):
        tlb = MMCTLB()
        tlb.map(PageMapping(virtual_base=0, physical_base=0, page_words=1024))
        with pytest.raises(ConfigurationError):
            tlb.map(
                PageMapping(virtual_base=512, physical_base=8192, page_words=1024)
            )

    def test_misaligned_page_rejected(self):
        with pytest.raises(ConfigurationError):
            PageMapping(virtual_base=100, physical_base=0, page_words=1024)
        with pytest.raises(ConfigurationError):
            PageMapping(virtual_base=0, physical_base=100, page_words=1024)

    def test_non_power_of_two_page_rejected(self):
        with pytest.raises(ConfigurationError):
            PageMapping(virtual_base=0, physical_base=0, page_words=1000)

    def test_lookup_counter(self, identity_tlb):
        identity_tlb.lookup(0)
        identity_tlb.lookup(1)
        assert identity_tlb.lookups == 2

    def test_superpages_of_mixed_sizes(self):
        tlb = MMCTLB()
        tlb.map(PageMapping(virtual_base=0, physical_base=0, page_words=1 << 12))
        tlb.map(
            PageMapping(
                virtual_base=1 << 12, physical_base=1 << 14, page_words=1 << 10
            )
        )
        assert tlb.lookup(100)[1] == 1 << 12
        assert tlb.lookup((1 << 12) + 5) == ((1 << 14) + 5, 1 << 10)


class TestSplitVector:
    def test_unit_stride_exact(self, identity_tlb):
        v = Vector(base=0, stride=1, length=3000)
        pieces = split_vector(v, identity_tlb)
        assert [p.length for p in pieces] == [1024, 1024, 952]

    def test_total_length_preserved(self, identity_tlb):
        v = Vector(base=777, stride=5, length=1000)
        pieces = split_vector(v, identity_tlb)
        assert sum(p.length for p in pieces) == 1000

    def test_no_piece_crosses_page(self, identity_tlb):
        """The invariant the lower bound exists for: every issued
        sub-vector stays on one super-page."""
        for stride in (1, 2, 3, 5, 7, 8, 19, 512, 1000):
            v = Vector(base=123, stride=stride, length=500)
            for piece in split_vector(v, identity_tlb):
                first_page = piece.base >> 10
                last_page = piece.last_address >> 10
                assert first_page == last_page, (stride, piece)

    def test_addresses_translated(self):
        tlb = MMCTLB()
        tlb.map(PageMapping(virtual_base=0, physical_base=1 << 14, page_words=1024))
        tlb.map(
            PageMapping(
                virtual_base=1024, physical_base=1 << 15, page_words=1024
            )
        )
        v = Vector(base=1020, stride=8, length=4)
        pieces = split_vector(v, tlb)
        # element 0 at virtual 1020 (page 0), elements 1.. at virtual 1028+
        assert pieces[0].base == (1 << 14) + 1020
        assert pieces[1].base == (1 << 15) + 4

    def test_fast_split_never_fewer_pieces_than_exact(self, identity_tlb):
        """The lower-bound split may be more conservative (more pieces)
        but never illegally aggressive."""
        for stride in (1, 3, 6, 19, 31):
            v = Vector(base=40, stride=stride, length=700)
            fast = split_vector(v, identity_tlb)
            exact = exact_split_vector(v, identity_tlb)
            assert len(fast) >= len(exact)
            assert sum(p.length for p in fast) == sum(
                p.length for p in exact
            )

    def test_exact_split_is_minimal(self, identity_tlb):
        v = Vector(base=0, stride=3, length=1000)
        exact = exact_split_vector(v, identity_tlb)
        # Each piece must completely fill its page's remaining capacity.
        for piece in exact[:-1]:
            next_address = piece.last_address + piece.stride
            assert next_address >> 10 != piece.base >> 10

    @given(
        base=st.integers(0, 4000),
        stride=st.integers(1, 600),
        length=st.integers(1, 400),
    )
    @settings(max_examples=150)
    def test_split_invariants(self, base, stride, length):
        tlb = MMCTLB.identity(total_words=1 << 20, page_words=1 << 10)
        v = Vector(base=base, stride=stride, length=length)
        pieces = split_vector(v, tlb)
        assert sum(p.length for p in pieces) == length
        # Pieces reproduce the translated element sequence.
        translated = []
        for piece in pieces:
            translated.extend(piece.addresses())
        expected = [tlb.lookup(a)[0] for a in v.addresses()]
        assert translated == expected
        # And stay on their pages.
        for piece in pieces:
            assert piece.base >> 10 == piece.last_address >> 10

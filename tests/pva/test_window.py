"""Unit tests for the closed-form window backend's pieces.

The differential suite (tests/sim/test_window_equivalence.py) proves
the backend end-to-end; these tests pin the pieces in isolation — the
eligibility gate, the same-row run segmentation the arithmetic charges
off, the shared numpy-bound decision cache, the kernel's bulk ledger
deposit API (and its error paths), and the system-level selection rule
that routes ``capture_data`` runs back through the SoA automaton.
"""

from types import SimpleNamespace

import pytest

from repro.errors import ConfigurationError
from repro.params import SystemParams
from repro.pva import system as system_module
from repro.pva.schedule import pairs_schedule
from repro.pva.soa import (
    _NUMPY_MIN_BANKS,
    SoaBankAutomaton,
    numpy_bound_enabled,
    soa_eligible,
)
from repro.pva.window import WindowBankAutomaton, window_eligible
from repro.api import build_system
from repro.kernels import build_trace, kernel_by_name
from repro.sim.kernel import SimKernel
from repro.sim.runner import SimulationLimits, Watchdog
from repro.types import AccessType, Vector, VectorCommand


class TestEligibility:
    def test_empty_banks_ineligible(self):
        assert not window_eligible([])

    def test_fresh_pva_sdram_banks_eligible(self):
        system = build_system("pva-sdram", SystemParams(sim_mode="window"))
        assert window_eligible(system.banks)

    def test_exotic_device_ineligible(self):
        fake = [SimpleNamespace(device=SimpleNamespace())]
        assert not window_eligible(fake)

    def test_matches_soa_gate(self):
        # The closed form's *extra* conditions are dynamic (per-chain
        # fallback), so the static gate is exactly the SoA gate.
        system = build_system("pva-sdram", SystemParams(sim_mode="window"))
        for banks in ([], system.banks, system.banks[:3]):
            assert window_eligible(banks) == soa_eligible(banks)


class TestRunSegmentation:
    """run_starts/run_lengths are the closed form's unit of charge: a
    maximal same-(internal bank, row) span, delimited by the
    next_same_row markers."""

    def _schedule(self, pairs):
        params = SystemParams(sim_mode="window")
        system = build_system("pva-sdram", params)
        automaton = WindowBankAutomaton(
            system.banks,
            SimpleNamespace(
                outstanding={}, commands=(), next_cmd=0, next_issue_allowed=0
            ),
            SimpleNamespace(busy_until=0),
            params,
            kernel=None,
        )
        return pairs_schedule(tuple(pairs), automaton._geom)

    def test_partition_is_exact(self):
        sched = self._schedule((word, word) for word in range(6))
        assert sched.run_starts[0] == 0
        assert sum(sched.run_lengths) == sched.count
        # Runs abut: each start is the previous start plus its length.
        for i in range(1, len(sched.run_starts)):
            assert sched.run_starts[i] == (
                sched.run_starts[i - 1] + sched.run_lengths[i - 1]
            )

    def test_boundaries_follow_next_same_row(self):
        # A large stride hops rows every element: all runs length 1.
        sched = self._schedule((word * 4096, word) for word in range(5))
        starts = set(sched.run_starts)
        for j in range(sched.count - 1):
            assert (not sched.next_same_row[j]) == (j + 1 in starts)

    def test_single_element(self):
        sched = self._schedule([(7, 0)])
        assert sched.run_starts == (0,)
        assert sched.run_lengths == (1,)

    def test_empty(self):
        # pairs_schedule maps an empty pattern to None (no table); an
        # explicitly empty BankSchedule still partitions into no runs.
        from repro.pva.schedule import BankSchedule

        assert self._schedule([]) is None
        sched = BankSchedule((), (), (), (), ())
        assert sched.run_starts == ()
        assert sched.run_lengths == ()


class TestNumpyBoundDecision:
    def test_small_bank_counts_stay_scalar(self):
        assert numpy_bound_enabled(1) is False
        assert numpy_bound_enabled(_NUMPY_MIN_BANKS - 1) is False

    def test_memoized(self):
        numpy_bound_enabled.cache_clear()
        numpy_bound_enabled(_NUMPY_MIN_BANKS)
        before = numpy_bound_enabled.cache_info().hits
        numpy_bound_enabled(_NUMPY_MIN_BANKS)
        assert numpy_bound_enabled.cache_info().hits == before + 1

    def test_threshold_respects_feature_probe(self):
        from repro.pva import soa

        enabled = numpy_bound_enabled(_NUMPY_MIN_BANKS)
        assert enabled == (soa._np is not None)


def _kernel():
    return SimKernel(
        watchdog=Watchdog(
            1,
            system="test",
            limits=SimulationLimits(max_cycles_per_command=4096),
        )
    )


class _Span:
    """Minimal self-accounting component: owns one ledger entry and
    contributes nothing at finalize (bulk deposits only)."""

    name = "span-unit"
    ledger_names = ("span",)

    def tick(self, cycle):
        return False

    def next_event_cycle(self, cycle):
        from repro.sim.events import HORIZON

        return HORIZON

    def account(self, start, end):
        return (0, 0, end - start)

    def finalize_ledger(self, total_cycles):
        from repro.sim.stats import ComponentCycles

        return {"span": ComponentCycles()}

    def done(self):
        return True


class TestBulkAccount:
    def test_deposits_accumulate(self):
        kernel = _kernel()
        kernel.register(_Span())
        kernel.bulk_account("span", busy=5, stalled=2)
        kernel.bulk_account("span", busy=1, idle=3)
        entry = kernel._ledger["span"]
        assert (entry.busy, entry.stalled, entry.idle) == (6, 2, 3)

    def test_unknown_entry_rejected(self):
        kernel = _kernel()
        with pytest.raises(ConfigurationError, match="unknown ledger"):
            kernel.bulk_account("nobody", busy=1)

    def test_negative_delta_rejected(self):
        kernel = _kernel()
        kernel.register(_Span())
        with pytest.raises(ConfigurationError, match="negative delta"):
            kernel.bulk_account("span", busy=-1)

    def test_rejected_after_finalize(self):
        kernel = _kernel()
        kernel.register(_Span())
        kernel.run(lambda: True)
        kernel.finalize(kernel.cycle)
        with pytest.raises(ConfigurationError, match="finalized"):
            kernel.bulk_account("span", busy=1)


class TestBackendSelection:
    """sim_mode="window" uses the closed form only for non-capturing
    eligible runs; capture_data silently takes the SoA automaton (the
    data movement path is identical, so results cannot diverge)."""

    TRACE = [
        VectorCommand(
            vector=Vector(base=3, stride=19, length=16),
            access=AccessType.READ,
        )
    ]

    def _chosen(self, monkeypatch, *, capture_data):
        chosen = []

        class SpyWindow(WindowBankAutomaton):
            def __init__(self, *args, **kwargs):
                chosen.append("window")
                super().__init__(*args, **kwargs)

        class SpySoa(SoaBankAutomaton):
            def __init__(self, *args, **kwargs):
                chosen.append("soa")
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(system_module, "WindowBankAutomaton", SpyWindow)
        monkeypatch.setattr(system_module, "SoaBankAutomaton", SpySoa)
        system = build_system("pva-sdram", SystemParams(sim_mode="window"))
        system.run(self.TRACE, capture_data=capture_data)
        return chosen

    def test_plain_run_uses_window(self, monkeypatch):
        assert self._chosen(monkeypatch, capture_data=False) == ["window"]

    def test_capture_data_falls_back_to_soa(self, monkeypatch):
        assert self._chosen(monkeypatch, capture_data=True) == ["soa"]

    def test_fallback_matches_window_cycles(self):
        params = SystemParams(sim_mode="window")
        a = build_system("pva-sdram", params).run(
            self.TRACE, capture_data=True
        )
        b = build_system("pva-sdram", params).run(
            self.TRACE, capture_data=False
        )
        assert a.cycles == b.cycles
        assert a.attribution == b.attribution


class TestChainResolution:
    """The override actually fires: a dense eligible run resolves at
    least one chain arithmetically (bound fast-forwarded past the event
    walk's single-step cadence)."""

    def test_dense_run_resolves_chains(self, monkeypatch):
        resolved = []
        original = WindowBankAutomaton._resolve

        def spy(self, b, now, h):
            outcome = original(self, b, now, h)
            resolved.append(outcome)
            return outcome

        monkeypatch.setattr(WindowBankAutomaton, "_resolve", spy)
        params = SystemParams(sim_mode="window")
        trace = build_trace(
            kernel_by_name("copy"), stride=19, elements=256, params=params
        )
        build_system("pva-sdram", params).run(trace)
        assert 0 in resolved  # _RESOLVED commits happened

"""Unit tests for the structure-of-arrays bank automaton internals.

The differential suite (tests/sim/test_soa_equivalence.py) proves the
backend end-to-end; these tests pin the pieces in isolation — the
min-reduction next-event bound, the broadcast memo's lifecycle and
immutability, eligibility gating, and the queueing math on degenerate
element patterns (stride-0/1 equivalents, single bank, non-power-of-two
bank subsets the automaton itself never rejects).
"""

from types import SimpleNamespace

from repro.api import build_system, clear_caches
from repro.params import SystemParams
from repro.pva.schedule import pairs_schedule
from repro.pva.soa import (
    SoaBankAutomaton,
    broadcast_schedules,
    clear_soa_cache,
    soa_cache_info,
    soa_eligible,
)
from repro.sim.events import HORIZON


def _automaton(params=None, banks=None):
    """A fresh automaton over a just-built pva-sdram system's banks
    (optionally a subset — the automaton accepts any bank count)."""
    params = params or SystemParams(sim_mode="soa")
    system = build_system("pva-sdram", params)
    front = SimpleNamespace(
        outstanding={}, commands=(), next_cmd=0, next_issue_allowed=0
    )
    bus = SimpleNamespace(busy_until=0)
    selected = system.banks if banks is None else system.banks[:banks]
    return SoaBankAutomaton(selected, front, bus, params)


class TestNextEventBound:
    def test_min_reduction_over_bound_array(self):
        soa = _automaton()
        for b in range(soa.n):
            soa.bound[b] = 1000 + b
        assert soa.next_event_cycle(0) == 1000

    def test_bound_below_current_cycle_clamps_to_cycle(self):
        # An underestimated bound degrades to a plain tick, never a
        # backwards jump (the kernel contract).
        soa = _automaton()
        for b in range(soa.n):
            soa.bound[b] = 5
        assert soa.next_event_cycle(70) == 70

    def test_single_bank(self):
        soa = _automaton(banks=1)
        assert soa.n == 1
        soa.bound[0] = 42
        assert soa.next_event_cycle(0) == 42

    def test_non_power_of_two_bank_count(self):
        # num_banks is validated to powers of two at the params layer,
        # but the automaton's own math is count-agnostic — future
        # SALP-style models want odd internal splits.
        soa = _automaton(banks=3)
        assert soa.n == 3
        soa.bound[0], soa.bound[1], soa.bound[2] = 90, 7, 800
        assert soa.next_event_cycle(0) == 7

    def test_idle_fresh_system_bound_is_refresh_deadline(self):
        from dataclasses import replace

        base = SystemParams(sim_mode="soa")
        quiet = _automaton(base)
        # No refresh configured: nothing can ever self-wake.
        assert quiet.next_event_cycle(0) == HORIZON
        refreshing = _automaton(
            replace(base, sdram=replace(base.sdram, refresh_interval=780))
        )
        assert refreshing.next_event_cycle(0) == 780


class TestQueueMath:
    def test_stride_zero_pattern_queues_every_element(self):
        # pairs_schedule with one repeated local word — the stride-0
        # degenerate the Vector type itself rejects (stride >= 1).
        soa = _automaton()
        pairs = ((7, 0), (7, 1), (7, 2))
        queued = soa.broadcast_pairs(0, 0, pairs, False, 4, None, None, 4)
        assert queued == 3
        entry = soa._rqf[0][0]
        assert entry[4].count == 3
        assert entry[4].local_words == (7, 7, 7)
        # Explicit snoop timing: ready the cycle after broadcast ends,
        # and the idle bank's next-event bound drops to it.
        assert entry[0] == 5
        assert soa.bound[0] == 5

    def test_stride_one_run_marks_same_row(self):
        soa = _automaton()
        pairs = tuple((word, word) for word in range(4))
        schedule = pairs_schedule(pairs, soa._geom)
        # Four consecutive words on one row: every hop but the last is a
        # same-row transition — the burst fast path's precondition.
        assert schedule.next_same_row == (True, True, True, False)
        queued = soa.broadcast_pairs(1, 0, pairs, False, 0, None, None, 0)
        assert queued == 4

    def test_empty_schedule_opens_staging_and_queues_nothing(self):
        soa = _automaton()
        queued = soa.broadcast_pairs(2, 3, (), False, 0, None, None, 0)
        assert queued == 0
        assert not soa._rqf[2]
        assert soa.bound[2] == HORIZON

    def test_pending_ledger_settles_idle_up_to_call_cycle(self):
        soa = _automaton()
        soa.broadcast_pairs(0, 0, ((3, 0),), False, 9, None, None, 9)
        assert soa.pending[0]
        assert soa.idle_c[0] == 9
        assert soa.acct[0] == 9


class TestBroadcastMemo:
    def test_memo_returns_shared_tuple(self):
        clear_soa_cache()
        params = SystemParams()
        system = build_system("pva-sdram", params)
        geometry = system.banks[0]._geom
        first = broadcast_schedules(0, 19, 64, params.num_banks, geometry)
        again = broadcast_schedules(0, 19, 64, params.num_banks, geometry)
        assert first is again
        assert soa_cache_info().hits >= 1
        assert len(first) == params.num_banks

    def test_memo_entries_not_mutated_by_runs(self):
        from repro.kernels import build_trace, kernel_by_name
        from repro.api import simulate

        clear_soa_cache()
        params = SystemParams(sim_mode="soa")
        trace = build_trace(
            kernel_by_name("copy"), stride=19, elements=64, params=params
        )
        simulate(trace, params, system="pva-sdram")
        assert soa_cache_info().currsize >= 1
        # Snapshot every cached schedule's contents, run again, compare:
        # the automaton must treat the shared tables as read-only.
        system = build_system("pva-sdram", params)
        geometry = system.banks[0]._geom
        vector = trace[0].vector
        schedules = broadcast_schedules(
            vector.base,
            vector.stride,
            vector.length,
            params.num_banks,
            geometry,
        )
        snapshot = [
            None
            if s is None
            else (s.count, s.indices, s.local_words, s.ibanks, s.rows, s.next_same_row)
            for s in schedules
        ]
        simulate(trace, params, system="pva-sdram")
        for schedule, before in zip(schedules, snapshot):
            if schedule is None:
                assert before is None
            else:
                assert before == (
                    schedule.count,
                    schedule.indices,
                    schedule.local_words,
                    schedule.ibanks,
                    schedule.rows,
                    schedule.next_same_row,
                )

    def test_clear_caches_drops_soa_memo(self):
        params = SystemParams()
        system = build_system("pva-sdram", params)
        broadcast_schedules(0, 5, 16, params.num_banks, system.banks[0]._geom)
        assert soa_cache_info().currsize >= 1
        clear_caches()
        assert soa_cache_info().currsize == 0


class TestEligibility:
    def test_fresh_systems_are_eligible(self):
        for name in ("pva-sdram", "pva-sram"):
            system = build_system(name, SystemParams())
            assert soa_eligible(system.banks)

    def test_empty_bank_list_is_not(self):
        assert not soa_eligible([])

    def test_attached_command_log_disables(self):
        system = build_system("pva-sdram", SystemParams())
        system.attach_command_logs()
        assert not soa_eligible(system.banks)

    def test_ineligible_run_still_works_via_fallback(self):
        # sim_mode="soa" with a command log attached silently falls back
        # to the object backend — same results, object speed.
        from repro.kernels import build_trace, kernel_by_name

        params = SystemParams(sim_mode="soa")
        system = build_system("pva-sdram", params)
        logs = system.attach_command_logs()
        trace = build_trace(
            kernel_by_name("copy"), stride=4, elements=32, params=params
        )
        result = system.run(trace)
        assert result.cycles > 0
        assert any(log.commands for log in logs)

    def test_mixed_device_types_are_not(self):
        sdram = build_system("pva-sdram", SystemParams())
        sram = build_system("pva-sram", SystemParams())
        mixed = [sdram.banks[0], sram.banks[1]]
        assert not soa_eligible(mixed)

"""Behavioural tests for the access scheduler, driven through a single
bank controller over a real SDRAM device."""

import pytest

from repro.core.pla import K1PLA
from repro.params import SDRAMTiming, SystemParams
from repro.pva.bank_controller import BankController
from repro.sdram.device import SDRAMDevice
from repro.types import Vector

PARAMS = SystemParams(
    num_banks=4,
    cache_line_words=8,
    sdram=SDRAMTiming(row_words=64),
)
PLA = K1PLA(PARAMS.num_banks)


def make_bc(params=PARAMS):
    device = SDRAMDevice(params.sdram, bus_turnaround=params.bus_turnaround)
    return BankController(0, params, device, K1PLA(params.num_banks))


def drive(bc, cycles, start=0):
    """Tick the BC; collect (cycle, IssuedColumn) pairs."""
    issued = []
    for cycle in range(start, start + cycles):
        result = bc.tick(cycle)
        if result is not None:
            issued.append((cycle, result))
    return issued


class TestSingleRequest:
    def test_unit_stride_read_lifecycle(self):
        bc = make_bc()
        # 8-element unit-stride vector: this bank (0) owns elements 0 and 4.
        v = Vector(base=0, stride=1, length=8)
        count = bc.broadcast(txn_id=0, vector=v, is_write=False, cycle=0)
        assert count == 2
        issued = drive(bc, 20)
        assert len(issued) == 2
        indices = [col.index for _, col in issued]
        assert indices == [0, 4]
        # Activate (t_rcd=2) must precede the first column.
        first_cycle = issued[0][0]
        assert first_cycle >= 3  # ready at 1 (bypass), activate, t_rcd
        last_data = issued[-1][1].data_cycle
        assert bc.read_complete(0, last_data)
        assert not bc.read_complete(0, last_data - 1)

    def test_no_hit_bank_completes_immediately(self):
        bc = make_bc()
        # stride 4 over 4 banks from base 1: bank 0 never hit.
        v = Vector(base=1, stride=4, length=8)
        count = bc.broadcast(txn_id=0, vector=v, is_write=False, cycle=0)
        assert count == 0
        assert bc.read_complete(0, cycle=0)
        assert drive(bc, 10) == []

    def test_write_commits_with_recovery(self):
        bc = make_bc()
        v = Vector(base=0, stride=4, length=4)  # all 4 elements in bank 0
        line = tuple(range(50, 54))
        count = bc.broadcast(0, v, is_write=True, cycle=0, write_line=line)
        assert count == 4
        issued = drive(bc, 20)
        assert len(issued) == 4
        assert all(col.is_write for _, col in issued)
        last_commit = issued[-1][1].data_cycle
        assert bc.write_complete(0, last_commit)
        # The data actually landed in storage (local words 0..3).
        assert [bc.device.peek(i) for i in range(4)] == [50, 51, 52, 53]

    def test_non_power_of_two_pays_fhc_latency(self):
        bc_pow2 = make_bc()
        bc_odd = make_bc()
        bc_pow2.broadcast(0, Vector(base=0, stride=4, length=4), False, 0)
        bc_odd.broadcast(0, Vector(base=0, stride=3, length=4), False, 0)
        first_pow2 = drive(bc_pow2, 20)[0][0]
        first_odd = drive(bc_odd, 20)[0][0]
        assert first_odd > first_pow2


class TestOrderingRules:
    def test_polarity_rule_blocks_younger_reversal(self):
        """A younger write must not overtake an older read stream."""
        bc = make_bc()
        read = Vector(base=0, stride=4, length=8)  # 8 elements, bank 0
        write = Vector(base=64, stride=4, length=8)
        bc.broadcast(0, read, is_write=False, cycle=0)
        bc.broadcast(
            1, write, is_write=True, cycle=0, write_line=tuple(range(8))
        )
        issued = drive(bc, 60)
        kinds = [col.is_write for _, col in issued]
        # All 8 reads strictly precede all 8 writes.
        assert kinds == [False] * 8 + [True] * 8

    def test_same_polarity_requests_pipeline(self):
        """Two read requests to different internal banks pipeline: total
        time is far below the sum of two isolated requests."""
        bc = make_bc()
        # Request A in internal bank 0 (rows 0..), request B in internal
        # bank 1 (local words 64..127 = row sequence 1).
        a = Vector(base=0, stride=4, length=8)
        b = Vector(base=256, stride=4, length=8)
        bc.broadcast(0, a, is_write=False, cycle=0)
        bc.broadcast(1, b, is_write=False, cycle=0)
        issued = drive(bc, 60)
        assert len(issued) == 16
        # Oldest-first arbitration: A's columns all precede B's.
        txns = [col.txn_id for _, col in issued]
        assert txns == [0] * 8 + [1] * 8
        # But B's row was opened under A's columns, so the whole pair
        # finishes in little more than 16 column cycles.
        assert issued[-1][0] - issued[0][0] <= 18

    def test_activate_promotion_hides_row_open(self):
        """While request A streams columns, request B's activate (other
        internal bank) is promoted, so B starts immediately after A."""
        bc = make_bc()
        a = Vector(base=0, stride=4, length=8)
        b = Vector(base=256, stride=4, length=8)
        bc.broadcast(0, a, is_write=False, cycle=0)
        bc.broadcast(1, b, is_write=False, cycle=0)
        issued = drive(bc, 60)
        cycles_by_txn = {}
        for cycle, col in issued:
            cycles_by_txn.setdefault(col.txn_id, []).append(cycle)
        gap = cycles_by_txn[1][0] - cycles_by_txn[0][-1]
        assert gap <= 2  # B's row was opened while A was draining


class TestRowManagement:
    def test_row_reuse_within_request(self):
        """Columns within one row pay a single activate."""
        bc = make_bc()
        v = Vector(base=0, stride=4, length=8)  # local words 0..7, one row
        bc.broadcast(0, v, is_write=False, cycle=0)
        drive(bc, 30)
        stats = bc.device.stats()
        assert stats.activates == 1
        assert stats.reads == 8

    def test_row_conflict_forces_precharge(self):
        """Requests to different rows of the same internal bank must
        close and reopen."""
        bc = make_bc()
        a = Vector(base=0, stride=4, length=4)  # ib 0, row 0
        b = Vector(base=1024, stride=4, length=4)  # local 256.. -> ib 0, row 1
        bc.broadcast(0, a, is_write=False, cycle=0)
        bc.broadcast(1, b, is_write=False, cycle=0)
        issued = drive(bc, 60)
        assert len(issued) == 8
        stats = bc.device.stats()
        assert stats.activates == 2
        assert stats.precharges + stats.auto_precharges >= 1

    def test_scheduler_stats_accumulate(self):
        bc = make_bc()
        v = Vector(base=0, stride=4, length=8)
        bc.broadcast(0, v, is_write=False, cycle=0)
        drive(bc, 30)
        assert bc.scheduler.columns == 8
        assert bc.scheduler.activates == 1

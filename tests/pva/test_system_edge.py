"""Edge-case behaviour of the full PVA system: bus turnaround accounting,
latency reporting, transaction-limit scaling, and feature interactions
(interleave + refresh, explicit + base-stride mixes)."""

import dataclasses

import pytest

from repro.interleave.schemes import InterleaveScheme
from repro.params import SDRAMTiming, SystemParams
from repro.pva.system import PVAMemorySystem
from repro.types import AccessType, ExplicitCommand, Vector, VectorCommand

SMALL = SystemParams(
    num_banks=4, cache_line_words=8, sdram=SDRAMTiming(row_words=64)
)


def read_cmd(base, stride=1, length=8):
    return VectorCommand(
        vector=Vector(base=base, stride=stride, length=length),
        access=AccessType.READ,
    )


def write_cmd(base, stride=1, length=8, data=None):
    return VectorCommand(
        vector=Vector(base=base, stride=stride, length=length),
        access=AccessType.WRITE,
        data=data,
    )


class TestBusAccounting:
    def test_read_only_trace_no_turnarounds(self):
        result = PVAMemorySystem(SMALL).run(
            [read_cmd(64 * i) for i in range(4)]
        )
        assert result.bus.turnaround_cycles == 0

    def test_alternating_directions_pay_turnarounds(self):
        """Mixing directions costs at least one turnaround; the front end
        batches broadcasts ahead of staging, so consecutive write streams
        coalesce and most reversals are amortized away."""
        trace = []
        for i in range(3):
            trace.append(write_cmd(64 * i))
            trace.append(read_cmd(64 * i))
        result = PVAMemorySystem(SMALL).run(trace)
        assert result.bus.turnaround_cycles >= 1

    def test_interleaved_staging_pays_more_turnarounds(self):
        """With only one outstanding transaction the write data and read
        returns strictly alternate on the bus — every boundary reverses."""
        params = dataclasses.replace(
            SMALL, max_transactions=1, request_fifo_depth=8
        )
        trace = []
        for i in range(3):
            trace.append(write_cmd(64 * i))
            trace.append(read_cmd(64 * i))
        result = PVAMemorySystem(params).run(trace)
        assert result.bus.turnaround_cycles >= 5

    def test_bus_cycle_conservation(self):
        """Total cycles >= all bus activity (the bus serializes)."""
        trace = [read_cmd(64 * i) for i in range(6)]
        result = PVAMemorySystem(SMALL).run(trace)
        assert result.cycles >= result.bus.busy_cycles

    def test_request_cycles_counted(self):
        result = PVAMemorySystem(SMALL).run([read_cmd(0)])
        # VEC_READ + STAGE_READ commands.
        assert result.bus.request_cycles == 2
        assert result.bus.data_cycles == SMALL.stage_cycles


class TestLatencies:
    def test_one_latency_per_command(self):
        trace = [read_cmd(64 * i) for i in range(5)]
        result = PVAMemorySystem(SMALL).run(trace)
        assert len(result.command_latencies) == 5
        assert all(latency > 0 for latency in result.command_latencies)

    def test_queued_commands_wait_longer(self):
        """Later commands in a burst include their queueing delay."""
        trace = [read_cmd(64 * i) for i in range(8)]
        latencies = PVAMemorySystem(SMALL).run(trace).command_latencies
        assert latencies[-1] > latencies[0]

    def test_write_latency_measured_to_commit(self):
        result = PVAMemorySystem(SMALL).run([write_cmd(0)])
        (latency,) = result.command_latencies
        # STAGE_WRITE + 8 data cycles + broadcast + SDRAM work.
        assert latency > SMALL.stage_cycles

    def test_latency_summary(self):
        trace = [read_cmd(64 * i) for i in range(4)]
        result = PVAMemorySystem(SMALL).run(trace)
        summary = result.latency_summary()
        assert summary["min"] <= summary["mean"] <= summary["max"]


class TestTransactionScaling:
    @pytest.mark.parametrize("txns", [1, 2, 4, 8])
    def test_more_transactions_never_slower(self, txns):
        params = dataclasses.replace(
            SMALL, max_transactions=txns, request_fifo_depth=max(txns, 8)
        )
        trace = [read_cmd(64 * i) for i in range(8)]
        cycles = PVAMemorySystem(params).run(trace).cycles
        baseline = PVAMemorySystem(SMALL).run(trace).cycles
        assert cycles >= baseline  # 8 txns is the fastest configuration

    def test_single_transaction_serializes(self):
        params = dataclasses.replace(
            SMALL, max_transactions=1, request_fifo_depth=8
        )
        trace = [read_cmd(64 * i) for i in range(4)]
        serialized = PVAMemorySystem(params).run(trace).cycles
        pipelined = PVAMemorySystem(SMALL).run(trace).cycles
        assert serialized > pipelined * 1.3


class TestIssueThrottling:
    def test_throttled_cpu_is_slower(self):
        trace = [read_cmd(64 * i) for i in range(6)]
        fast = PVAMemorySystem(SMALL).run(trace).cycles
        slow_params = dataclasses.replace(SMALL, issue_interval=30)
        slow = PVAMemorySystem(slow_params).run(trace).cycles
        assert slow > fast
        # Issue gaps dominate: ~interval per command.
        assert slow >= 5 * 30

    def test_throttling_preserves_data(self):
        params = dataclasses.replace(SMALL, issue_interval=13)
        system = PVAMemorySystem(params)
        v = Vector(base=0, stride=3, length=8)
        for a in v.addresses():
            system.poke(a, a + 2)
        result = system.run(
            [VectorCommand(vector=v, access=AccessType.READ)],
            capture_data=True,
        )
        assert result.read_lines[0] == tuple(a + 2 for a in v.addresses())


class TestFeatureInteractions:
    def test_interleave_with_refresh(self):
        params = dataclasses.replace(
            SMALL,
            sdram=SDRAMTiming(
                row_words=64, refresh_interval=50, t_rfc=6
            ),
        )
        scheme = InterleaveScheme.cache_line(4, 8)
        system = PVAMemorySystem(params, interleave=scheme)
        v = Vector(base=5, stride=3, length=8)
        for a in v.addresses():
            system.poke(a, a * 2)
        trace = [VectorCommand(vector=v, access=AccessType.READ)] * 3
        result = system.run(trace, capture_data=True)
        for line in result.read_lines:
            assert line == tuple(a * 2 for a in v.addresses())

    def test_mixed_explicit_and_vector_commands(self):
        system = PVAMemorySystem(SMALL)
        system.poke(100, 1)
        system.poke(200, 2)
        trace = [
            write_cmd(0, data=tuple(range(8))),
            ExplicitCommand(
                addresses=(100, 200),
                access=AccessType.READ,
                broadcast_cycles=2,
            ),
            read_cmd(0),
        ]
        result = system.run(trace, capture_data=True)
        assert result.read_lines[0] == (1, 2)
        assert result.read_lines[1] == tuple(range(8))

    def test_interleaved_system_latencies_populated(self):
        scheme = InterleaveScheme.cache_line(4, 8)
        system = PVAMemorySystem(SMALL, interleave=scheme)
        result = system.run([read_cmd(0), read_cmd(64)])
        assert len(result.command_latencies) == 2

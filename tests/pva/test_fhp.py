"""Tests for the FirstHit Predict and Calculate units."""

import pytest

from repro.core.firsthit import first_hit, hit_count
from repro.core.pla import K1PLA
from repro.params import SystemParams
from repro.pva.fhp import FirstHitCalculator, FirstHitPredictor
from repro.types import Vector


@pytest.fixture
def params():
    return SystemParams()


@pytest.fixture
def pla(params):
    return K1PLA(params.num_banks)


class TestPredictor:
    def test_predict_matches_core(self, params, pla):
        for stride in (1, 2, 3, 6, 8, 16, 19):
            v = Vector(base=21, stride=stride, length=32)
            for bank in range(params.num_banks):
                fhp = FirstHitPredictor(bank, params, pla)
                sub = fhp.predict(v)
                expected = first_hit(v, bank, params.num_banks)
                if expected is None:
                    assert sub is None
                else:
                    assert sub.first_index == expected
                    assert sub.count == hit_count(v, bank, params.num_banks)
                    assert sub.first_address == v.element_address(expected)

    def test_power_of_two_detection(self, params, pla):
        fhp = FirstHitPredictor(0, params, pla)
        assert fhp.stride_is_power_of_two(8)
        assert fhp.stride_is_power_of_two(16)  # single-bank case
        assert not fhp.stride_is_power_of_two(19)

    def test_local_address(self, params, pla):
        fhp = FirstHitPredictor(3, params, pla)
        assert fhp.local_address(3) == 0
        assert fhp.local_address(3 + 16 * 7) == 7

    def test_local_step_integral(self, params, pla):
        for stride in range(1, 40):
            v = Vector(base=0, stride=stride, length=64)
            for bank in (0, 1, 7, 15):
                fhp = FirstHitPredictor(bank, params, pla)
                sub = fhp.predict(v)
                if sub is not None:
                    assert sub.address_step % params.num_banks == 0
                    assert fhp.local_step(sub) == (
                        sub.address_step // params.num_banks
                    )


class TestCalculator:
    def test_latency(self, params):
        fhc = FirstHitCalculator(params)
        # Busy BC: arrival + 2-cycle multiply-add + write-back cycle.
        assert fhc.schedule(arrival_cycle=10, bank_idle=False) == 13

    def test_bypass_saves_writeback(self, params):
        fhc = FirstHitCalculator(params)
        assert fhc.schedule(arrival_cycle=10, bank_idle=True) == 12

    def test_bypass_disabled(self):
        params = SystemParams(bypass_paths=False)
        fhc = FirstHitCalculator(params)
        assert fhc.schedule(arrival_cycle=10, bank_idle=True) == 13

    def test_serial_occupancy(self, params):
        """Back-to-back requests queue behind the single multiply-add."""
        fhc = FirstHitCalculator(params)
        first = fhc.schedule(arrival_cycle=0, bank_idle=False)
        second = fhc.schedule(arrival_cycle=0, bank_idle=False)
        assert first == 3
        assert second == 5  # starts only after the first finishes
        assert fhc.calculations == 2

    def test_idle_gap_resets_pipeline(self, params):
        fhc = FirstHitCalculator(params)
        fhc.schedule(arrival_cycle=0, bank_idle=False)
        assert fhc.schedule(arrival_cycle=100, bank_idle=False) == 103

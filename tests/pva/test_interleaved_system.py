"""Tests for the cache-line/block-interleaved PVA system (section 4.1.3).

The logical-bank transformation lets the same controller machinery run
over any W x N x M geometry; these tests check functional equivalence
with the word-interleaved unit and the expected timing differences.
"""

import pytest

from repro.errors import ConfigurationError
from repro.interleave.schemes import InterleaveScheme
from repro.params import SDRAMTiming, SystemParams
from repro.pva.system import PVAMemorySystem
from repro.types import AccessType, ExplicitCommand, Vector, VectorCommand
from repro.workloads.random_traces import RandomTraceConfig, random_trace

SMALL = SystemParams(
    num_banks=4, cache_line_words=8, sdram=SDRAMTiming(row_words=64)
)
LINE_SCHEME = InterleaveScheme.cache_line(4, 8)


def line_system(params=SMALL, scheme=LINE_SCHEME):
    return PVAMemorySystem(params, interleave=scheme, name="pva-line")


class TestConstruction:
    def test_bank_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            PVAMemorySystem(
                SMALL, interleave=InterleaveScheme.cache_line(8, 8)
            )

    def test_word_scheme_uses_fast_path(self):
        system = PVAMemorySystem(
            SMALL, interleave=InterleaveScheme.word(4)
        )
        assert system.interleave is None  # degenerates to the fast path


class TestFunctional:
    @pytest.mark.parametrize("stride", [1, 2, 3, 5, 8, 9, 16])
    def test_gather_matches_word_interleaved(self, stride):
        """Same data out of either geometry — only the placement and the
        timing differ."""
        v = Vector(base=6, stride=stride, length=8)
        word_sys = PVAMemorySystem(SMALL)
        line_sys = line_system()
        for a in v.addresses():
            word_sys.poke(a, a * 3)
            line_sys.poke(a, a * 3)
        trace = [VectorCommand(vector=v, access=AccessType.READ)]
        word = word_sys.run(trace, capture_data=True)
        line = line_sys.run(trace, capture_data=True)
        assert word.read_lines == line.read_lines

    def test_scatter(self):
        system = line_system()
        v = Vector(base=3, stride=7, length=8)
        data = tuple(range(70, 78))
        system.run(
            [VectorCommand(vector=v, access=AccessType.WRITE, data=data)]
        )
        assert [system.peek(a) for a in v.addresses()] == list(data)

    def test_explicit_commands(self):
        system = line_system()
        addresses = (0, 9, 33, 70)
        for a in addresses:
            system.poke(a, a + 1)
        cmd = ExplicitCommand(
            addresses=addresses, access=AccessType.READ, broadcast_cycles=3
        )
        result = system.run([cmd], capture_data=True)
        assert result.read_lines[0] == tuple(a + 1 for a in addresses)

    def test_random_traces_equivalent(self):
        trace = random_trace(
            31,
            SMALL,
            RandomTraceConfig(
                commands=12,
                address_space_words=1 << 10,
                max_stride=12,
                full_lines=False,
            ),
        )
        word_sys = PVAMemorySystem(SMALL)
        line_sys = line_system()
        word = word_sys.run(trace, capture_data=True)
        line = line_sys.run(trace, capture_data=True)
        assert word.read_lines == line.read_lines


class TestTimingShape:
    def test_unit_stride_is_sequential_per_line(self):
        """Under cache-line interleave a unit-stride line lives in ONE
        bank, so a single command cannot parallelize — the word
        interleave wins."""
        v = Vector(base=0, stride=1, length=8)
        trace = [VectorCommand(vector=v, access=AccessType.READ)]
        word = PVAMemorySystem(SMALL).run(trace).cycles
        line = line_system().run(trace).cycles
        assert line >= word

    def test_line_stride_parallelizes_under_line_interleave(self):
        """Conversely, a stride equal to the line size hits one bank of
        the word-interleaved system but rotates banks under cache-line
        interleave."""
        v = Vector(base=0, stride=8, length=8)  # one element per line
        trace = [VectorCommand(vector=v, access=AccessType.READ)] * 1
        word = PVAMemorySystem(SMALL).run(trace).cycles
        line = line_system().run(trace).cycles
        assert line <= word

    def test_element_conservation(self):
        v = Vector(base=5, stride=3, length=8)
        result = line_system().run(
            [VectorCommand(vector=v, access=AccessType.READ)]
        )
        assert result.device.reads == 8

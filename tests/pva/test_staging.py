"""Tests for the read/write staging units and transaction-complete lines."""

import pytest

from repro.errors import CapacityError, ProtocolError
from repro.pva.staging import ReadStagingUnit, WriteStagingUnit


class TestReadStaging:
    def test_lifecycle(self):
        unit = ReadStagingUnit(capacity=8)
        unit.open(txn_id=1, expected=2)
        assert not unit.complete(1, cycle=0)
        unit.collect(1, index=0, value=10, data_cycle=5)
        assert not unit.complete(1, cycle=6)
        unit.collect(1, index=16, value=20, data_cycle=7)
        assert not unit.complete(1, cycle=6)  # data not yet arrived
        assert unit.complete(1, cycle=7)
        assert unit.drain(1) == [(0, 10), (16, 20)]

    def test_zero_expected_is_immediately_complete(self):
        unit = ReadStagingUnit(capacity=8)
        unit.open(txn_id=3, expected=0)
        assert unit.complete(3, cycle=0)
        assert unit.drain(3) == []

    def test_duplicate_open_rejected(self):
        unit = ReadStagingUnit(capacity=8)
        unit.open(1, 1)
        with pytest.raises(ProtocolError):
            unit.open(1, 1)

    def test_capacity_enforced(self):
        unit = ReadStagingUnit(capacity=2)
        unit.open(0, 1)
        unit.open(1, 1)
        with pytest.raises(CapacityError):
            unit.open(2, 1)

    def test_collect_unknown_txn(self):
        unit = ReadStagingUnit(capacity=8)
        with pytest.raises(ProtocolError):
            unit.collect(9, 0, 0, 0)

    def test_overcollect_rejected(self):
        unit = ReadStagingUnit(capacity=8)
        unit.open(1, 1)
        unit.collect(1, 0, 5, 1)
        with pytest.raises(ProtocolError):
            unit.collect(1, 1, 6, 2)

    def test_drain_incomplete_rejected(self):
        unit = ReadStagingUnit(capacity=8)
        unit.open(1, 2)
        unit.collect(1, 0, 5, 1)
        with pytest.raises(ProtocolError):
            unit.drain(1)

    def test_drain_frees_slot(self):
        unit = ReadStagingUnit(capacity=1)
        unit.open(1, 0)
        unit.drain(1)
        unit.open(2, 0)  # no CapacityError
        assert len(unit) == 1


class TestWriteStaging:
    def test_lifecycle(self):
        unit = WriteStagingUnit(capacity=8)
        unit.open(txn_id=4, expected=2)
        unit.commit(4, commit_cycle=10)
        assert not unit.complete(4, cycle=12)
        unit.commit(4, commit_cycle=11)
        assert not unit.complete(4, cycle=10)
        assert unit.complete(4, cycle=11)
        unit.release(4)
        assert len(unit) == 0

    def test_zero_expected(self):
        unit = WriteStagingUnit(capacity=8)
        unit.open(5, 0)
        assert unit.complete(5, cycle=0)

    def test_overcommit_rejected(self):
        unit = WriteStagingUnit(capacity=8)
        unit.open(1, 1)
        unit.commit(1, 1)
        with pytest.raises(ProtocolError):
            unit.commit(1, 2)

    def test_release_unknown(self):
        unit = WriteStagingUnit(capacity=8)
        with pytest.raises(ProtocolError):
            unit.release(7)

    def test_capacity(self):
        unit = WriteStagingUnit(capacity=1)
        unit.open(0, 1)
        with pytest.raises(CapacityError):
            unit.open(1, 1)

    def test_unknown_txn_queries(self):
        unit = WriteStagingUnit(capacity=8)
        with pytest.raises(ProtocolError):
            unit.complete(9, 0)
        with pytest.raises(ProtocolError):
            unit.commit(9, 0)

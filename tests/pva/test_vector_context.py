"""Tests for vector-context address expansion."""

import pytest

from repro.core.subvector import SubVector
from repro.pva.request import BCRequest
from repro.pva.vector_context import VectorContext
from repro.types import Vector


def make_request(first_index=0, delta=16, count=2, local_first=0, local_step=1,
                 is_write=False, write_line=None, explicit=None):
    vector = Vector(base=0, stride=1, length=32)
    sub = SubVector(
        bank=0,
        first_index=first_index,
        delta=delta,
        count=count,
        first_address=first_index,
        address_step=delta,
    )
    return BCRequest(
        txn_id=0,
        vector=vector,
        is_write=is_write,
        sub=None if explicit is not None else sub,
        local_first=local_first,
        local_step=local_step,
        acc=True,
        ready_cycle=0,
        write_line=write_line,
        explicit=explicit,
    )


class TestArithmeticExpansion:
    def test_walks_progression(self):
        req = make_request(first_index=3, delta=16, count=3, local_first=10,
                           local_step=5)
        vc = VectorContext(req, entered_cycle=0)
        seen = []
        while not vc.done:
            seen.append((vc.local_addr, vc.index))
            vc.advance()
        assert seen == [(10, 3), (15, 19), (20, 35)]

    def test_next_local_addr(self):
        req = make_request(count=2, local_first=10, local_step=5)
        vc = VectorContext(req, entered_cycle=0)
        assert vc.next_local_addr == 15
        vc.advance()
        assert vc.next_local_addr is None  # last element

    def test_done_after_count(self):
        req = make_request(count=1)
        vc = VectorContext(req, entered_cycle=0)
        assert not vc.done
        vc.advance()
        assert vc.done

    def test_issued_any_flag(self):
        req = make_request(count=2)
        vc = VectorContext(req, entered_cycle=0)
        assert not vc.issued_any
        vc.advance()
        assert vc.issued_any


class TestExplicitExpansion:
    def test_walks_list(self):
        explicit = ((40, 2), (7, 9), (99, 30))
        req = make_request(explicit=explicit, local_first=40)
        vc = VectorContext(req, entered_cycle=0)
        seen = []
        while not vc.done:
            seen.append((vc.local_addr, vc.index))
            vc.advance()
        assert seen == [(40, 2), (7, 9), (99, 30)]

    def test_next_local_addr_from_list(self):
        explicit = ((40, 2), (7, 9))
        req = make_request(explicit=explicit, local_first=40)
        vc = VectorContext(req, entered_cycle=0)
        assert vc.next_local_addr == 7
        vc.advance()
        assert vc.next_local_addr is None

    def test_count_from_list(self):
        explicit = ((1, 0), (2, 1), (3, 2), (4, 3))
        req = make_request(explicit=explicit, local_first=1)
        assert req.count == 4


class TestWriteData:
    def test_write_value_indexed_by_element(self):
        line = tuple(range(100, 132))
        req = make_request(first_index=3, delta=16, count=2, is_write=True,
                           write_line=line)
        vc = VectorContext(req, entered_cycle=0)
        assert vc.write_value() == 103
        vc.advance()
        assert vc.write_value() == 119

    def test_write_without_line_raises(self):
        req = make_request(is_write=True)
        vc = VectorContext(req, entered_cycle=0)
        with pytest.raises(ValueError):
            vc.write_value()

"""The broadcast-time hit-schedule precompute layer (repro.pva.schedule).

Three obligations:

* **Equivalence** — the precomputed table is value-identical to the
  incremental ``first_hit``/``next_hit``/``bank_subvector`` walk it
  replaces, over fuzzed geometries (banks 2..64, odd/even/power-of-two
  strides, all five paper alignments).  The closed forms of theorems
  4.3/4.4 are the spec; the schedule must never disagree with them.
* **Decode correctness** — per-element device coordinates and the
  row-transition markers match ``device.locate`` exactly.
* **Memo hygiene** — memoized schedules are immutable and never alias
  mutable state between vectors; the memo is LRU-bounded and cleared by
  ``repro.api.clear_caches``.
"""

import random

import pytest

from repro.api import clear_caches
from repro.core.firsthit import bank_subvector, first_hit, next_hit
from repro.core.pla import shared_k1_pla
from repro.kernels import ALIGNMENTS
from repro.params import SDRAMTiming, SystemParams
from repro.pva.schedule import (
    SCHEDULE_CACHE_SIZE,
    clear_schedule_cache,
    pairs_schedule,
    schedule_cache_info,
    stride_schedule,
)
from repro.sdram.device import SDRAMDevice
from repro.sram.device import SRAMDevice
from repro.types import Vector


def _reference_table(vector, bank, num_banks, device):
    """The incremental walk the schedule replaces: FirstHit/NextHit plus
    a per-element ``device.locate`` decode."""
    k = first_hit(vector, bank, num_banks)
    if k is None:
        return None
    delta = next_hit(vector.stride, num_banks)
    bank_bits = num_banks.bit_length() - 1
    words = [address >> bank_bits for address in
             bank_subvector(vector, bank, num_banks)]
    indices = list(range(k, vector.length, delta))
    locs = [device.locate(word) for word in words]
    next_same = [
        j + 1 < len(locs)
        and locs[j + 1].internal_bank == locs[j].internal_bank
        and locs[j + 1].row == locs[j].row
        for j in range(len(locs))
    ]
    return (
        tuple(indices),
        tuple(words),
        tuple(loc.internal_bank for loc in locs),
        tuple(loc.row for loc in locs),
        tuple(next_same),
    )


def _assert_matches_reference(vector, num_banks, device):
    geometry = device.schedule_geometry
    total = 0
    for bank in range(num_banks):
        schedule = stride_schedule(
            vector.base, vector.stride, vector.length, bank, num_banks,
            geometry,
        )
        reference = _reference_table(vector, bank, num_banks, device)
        if reference is None:
            assert schedule is None, (vector, bank, num_banks)
            continue
        assert schedule is not None, (vector, bank, num_banks)
        assert schedule.indices == reference[0]
        assert schedule.local_words == reference[1]
        assert schedule.ibanks == reference[2]
        assert schedule.rows == reference[3]
        assert schedule.next_same_row == reference[4]
        assert schedule.count == len(reference[0])
        total += schedule.count
    assert total == vector.length  # the banks partition the vector


def _device_for(num_banks, internal_banks=4, row_words=64):
    timing = SDRAMTiming(internal_banks=internal_banks, row_words=row_words)
    return SDRAMDevice(timing)


STRIDES = [1, 2, 3, 4, 7, 8, 13, 16, 19, 24, 32, 48, 63]


@pytest.mark.parametrize("num_banks", [2, 8, 16])
@pytest.mark.parametrize("stride", STRIDES)
def test_schedule_matches_incremental_walk(num_banks, stride):
    device = _device_for(num_banks)
    for alignment in ALIGNMENTS:
        params = SystemParams(num_banks=num_banks)
        base = 96 + alignment.offset(1, params)
        vector = Vector(base=base, stride=stride, length=32)
        _assert_matches_reference(vector, num_banks, device)


@pytest.mark.slow
def test_schedule_matches_incremental_walk_fuzzed():
    """Heavyweight sweep: banks 2..64, fuzzed bases/strides/lengths and
    internal-bank/row geometries."""
    rng = random.Random(0xC0FFEE)
    for num_banks in (2, 4, 8, 16, 32, 64):
        for _ in range(120):
            device = _device_for(
                num_banks,
                internal_banks=rng.choice([1, 2, 4, 8]),
                row_words=rng.choice([16, 64, 512]),
            )
            stride = rng.choice(
                [rng.randrange(1, 4 * num_banks) | 1,      # odd
                 2 * rng.randrange(1, 2 * num_banks),      # even
                 1 << rng.randrange(0, 8),                 # power of two
                 num_banks, 2 * num_banks]                 # degenerate
            )
            vector = Vector(
                base=rng.randrange(0, 1 << 16),
                stride=stride,
                length=rng.randrange(1, 64),
            )
            _assert_matches_reference(vector, num_banks, device)


def test_schedule_agrees_with_pla_ownership():
    """The schedule's element partition must match the FHP's PLA tables
    (both are theorem 4.3; they may never drift apart)."""
    num_banks = 16
    device = _device_for(num_banks)
    pla = shared_k1_pla(num_banks)
    for stride in STRIDES:
        entry = pla.entry(stride)
        vector = Vector(base=35, stride=stride, length=32)
        for bank in range(num_banks):
            schedule = stride_schedule(
                vector.base, stride, vector.length, bank, num_banks,
                device.schedule_geometry,
            )
            k = first_hit(vector, bank, num_banks)
            assert (schedule is None) == (k is None)
            if schedule is not None:
                assert schedule.indices[0] == k
                if schedule.count > 1:
                    assert (
                        schedule.indices[1] - schedule.indices[0]
                        == entry.delta
                    )


def test_flat_geometry_decodes_to_single_row():
    device = SRAMDevice()
    schedule = stride_schedule(0, 3, 16, 1, 4, device.schedule_geometry)
    assert schedule is not None
    assert set(schedule.ibanks) == {0}
    assert set(schedule.rows) == {0}
    # A single always-open row: every transition but the last is a hit.
    assert schedule.next_same_row == tuple(
        j < schedule.count - 1 for j in range(schedule.count)
    )


def test_pairs_schedule_decodes_pairs_in_order():
    device = _device_for(4, internal_banks=2, row_words=16)
    pairs = ((3, 0), (19, 1), (16, 2), (700, 3))
    schedule = pairs_schedule(pairs, device.schedule_geometry)
    assert schedule.count == 4
    assert schedule.local_words == (3, 19, 16, 700)
    assert schedule.indices == (0, 1, 2, 3)
    for j, word in enumerate(schedule.local_words):
        loc = device.locate(word)
        assert schedule.ibanks[j] == loc.internal_bank
        assert schedule.rows[j] == loc.row
    assert pairs_schedule((), device.schedule_geometry) is None


def test_memoized_schedules_are_immutable_and_unaliased():
    geometry = _device_for(16).schedule_geometry
    first = stride_schedule(0, 19, 32, 3, 16, geometry)
    again = stride_schedule(0, 19, 32, 3, 16, geometry)
    assert again is first  # memo hit
    # Every field is a flat tuple — nothing a consumer could mutate.
    for field in ("indices", "local_words", "ibanks", "rows",
                  "next_same_row"):
        assert isinstance(getattr(first, field), tuple)
    with pytest.raises(AttributeError):
        first.extra = 1  # __slots__: no dict to scribble on
    # A different vector never shares identity with another's tuples
    # unless the values are equal (tuples are immutable either way).
    other = stride_schedule(16, 19, 32, 3, 16, geometry)
    assert other.local_words != first.local_words


def test_schedule_cache_is_lru_bounded_and_clearable():
    clear_schedule_cache()
    geometry = _device_for(16).schedule_geometry
    for base in range(SCHEDULE_CACHE_SIZE + 64):
        stride_schedule(base, 1, 4, 0, 16, geometry)
    info = schedule_cache_info()
    assert info.maxsize == SCHEDULE_CACHE_SIZE
    assert info.currsize <= SCHEDULE_CACHE_SIZE
    clear_caches()
    assert schedule_cache_info().currsize == 0


def test_clear_caches_resets_pla_memo():
    clear_caches()
    assert shared_k1_pla.cache_info().currsize == 0
    shared_k1_pla(16)
    assert shared_k1_pla.cache_info().currsize == 1
    clear_caches()
    assert shared_k1_pla.cache_info().currsize == 0


def test_degenerate_stride_hits_base_bank_only():
    geometry = _device_for(8).schedule_geometry
    for stride in (8, 16, 24):
        hits = [
            stride_schedule(5, stride, 7, bank, 8, geometry)
            for bank in range(8)
        ]
        assert [s is not None for s in hits] == [
            bank == 5 for bank in range(8)
        ]
        assert hits[5].count == 7
        assert hits[5].indices == tuple(range(7))


def test_precompute_toggle_is_cycle_exact(monkeypatch):
    """sim_mode="precompute" and sim_mode="skip" must produce
    bit-identical RunResults (cycles, latencies, device stats and
    attribution) — the schedule is a representation change, not a timing
    change.  The ``REPRO_TIME_SKIP`` toggle forces each pairing onto
    both run loops (the schedules are loop-agnostic)."""
    from repro.kernels import alignment_by_name, build_trace, kernel_by_name
    from repro.pva.system import PVAMemorySystem
    from repro.sim.events import ENV_TOGGLE

    for loop_env in ("0", "1"):
        monkeypatch.setenv(ENV_TOGGLE, loop_env)
        for kernel, alignment in (("copy", "aligned"),
                                  ("saxpy", "row-conflict")):
            for stride in (1, 8, 19):
                results = []
                for sim_mode in ("precompute", "skip"):
                    params = SystemParams(sim_mode=sim_mode)
                    trace = build_trace(
                        kernel_by_name(kernel),
                        stride=stride,
                        params=params,
                        elements=128,
                        alignment=alignment_by_name(alignment),
                    )
                    results.append(PVAMemorySystem(params).run(trace))
                fast, reference = results
                assert fast.cycles == reference.cycles
                assert fast.command_latencies == reference.command_latencies
                assert fast.device == reference.device
                assert fast.attribution == reference.attribution

"""Directed scheduler scenarios: progress guarantees, policy integration
and arbitration priorities that the fuzz suite can't pin down precisely."""

import dataclasses

import pytest

from repro.core.pla import K1PLA
from repro.params import SDRAMTiming, SystemParams
from repro.pva.bank_controller import BankController
from repro.sdram.device import SDRAMDevice
from repro.types import Vector

PARAMS = SystemParams(
    num_banks=4,
    cache_line_words=8,
    sdram=SDRAMTiming(row_words=64),
)


def make_bc(params=PARAMS):
    device = SDRAMDevice(params.sdram, bus_turnaround=params.bus_turnaround)
    return BankController(0, params, device, K1PLA(params.num_banks))


def drain(bc, limit=2000):
    issued = []
    for cycle in range(limit):
        result = bc.tick(cycle)
        if result is not None:
            issued.append((cycle, result))
        if bc.is_idle:
            break
    assert bc.is_idle, "bank controller failed to drain (deadlock?)"
    return issued


class TestProgressGuarantees:
    def test_polarity_blocked_write_vs_row_hitting_read(self):
        """The scenario that would deadlock a naive precharge rule: an
        older WRITE needs a row conflicting with the one a younger READ
        keeps hitting, while the bus polarity is 'read'.  The oldest
        context must be allowed to close the row and make progress."""
        bc = make_bc()
        # Prime bus polarity to 'read' and open row 0 of internal bank 0.
        warmup = Vector(base=0, stride=4, length=2)  # ib 0, row 0
        bc.broadcast(7, warmup, is_write=False, cycle=0)
        for cycle in range(12):
            bc.tick(cycle)
        assert bc.is_idle
        # Older write wants ib0 row 1 (local words 256..), younger read
        # keeps hitting ib0 row 0.
        write = Vector(base=1024, stride=4, length=4)
        read = Vector(base=0, stride=4, length=4)
        bc.broadcast(0, write, is_write=True, cycle=20,
                     write_line=tuple(range(4)))
        bc.broadcast(1, read, is_write=False, cycle=20)
        issued = []
        for cycle in range(20, 300):
            result = bc.tick(cycle)
            if result is not None:
                issued.append(result)
            if bc.is_idle:
                break
        assert bc.is_idle, "deadlock: write never progressed"
        kinds = [col.is_write for col in issued]
        # Program order preserved: all writes before all reads.
        assert kinds == [True] * 4 + [False] * 4

    def test_many_conflicting_requests_drain(self):
        """Eight requests ping-ponging between two rows of one internal
        bank with alternating directions — worst-case contention — must
        drain without deadlock and in program order per direction rules."""
        bc = make_bc()
        rows = [Vector(base=0, stride=4, length=4),
                Vector(base=1024, stride=4, length=4)]
        for txn in range(8):
            vector = rows[txn % 2]
            is_write = txn % 2 == 1
            line = tuple(range(4)) if is_write else None
            bc.broadcast(txn, vector, is_write, 0, write_line=line)
        issued = drain(bc)
        assert len(issued) == 32
        # Strict program order here: every polarity change is a barrier.
        txns = [col.txn_id for _, col in issued]
        assert txns == [t for t in range(8) for _ in range(4)]


class TestPolicyIntegration:
    def _run_policy(self, policy):
        params = dataclasses.replace(PARAMS, row_policy=policy)
        bc = make_bc(params)
        # Two requests reusing one row, then one to a different row.
        same_row = Vector(base=0, stride=4, length=4)
        other_row = Vector(base=1024, stride=4, length=4)
        bc.broadcast(0, same_row, False, 0)
        bc.broadcast(1, same_row, False, 0)
        bc.broadcast(2, other_row, False, 0)
        drain(bc)
        return bc.device.stats()

    def test_open_policy_reuses_rows(self):
        stats = self._run_policy("open")
        # Row 0 activated once for both requests; row 1 once.
        assert stats.activates == 2
        assert stats.auto_precharges == 0

    def test_close_policy_precharges_every_access(self):
        stats = self._run_policy("close")
        assert stats.auto_precharges == 12
        assert stats.activates == 12

    def test_paper_policy_matches_open_here(self):
        """With back-to-back row reuse the ManageRow heuristic keeps the
        row open, matching the open policy's activate count."""
        assert self._run_policy("paper").activates == self._run_policy(
            "open"
        ).activates

    def test_history_policy_learns_hot_row(self):
        stats = self._run_policy("history")
        # After a few hits the 21174 predictor keeps the row open: far
        # fewer activates than closed-page.
        assert stats.activates <= 4


class TestArbitrationPriorities:
    def test_oldest_context_issues_first(self):
        bc = make_bc()
        a = Vector(base=0, stride=4, length=4)  # ib0 row0
        b = Vector(base=256, stride=4, length=4)  # ib1 row0
        bc.broadcast(0, a, False, 0)
        bc.broadcast(1, b, False, 0)
        issued = drain(bc)
        assert issued[0][1].txn_id == 0

    def test_new_requests_enter_after_context_frees(self):
        """More requests than vector contexts: the fifth request's
        columns appear only after an earlier context retires."""
        params = dataclasses.replace(PARAMS, num_vector_contexts=2)
        bc = make_bc(params)
        vectors = [
            Vector(base=256 * i, stride=4, length=4) for i in range(5)
        ]
        for txn, vector in enumerate(vectors):
            bc.broadcast(txn, vector, False, 0)
        issued = drain(bc)
        assert len(issued) == 20
        txns = [col.txn_id for _, col in issued]
        # FIFO service order across the window refills.
        assert txns == [t for t in range(5) for _ in range(4)]

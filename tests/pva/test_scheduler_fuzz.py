"""Scheduler fuzzing: random request streams through a single bank
controller must preserve the core invariants regardless of stride mix,
direction mix or arrival pattern.

Invariants checked per run:
* every owned element is issued exactly once (conservation);
* reads and writes never violate SDRAM timing (the device raises
  TimingViolation/SchedulingError on any illegal command — surviving the
  run is the assertion);
* per transaction, elements issue in subvector (index) order;
* same-direction transactions retire in arrival (FIFO) order;
* opposite-direction accesses never reorder across a polarity change
  (the section 5.2.4 consistency rule).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pla import K1PLA
from repro.params import SDRAMTiming, SystemParams
from repro.pva.bank_controller import BankController
from repro.sdram.device import SDRAMDevice
from repro.types import Vector

PARAMS = SystemParams(
    num_banks=4,
    cache_line_words=8,
    sdram=SDRAMTiming(row_words=64),
)
PLA = K1PLA(PARAMS.num_banks)


def run_stream(seed, requests):
    """Feed ``requests`` = [(arrival_gap, vector, is_write)] into one BC
    and drive it dry; return the issued column records."""
    device = SDRAMDevice(PARAMS.sdram, bus_turnaround=PARAMS.bus_turnaround)
    bc = BankController(0, PARAMS, device, PLA)
    issued = []
    cycle = 0
    pending = list(requests)
    txn = 0
    active = set()
    guard = 0
    while pending or not bc.is_idle or active:
        if pending and len(active) < PARAMS.max_transactions:
            gap, vector, is_write = pending[0]
            if gap <= 0:
                pending.pop(0)
                line = tuple(range(vector.length)) if is_write else None
                count = bc.broadcast(
                    txn, vector, is_write, cycle, write_line=line
                )
                active.add((txn, is_write, count))
                txn = (txn + 1) % PARAMS.max_transactions
            else:
                pending[0] = (gap - 1, vector, is_write)
        result = bc.tick(cycle)
        if result is not None:
            issued.append((cycle, result))
        for entry in list(active):
            txn_id, is_write, count = entry
            done = (
                bc.write_complete(txn_id, cycle)
                if is_write
                else bc.read_complete(txn_id, cycle)
            )
            if done:
                if is_write:
                    bc.release_write(txn_id)
                else:
                    bc.drain_read(txn_id)
                active.remove(entry)
        cycle += 1
        guard += 1
        assert guard < 50_000, "bank controller wedged"
    return issued


@st.composite
def request_streams(draw):
    n = draw(st.integers(1, 7))
    stream = []
    for _ in range(n):
        gap = draw(st.integers(0, 6))
        stride = draw(st.integers(1, 12))
        length = draw(st.integers(1, 8))
        base = draw(st.integers(0, 512))
        is_write = draw(st.booleans())
        stream.append(
            (gap, Vector(base=base, stride=stride, length=length), is_write)
        )
    return stream


class TestFuzz:
    @given(stream=request_streams(), seed=st.integers(0, 100))
    @settings(max_examples=80, deadline=None)
    def test_invariants(self, stream, seed):
        from repro.core.firsthit import hit_count

        issued = run_stream(seed, stream)
        # Conservation: issued columns match the bank-0 element counts.
        expected = sum(
            hit_count(vector, 0, PARAMS.num_banks)
            for _, vector, _ in stream
        )
        assert len(issued) == expected

        # Per-transaction index monotonicity.
        by_txn = {}
        for cycle, col in issued:
            by_txn.setdefault((col.txn_id, col.is_write), []).append(
                (cycle, col.index)
            )
        for records in by_txn.values():
            indices = [index for _, index in records]
            assert indices == sorted(indices)

        # One issue per cycle (the shared AC datapath).
        cycles = [cycle for cycle, _ in issued]
        assert len(cycles) == len(set(cycles))
        # Timing legality is asserted implicitly: any violation raises
        # TimingViolation/SchedulingError inside the device model.


def test_mixed_direction_never_reorders_same_address():
    """Directed case: write then read of the same words always returns
    the written data (RAW through the scheduler)."""
    device = SDRAMDevice(PARAMS.sdram, bus_turnaround=1)
    bc = BankController(0, PARAMS, device, PLA)
    v = Vector(base=0, stride=4, length=8)  # all elements in bank 0
    line = tuple(range(500, 508))
    bc.broadcast(0, v, True, 0, write_line=line)
    bc.broadcast(1, v, False, 0)
    collected = []
    for cycle in range(200):
        result = bc.tick(cycle)
        if result is not None and not result.is_write:
            collected.append((result.index, result.value))
    assert collected == [(i, 500 + i) for i in range(8)]

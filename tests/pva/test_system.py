"""End-to-end tests of the full PVA memory system (section 5.2.6)."""

import pytest

from repro.errors import VectorSpecError
from repro.params import SDRAMTiming, SystemParams
from repro.pva.system import PVAMemorySystem
from repro.types import AccessType, ExplicitCommand, Vector, VectorCommand

PROTO = SystemParams()


def read_cmd(base, stride, length=32, data=None):
    return VectorCommand(
        vector=Vector(base=base, stride=stride, length=length),
        access=AccessType.READ,
    )


def write_cmd(base, stride, length=32, data=None):
    return VectorCommand(
        vector=Vector(base=base, stride=stride, length=length),
        access=AccessType.WRITE,
        data=data,
    )


class TestFunctionalGather:
    @pytest.mark.parametrize("stride", [1, 2, 4, 7, 16, 19, 31])
    def test_gather_returns_strided_elements(self, stride):
        system = PVAMemorySystem(PROTO)
        v = Vector(base=5, stride=stride, length=32)
        for address in v.addresses():
            system.poke(address, address * 2 + 1)
        result = system.run([read_cmd(5, stride)], capture_data=True)
        assert result.read_lines[0] == tuple(
            a * 2 + 1 for a in v.addresses()
        )

    def test_short_vector(self):
        system = PVAMemorySystem(PROTO)
        for a in range(0, 12, 3):
            system.poke(a, 100 + a)
        cmd = read_cmd(0, 3, length=4)
        result = system.run([cmd], capture_data=True)
        assert result.read_lines[0] == (100, 103, 106, 109)

    def test_scatter_lands_in_memory(self):
        system = PVAMemorySystem(PROTO)
        data = tuple(range(900, 932))
        system.run([write_cmd(7, 19, data=data)])
        v = Vector(base=7, stride=19, length=32)
        assert [system.peek(a) for a in v.addresses()] == list(data)

    def test_write_then_read_same_vector(self):
        system = PVAMemorySystem(PROTO)
        data = tuple(i * 3 for i in range(32))
        result = system.run(
            [write_cmd(64, 5, data=data), read_cmd(64, 5)],
            capture_data=True,
        )
        assert result.read_lines[0] == data

    def test_multiple_reads_capture_in_trace_order(self):
        system = PVAMemorySystem(PROTO)
        for a in range(0, 4096):
            system.poke(a, a)
        trace = [read_cmd(0, 1), read_cmd(1000, 2), read_cmd(3, 19)]
        result = system.run(trace, capture_data=True)
        assert result.read_lines[0] == tuple(range(32))
        assert result.read_lines[1] == tuple(range(1000, 1064, 2))
        assert result.read_lines[2] == tuple(range(3, 3 + 19 * 32, 19))


class TestProtocolLimits:
    def test_vector_longer_than_line_rejected(self):
        system = PVAMemorySystem(PROTO)
        with pytest.raises(VectorSpecError):
            system.run([read_cmd(0, 1, length=33)])

    def test_write_data_too_short_rejected(self):
        system = PVAMemorySystem(PROTO)
        with pytest.raises(VectorSpecError):
            system.run([write_cmd(0, 1, data=(1, 2, 3))])

    def test_empty_trace(self):
        system = PVAMemorySystem(PROTO)
        result = system.run([])
        assert result.cycles == 0
        assert result.commands == 0

    def test_more_commands_than_transaction_ids(self):
        """A trace much longer than the 8 outstanding transactions
        completes (ids recycle)."""
        system = PVAMemorySystem(PROTO)
        trace = [read_cmd(64 * i, 1) for i in range(24)]
        result = system.run(trace)
        assert result.commands == 24
        assert result.cycles > 0


class TestTimingShape:
    def test_single_read_latency(self):
        """One unit-stride read: a handful of SDRAM cycles plus the
        16-cycle staging transfer."""
        system = PVAMemorySystem(PROTO)
        result = system.run([read_cmd(0, 1)])
        assert 20 <= result.cycles <= 32

    def test_pipelined_reads_approach_bus_bound(self):
        """Many reads: steady state is ~18 bus cycles per command
        (1 request + 1 stage command + 16 data)."""
        system = PVAMemorySystem(PROTO)
        trace = [read_cmd(64 * i, 1) for i in range(16)]
        result = system.run(trace)
        assert result.cycles / len(trace) < 22

    def test_prime_stride_matches_unit_stride(self):
        """Stride 19 exercises all 16 banks: throughput equals stride 1
        (the paper's key claim)."""
        system1 = PVAMemorySystem(PROTO)
        t1 = system1.run([read_cmd(2048 * i, 1) for i in range(8)]).cycles
        system19 = PVAMemorySystem(PROTO)
        t19 = system19.run([read_cmd(2048 * i, 19) for i in range(8)]).cycles
        assert abs(t19 - t1) / t1 < 0.1

    def test_single_bank_stride_is_slowest(self):
        """Stride 16 hits one bank: markedly slower than stride 1."""
        s1 = PVAMemorySystem(PROTO).run(
            [read_cmd(2048 * i, 1) for i in range(8)]
        )
        s16 = PVAMemorySystem(PROTO).run(
            [read_cmd(2048 * i, 16) for i in range(8)]
        )
        assert s16.cycles > 1.5 * s1.cycles

    def test_stats_populated(self):
        system = PVAMemorySystem(PROTO)
        result = system.run([read_cmd(0, 1), write_cmd(4096, 1)])
        assert result.read_commands == 1
        assert result.write_commands == 1
        assert result.elements_read == 32
        assert result.elements_written == 32
        assert result.device.reads == 32
        assert result.device.writes == 32
        assert result.bus.data_cycles == 32
        assert 0 < result.bus.utilization(result.cycles) <= 1

    def test_element_conservation(self):
        """SDRAM column counts equal the trace's element counts — nothing
        fetched twice, nothing skipped."""
        system = PVAMemorySystem(PROTO)
        trace = [read_cmd(512 * i, s) for i, s in enumerate((1, 2, 19, 16))]
        result = system.run(trace)
        assert result.device.reads == 4 * 32


class TestExplicitCommands:
    def test_explicit_gather(self):
        system = PVAMemorySystem(PROTO)
        addresses = tuple(range(100, 4196, 128))
        for a in addresses:
            system.poke(a, a + 7)
        cmd = ExplicitCommand(
            addresses=addresses, access=AccessType.READ, broadcast_cycles=17
        )
        result = system.run([cmd], capture_data=True)
        assert result.read_lines[0] == tuple(a + 7 for a in addresses)

    def test_explicit_scatter(self):
        system = PVAMemorySystem(PROTO)
        addresses = (5, 300, 17, 4098)
        cmd = ExplicitCommand(
            addresses=addresses,
            access=AccessType.WRITE,
            broadcast_cycles=3,
            data=(1, 2, 3, 4),
        )
        system.run([cmd])
        assert [system.peek(a) for a in addresses] == [1, 2, 3, 4]

    def test_broadcast_cost_charged(self):
        """The explicit broadcast occupies the bus longer than a
        base-stride request cycle."""
        addresses = tuple(range(32))  # same elements as a stride-1 read
        base = PVAMemorySystem(PROTO).run(
            [read_cmd(0, 1)]
        ).cycles
        explicit = PVAMemorySystem(PROTO).run(
            [
                ExplicitCommand(
                    addresses=addresses,
                    access=AccessType.READ,
                    broadcast_cycles=17,
                )
            ]
        ).cycles
        assert explicit >= base + 10

"""Integration tests for a single bank controller's request pipeline."""

import pytest

from repro.core.pla import K1PLA
from repro.errors import CapacityError
from repro.params import SDRAMTiming, SystemParams
from repro.pva.bank_controller import BankController
from repro.sdram.device import SDRAMDevice
from repro.types import Vector

PARAMS = SystemParams(
    num_banks=4,
    cache_line_words=8,
    sdram=SDRAMTiming(row_words=64),
)


def make_bc(params=PARAMS):
    device = SDRAMDevice(params.sdram, bus_turnaround=params.bus_turnaround)
    return BankController(0, params, device, K1PLA(params.num_banks))


def drive(bc, cycles, start=0):
    issued = []
    for cycle in range(start, start + cycles):
        result = bc.tick(cycle)
        if result is not None:
            issued.append((cycle, result))
    return issued


class TestPipeline:
    def test_idle_flag(self):
        bc = make_bc()
        assert bc.is_idle
        bc.broadcast(0, Vector(base=0, stride=4, length=2), False, 0)
        assert not bc.is_idle
        drive(bc, 20)
        assert bc.is_idle

    def test_request_capacity_enforced(self):
        bc = make_bc()
        v = Vector(base=0, stride=4, length=8)
        for txn in range(PARAMS.request_fifo_depth):
            bc.broadcast(txn, v, False, 0)
        # A ninth outstanding transaction exceeds the staging capacity
        # (the register file holds exactly max_transactions entries).
        with pytest.raises(CapacityError):
            bc.broadcast(PARAMS.request_fifo_depth, v, False, 0)

    def test_transaction_id_reuse_rejected(self):
        from repro.errors import ProtocolError

        bc = make_bc()
        v = Vector(base=0, stride=4, length=8)
        bc.broadcast(3, v, False, 0)
        with pytest.raises(ProtocolError):
            bc.broadcast(3, v, False, 1)

    def test_requests_dequeue_in_order(self):
        bc = make_bc()
        bc.broadcast(0, Vector(base=0, stride=4, length=4), False, 0)
        bc.broadcast(1, Vector(base=256, stride=4, length=4), False, 0)
        bc.broadcast(2, Vector(base=512, stride=4, length=4), False, 0)
        issued = drive(bc, 80)
        txns = [col.txn_id for _, col in issued]
        assert txns == [0] * 4 + [1] * 4 + [2] * 4

    def test_bypass_reduces_idle_latency(self):
        """The FHP-to-VC bypass shaves a cycle off a lone power-of-two
        request into an idle bank controller."""
        import dataclasses

        with_bypass = make_bc(PARAMS)
        without = make_bc(dataclasses.replace(PARAMS, bypass_paths=False))
        v = Vector(base=0, stride=4, length=4)
        with_bypass.broadcast(0, v, False, 0)
        without.broadcast(0, v, False, 0)
        first_with = drive(with_bypass, 30)[0][0]
        first_without = drive(without, 30)[0][0]
        assert first_without - first_with == 1

    def test_fhc_latency_hidden_when_busy(self):
        """With the scheduler busy on an older request, a non-power-of-two
        stride's FHC latency does not delay its first column."""
        bc = make_bc()
        # Older request occupies the scheduler for ~10 cycles.
        bc.broadcast(0, Vector(base=0, stride=4, length=8), False, 0)
        # Non-power-of-two request queued right behind.
        bc.broadcast(1, Vector(base=12, stride=3, length=8), False, 1)
        issued = drive(bc, 80)
        by_txn = {}
        for cycle, col in issued:
            by_txn.setdefault(col.txn_id, []).append(cycle)
        gap = by_txn[1][0] - by_txn[0][-1]
        assert gap <= 3  # FHC finished long before the scheduler freed up

    def test_read_data_routed_to_staging(self):
        bc = make_bc()
        for local, value in ((0, 11), (1, 22)):
            bc.device.poke(local, value)
        v = Vector(base=0, stride=4, length=2)  # global 0, 4 -> local 0, 1
        bc.broadcast(0, v, False, 0)
        issued = drive(bc, 20)
        last_data = issued[-1][1].data_cycle
        assert bc.read_complete(0, last_data)
        assert bc.drain_read(0) == [(0, 11), (1, 22)]

    def test_explicit_broadcast(self):
        bc = make_bc()
        bc.device.poke(10, 5)
        bc.device.poke(2, 6)
        # Addresses 40 and 8 belong to bank 0 (mod 4), locals 10 and 2.
        count = bc.broadcast_explicit(
            0, addresses=(40, 9, 8), is_write=False, cycle=0
        )
        assert count == 2
        issued = drive(bc, 30)
        assert [(c.index, c.value) for _, c in issued] == [(0, 5), (2, 6)]

"""Tests for the row-management policies."""

import pytest

from repro.errors import ConfigurationError
from repro.pva.rowpolicy import (
    ClosePolicy,
    HistoryPolicy,
    OpenPolicy,
    PaperPolicy,
    make_row_policy,
)


class TestFactory:
    def test_known_policies(self):
        assert isinstance(make_row_policy("paper", 4), PaperPolicy)
        assert isinstance(make_row_policy("close", 4), ClosePolicy)
        assert isinstance(make_row_policy("open", 4), OpenPolicy)
        assert isinstance(make_row_policy("history", 4), HistoryPolicy)

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            make_row_policy("banana", 4)


class TestPaperPolicy:
    def test_more_hits_always_keeps_open(self):
        policy = PaperPolicy(4)
        assert not policy.decide(0, last_of_request=True, more_hits=True,
                                 close_predicted=True)
        assert not policy.decide(0, last_of_request=False, more_hits=True,
                                 close_predicted=False)

    def test_close_predicted_closes_at_completion(self):
        policy = PaperPolicy(4)
        assert policy.decide(0, last_of_request=True, more_hits=False,
                             close_predicted=True)

    def test_predictor_used_when_no_information(self):
        policy = PaperPolicy(4)
        # Request continued the previous row: loops reuse it; leave open.
        policy.note_first_operation(1, row_continues=True)
        assert not policy.decide(1, last_of_request=True, more_hits=False,
                                 close_predicted=False)
        # Request started a fresh row: close at completion.
        policy.note_first_operation(1, row_continues=False)
        assert policy.decide(1, last_of_request=True, more_hits=False,
                             close_predicted=False)

    def test_mid_request_default_is_close(self):
        """Mid-request with no future hits predicted: auto-precharge so the
        next row can open early."""
        policy = PaperPolicy(4)
        assert policy.decide(0, last_of_request=False, more_hits=False,
                             close_predicted=False)


class TestClosedOpenPolicies:
    def test_close_always(self):
        policy = ClosePolicy(4)
        assert policy.decide(0, True, False, False)
        assert policy.decide(0, False, False, False)

    def test_open_never(self):
        policy = OpenPolicy(4)
        assert not policy.decide(0, True, False, True)
        assert not policy.decide(0, False, False, True)


class TestHistoryPolicy:
    def test_majority_register(self):
        register = HistoryPolicy.majority_policy_register()
        # History 0b0011 (two hits): leave open.
        assert register >> 0b0011 & 1
        # History 0b0001 (one hit): close.
        assert not register >> 0b0001 & 1

    def test_history_shifts(self):
        policy = HistoryPolicy(4)
        for hit in (True, True, False, True):
            policy.observe_access(2, hit)
        assert policy.history[2] == 0b1101

    def test_history_is_four_bits(self):
        policy = HistoryPolicy(4)
        for _ in range(10):
            policy.observe_access(0, True)
        assert policy.history[0] == 0b1111

    def test_decision_follows_register(self):
        policy = HistoryPolicy(4)
        for hit in (True, True, True, True):
            policy.observe_access(0, hit)
        assert not policy.decide(0, True, False, False)  # hot row: open
        for hit in (False, False, False, False):
            policy.observe_access(0, hit)
        assert policy.decide(0, True, False, False)  # cold row: close

    def test_more_hits_overrides(self):
        policy = HistoryPolicy(4)
        assert not policy.decide(0, True, more_hits=True, close_predicted=False)

    def test_custom_register_validation(self):
        with pytest.raises(ConfigurationError):
            HistoryPolicy(4, policy_register=1 << 16)
        HistoryPolicy(4, policy_register=0)  # all-close is legal

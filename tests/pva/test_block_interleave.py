"""Block-interleave coverage: the middle ground between word and
cache-line interleave (N-word blocks, N smaller than a line) through the
live §4.1.3 machinery."""

import pytest

from repro.interleave.schemes import InterleaveScheme
from repro.params import SDRAMTiming, SystemParams
from repro.pva.system import PVAMemorySystem
from repro.types import AccessType, Vector, VectorCommand

SMALL = SystemParams(
    num_banks=4, cache_line_words=8, sdram=SDRAMTiming(row_words=64)
)


def block_system(block_words):
    scheme = InterleaveScheme(num_banks=4, block_words=block_words)
    return PVAMemorySystem(
        SMALL, interleave=scheme, name=f"pva-block{block_words}"
    )


class TestBlockInterleave:
    @pytest.mark.parametrize("block_words", [2, 4])
    @pytest.mark.parametrize("stride", [1, 3, 4, 7, 8])
    def test_functional_gather(self, block_words, stride):
        system = block_system(block_words)
        v = Vector(base=6, stride=stride, length=8)
        for a in v.addresses():
            system.poke(a, a + 11)
        result = system.run(
            [VectorCommand(vector=v, access=AccessType.READ)],
            capture_data=True,
        )
        assert result.read_lines[0] == tuple(a + 11 for a in v.addresses())

    @pytest.mark.parametrize("block_words", [2, 4])
    def test_poke_peek_consistent_with_scheme(self, block_words):
        system = block_system(block_words)
        scheme = system.interleave
        for address in range(0, 200, 7):
            system.poke(address, address * 2)
            bank = scheme.bank_of(address)
            local = scheme.local_word(address)
            assert system.banks[bank].device.peek(local) == address * 2
            assert system.peek(address) == address * 2

    def test_element_partition_across_banks(self):
        """Under block interleave the banks' element counts still sum to
        the vector length (the protocol check inside _broadcast)."""
        system = block_system(4)
        v = Vector(base=3, stride=5, length=8)
        result = system.run(
            [VectorCommand(vector=v, access=AccessType.READ)]
        )
        assert result.device.reads == 8

    def test_block_interleave_spreads_midsize_strides(self):
        """Stride = num_banks words: fatal for word interleave (one
        bank), harmless for 4-word blocks (rotates banks every block)."""
        v = Vector(base=0, stride=4, length=8)
        trace = [VectorCommand(vector=v, access=AccessType.READ)]
        word = PVAMemorySystem(SMALL).run(trace).cycles
        block = block_system(4).run(trace).cycles
        assert block <= word

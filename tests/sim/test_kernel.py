"""Unit tests for the shared clocked-component simulation kernel."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationTimeout
from repro.sim.events import HORIZON
from repro.sim.kernel import PassiveComponent, SimKernel
from repro.sim.runner import SimulationLimits, Watchdog
from repro.sim.stats import ComponentCycles


class Pulse:
    """A toy component that acts at the scheduled cycles, stalls while
    work remains, and idles after."""

    def __init__(self, name, schedule):
        self.name = name
        self.schedule = sorted(schedule)
        self.fired = []
        self.tick_calls = 0

    def tick(self, cycle):
        self.tick_calls += 1
        if self.schedule and self.schedule[0] == cycle:
            self.fired.append(self.schedule.pop(0))
            return True
        return False

    def next_event_cycle(self, cycle):
        return self.schedule[0] if self.schedule else HORIZON

    def account(self, start, end):
        span = end - start
        return (0, span, 0) if self.schedule else (0, 0, span)

    def done(self):
        return not self.schedule


def _watchdog(budget=4096):
    return Watchdog(
        1,
        system="test",
        limits=SimulationLimits(max_cycles_per_command=budget),
    )


def _run(schedules, time_skip):
    kernel = SimKernel(watchdog=_watchdog(), time_skip=time_skip)
    pulses = [
        kernel.register(Pulse(f"pulse-{i}", schedule))
        for i, schedule in enumerate(schedules)
    ]
    exit_cycle = kernel.run(lambda: all(p.done() for p in pulses))
    return kernel, pulses, exit_cycle


class TestRegistry:
    def test_nameless_component_rejected(self):
        kernel = SimKernel(watchdog=_watchdog())

        class Nameless:
            name = ""

        with pytest.raises(ConfigurationError):
            kernel.register(Nameless())

    def test_duplicate_name_rejected(self):
        kernel = SimKernel(watchdog=_watchdog())
        kernel.register(Pulse("dup", [1]))
        with pytest.raises(ConfigurationError):
            kernel.register(Pulse("dup", [2]))

    def test_run_without_components_rejected(self):
        with pytest.raises(ConfigurationError):
            SimKernel(watchdog=_watchdog()).run(lambda: True)


class TestLoopEquivalence:
    SCHEDULES = [[3, 7, 40], [5, 41], []]

    def test_skip_matches_tick(self):
        tick_kernel, tick_pulses, tick_exit = _run(self.SCHEDULES, False)
        skip_kernel, skip_pulses, skip_exit = _run(self.SCHEDULES, True)
        assert skip_exit == tick_exit
        assert [p.fired for p in skip_pulses] == [
            p.fired for p in tick_pulses
        ]
        assert skip_kernel.ledger == tick_kernel.ledger

    def test_gating_spares_tick_calls_in_both_modes(self):
        """Quiet components are not re-polled while their cached bound
        holds: the tick loop's dispatch gating and the skip loop's jumps
        both visit only the interesting cycles (far below the exit cycle,
        42 here), and skipping never costs extra calls over ticking."""
        _, tick_pulses, tick_exit = _run(self.SCHEDULES, False)
        _, skip_pulses, _ = _run(self.SCHEDULES, True)
        assert skip_pulses[0].tick_calls <= tick_pulses[0].tick_calls
        assert tick_pulses[0].tick_calls < tick_exit // 2

    def test_ledger_buckets_sum_to_exit_cycle(self):
        for time_skip in (False, True):
            kernel, _, exit_cycle = _run(self.SCHEDULES, time_skip)
            for entry in kernel.ledger.values():
                assert entry.total == exit_cycle

    def test_passive_component_never_wakes_the_kernel(self):
        kernel = SimKernel(watchdog=_watchdog(), time_skip=True)
        pulse = kernel.register(Pulse("pulse", [9]))
        kernel.register(PassiveComponent())
        exit_cycle = kernel.run(pulse.done)
        assert exit_cycle == 10
        # The pulse visited far fewer than 10 cycles: the passive
        # component's HORIZON bound let the jump straight to cycle 9.
        assert pulse.tick_calls <= 3
        assert kernel.ledger["passive"].idle == exit_cycle


class TestWatchdog:
    @pytest.mark.parametrize("time_skip", [False, True])
    def test_deadlock_times_out(self, time_skip):
        """A done() that never holds must raise SimulationTimeout even
        when every bound is HORIZON — the skip target is capped at the
        watchdog's cycle limit."""
        kernel = SimKernel(
            watchdog=_watchdog(budget=64), time_skip=time_skip
        )
        kernel.register(Pulse("stuck", []))
        with pytest.raises(SimulationTimeout):
            kernel.run(lambda: False)

    def test_budget_boundary_is_exact(self):
        """Regression for the limit-vs-skip off-by-one: check() admits
        the limit cycle itself and rejects the one after, and clamp_skip
        — the one place skip targets meet the budget — caps at exactly
        the first rejected cycle."""
        dog = _watchdog(budget=64)
        limit = dog.cycle_limit
        dog.check(limit)  # the boundary cycle is still inside the budget
        with pytest.raises(SimulationTimeout):
            dog.check(limit + 1)
        assert dog.clamp_skip(HORIZON) == limit + 1
        assert dog.clamp_skip(limit + 2) == limit + 1
        # Targets at or inside the budget pass through untouched —
        # clamping them would stall legitimate jumps.
        assert dog.clamp_skip(limit + 1) == limit + 1
        assert dog.clamp_skip(limit) == limit

    @pytest.mark.parametrize("time_skip", [False, True])
    def test_deadlock_raises_at_first_cycle_past_limit(self, time_skip):
        """Both loops must reach the budget boundary exactly: the raise
        happens at cycle limit + 1, not earlier (budget shortened) nor
        later (overshoot)."""

        class Recording(Watchdog):
            last_checked = -1

            def check(self, cycle):
                self.last_checked = cycle
                super().check(cycle)

        dog = Recording(
            1,
            system="test",
            limits=SimulationLimits(max_cycles_per_command=64),
        )
        kernel = SimKernel(watchdog=dog, time_skip=time_skip)
        kernel.register(Pulse("stuck", []))
        with pytest.raises(SimulationTimeout):
            kernel.run(lambda: False)
        assert dog.last_checked == dog.cycle_limit + 1


class TestFinalize:
    def test_tail_padding_completes_the_ledger(self):
        kernel, _, exit_cycle = _run([[3]], True)
        ledger = kernel.finalize(exit_cycle + 10)
        entry = ledger["pulse-0"]
        assert entry.total == exit_cycle + 10
        assert entry.idle >= 10  # the padded tail is post-work idle

    def test_idempotent_for_fixed_total(self):
        kernel, _, exit_cycle = _run([[3]], True)
        first = kernel.finalize(exit_cycle + 5)
        second = kernel.finalize(exit_cycle + 5)
        assert first == second

    def test_conflicting_totals_rejected(self):
        kernel, _, exit_cycle = _run([[3]], True)
        kernel.finalize(exit_cycle + 5)
        with pytest.raises(ConfigurationError):
            kernel.finalize(exit_cycle + 6)

    def test_total_below_exit_cycle_rejected(self):
        kernel, _, exit_cycle = _run([[3]], True)
        with pytest.raises(ConfigurationError):
            kernel.finalize(exit_cycle - 1)

    def test_ledger_values_are_component_cycles(self):
        kernel, _, exit_cycle = _run([[3]], False)
        ledger = kernel.finalize(exit_cycle)
        assert all(
            isinstance(entry, ComponentCycles) for entry in ledger.values()
        )


class Duo:
    """A toy self-accounting component speaking for two logical parts
    (the shape the SoA bank automaton registers with)."""

    name = "duo"
    ledger_names = ("part-a", "part-b")

    def __init__(self, schedule, missing=False):
        self.inner = Pulse("inner", schedule)
        self.missing = missing

    def tick(self, cycle):
        return self.inner.tick(cycle)

    def next_event_cycle(self, cycle):
        return self.inner.next_event_cycle(cycle)

    def account(self, start, end):
        return (0, 0, end - start)  # discarded placeholder

    def done(self):
        return self.inner.done()

    def finalize_ledger(self, total_cycles):
        out = {"part-a": ComponentCycles(busy=total_cycles)}
        if not self.missing:
            out["part-b"] = ComponentCycles(idle=total_cycles)
        return out


class TestSelfAccounting:
    def test_ledger_names_reserved_at_register(self):
        kernel = SimKernel(watchdog=_watchdog())
        kernel.register(Duo([1]))
        with pytest.raises(ConfigurationError):
            kernel.register(Pulse("part-a", [2]))

    def test_finalize_merges_component_ledger(self):
        for time_skip in (False, True):
            kernel = SimKernel(watchdog=_watchdog(), time_skip=time_skip)
            duo = kernel.register(Duo([1, 5]))
            exit_cycle = kernel.run(duo.done)
            ledger = kernel.finalize(exit_cycle + 3)
            assert ledger["part-a"] == ComponentCycles(busy=exit_cycle + 3)
            assert ledger["part-b"] == ComponentCycles(idle=exit_cycle + 3)
            assert "duo" not in ledger

    def test_missing_ledger_entry_rejected(self):
        kernel = SimKernel(watchdog=_watchdog())
        duo = kernel.register(Duo([1], missing=True))
        exit_cycle = kernel.run(duo.done)
        with pytest.raises(ConfigurationError):
            kernel.finalize(exit_cycle)

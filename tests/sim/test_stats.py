"""Tests for run results and bus statistics."""

import pytest

from repro.sdram.devstats import DeviceStats
from repro.sim.stats import BusStats, RunResult


def make_result(cycles, commands=4, system="pva-sdram"):
    return RunResult(
        system=system,
        cycles=cycles,
        commands=commands,
        read_commands=commands // 2,
        write_commands=commands - commands // 2,
        elements_read=commands * 16,
        elements_written=commands * 16,
    )


class TestBusStats:
    def test_busy_cycles(self):
        bus = BusStats(request_cycles=4, data_cycles=32, turnaround_cycles=2)
        assert bus.busy_cycles == 38

    def test_utilization(self):
        bus = BusStats(request_cycles=10, data_cycles=40)
        assert bus.utilization(100) == pytest.approx(0.5)

    def test_utilization_zero_cycles(self):
        assert BusStats().utilization(0) == 0.0


class TestDeviceStats:
    def test_columns(self):
        stats = DeviceStats(reads=10, writes=5)
        assert stats.columns == 15

    def test_row_reuse(self):
        stats = DeviceStats(activates=4, reads=10, writes=2)
        assert stats.row_reuse == 8

    def test_row_reuse_never_negative(self):
        stats = DeviceStats(activates=10, reads=2)
        assert stats.row_reuse == 0


class TestRunResult:
    def test_cycles_per_command(self):
        assert make_result(180, commands=10).cycles_per_command == 18.0

    def test_cycles_per_command_empty(self):
        assert make_result(0, commands=0).cycles_per_command == 0.0

    def test_speedup_over(self):
        fast = make_result(100)
        slow = make_result(300)
        assert fast.speedup_over(slow) == 3.0
        assert slow.speedup_over(fast) == pytest.approx(1 / 3)

    def test_speedup_zero_cycles(self):
        with pytest.raises(ZeroDivisionError):
            make_result(0).speedup_over(make_result(10))

    def test_normalized_to(self):
        assert make_result(150).normalized_to(make_result(100)) == 1.5

    def test_summary_fields(self):
        summary = make_result(100).summary()
        assert summary["system"] == "pva-sdram"
        assert summary["cycles"] == 100
        assert "bus_utilization" in summary

"""Tests for the SDRAM command log: both the log object itself and the
sequences it captures from real runs."""

import pytest

from repro.params import SDRAMTiming, SystemParams
from repro.pva.system import PVAMemorySystem
from repro.sdram.commands import SDRAMCommand
from repro.sim.trace_log import CommandEvent, CommandLog
from repro.types import AccessType, Vector, VectorCommand

SMALL = SystemParams(
    num_banks=4, cache_line_words=8, sdram=SDRAMTiming(row_words=64)
)


class TestCommandLogObject:
    def test_record_and_filter(self):
        log = CommandLog()
        log.record(CommandEvent(0, SDRAMCommand.ACTIVATE, 0, row=1))
        log.record(CommandEvent(2, SDRAMCommand.READ, 0, row=1, column=5))
        log.record(CommandEvent(3, SDRAMCommand.READ_AP, 0, row=1, column=6))
        log.record(CommandEvent(6, SDRAMCommand.PRECHARGE, 1))
        assert len(log) == 4
        assert len(log.activates()) == 1
        assert len(log.columns()) == 2
        assert len(log.auto_precharges()) == 1
        assert len(log.precharges()) == 1

    def test_busy_cycles_counts_distinct(self):
        log = CommandLog()
        log.record(CommandEvent(0, SDRAMCommand.ACTIVATE, 0, row=0))
        log.record(CommandEvent(0, SDRAMCommand.ACTIVATE, 1, row=0))
        log.record(CommandEvent(5, SDRAMCommand.READ, 0, column=0))
        assert log.busy_cycles() == 2

    def test_render(self):
        log = CommandLog()
        log.record(CommandEvent(0, SDRAMCommand.ACTIVATE, 0, row=7))
        text = log.render()
        assert "activate" in text
        assert "row 7" in text

    def test_render_limit(self):
        log = CommandLog()
        for c in range(10):
            log.record(CommandEvent(c, SDRAMCommand.READ, 0, column=c))
        text = log.render(limit=3)
        assert "7 more" in text

    def test_verify_monotone(self):
        log = CommandLog()
        log.record(CommandEvent(5, SDRAMCommand.READ, 0, column=0))
        log.record(CommandEvent(3, SDRAMCommand.READ, 0, column=1))
        with pytest.raises(AssertionError):
            log.verify_monotone()


class TestCapturedSequences:
    def run_with_logs(self, trace):
        system = PVAMemorySystem(SMALL)
        logs = system.attach_command_logs()
        system.run(trace)
        return logs

    def test_activate_precedes_first_column(self):
        trace = [
            VectorCommand(
                vector=Vector(base=0, stride=1, length=8),
                access=AccessType.READ,
            )
        ]
        for log in self.run_with_logs(trace):
            if not log.events:
                continue
            log.verify_monotone()
            assert log.events[0].command is SDRAMCommand.ACTIVATE
            first_column = log.columns()[0]
            t_rcd = SMALL.sdram.t_rcd
            assert first_column.cycle >= log.events[0].cycle + t_rcd

    def test_every_element_appears_once(self):
        v = Vector(base=3, stride=5, length=8)
        trace = [VectorCommand(vector=v, access=AccessType.READ)]
        logs = self.run_with_logs(trace)
        total_columns = sum(len(log.columns()) for log in logs)
        assert total_columns == 8

    def test_write_columns_logged_as_writes(self):
        trace = [
            VectorCommand(
                vector=Vector(base=0, stride=4, length=4),
                access=AccessType.WRITE,
                data=(1, 2, 3, 4),
            )
        ]
        logs = self.run_with_logs(trace)
        commands = [c for log in logs for c in log.commands()]
        assert all(
            not c.is_read for c in commands if c.is_column
        )

    def test_log_detached_by_default(self):
        system = PVAMemorySystem(SMALL)
        assert all(bank.device.log is None for bank in system.banks)

    def test_row_conflict_shows_precharge_or_ap(self):
        """Two requests to conflicting rows of the same internal bank must
        leave a precharge (explicit or auto) in the log between the two
        activates."""
        a = VectorCommand(
            vector=Vector(base=0, stride=4, length=4),
            access=AccessType.READ,
        )
        b = VectorCommand(
            vector=Vector(base=4096, stride=4, length=4),
            access=AccessType.READ,
        )
        logs = self.run_with_logs([a, b])
        log = logs[0]  # both vectors live in bank 0
        assert len(log.activates()) == 2
        closes = len(log.precharges()) + len(log.auto_precharges())
        assert closes >= 1

"""Unit tests for the next-event time-skip lower bounds.

The differential suite (``test_time_skip_equivalence.py``) proves the
composed engine cycle-exact; these tests pin the per-component contract:
each ``next_event_cycle(cycle)`` is clamped to ``>= cycle``, matches the
component's own scoreboard, and :data:`~repro.sim.events.HORIZON` marks
states that only another component's action can unblock.
"""

from __future__ import annotations

import pytest

from repro.core.pla import shared_k1_pla
from repro.params import SDRAMTiming, SystemParams
from repro.pva.bank_controller import BankController
from repro.sdram.device import SDRAMDevice
from repro.sdram.restimer import Restimer
from repro.sim.events import HORIZON
from repro.sram.device import SRAMDevice
from repro.bus.vector_bus import VectorBus
from repro.types import Vector


class TestRestimerBound:
    def test_idle_restimer_returns_now(self):
        timer = Restimer("t_rcd")
        assert timer.next_event_cycle(5) == 5

    def test_held_restimer_returns_release(self):
        timer = Restimer("t_rp")
        timer.hold_until(12)
        assert timer.next_event_cycle(5) == 12
        # The bound agrees with the scoreboard on both sides.
        assert not timer.available(11)
        assert timer.available(12)

    def test_bound_clamps_to_cycle(self):
        timer = Restimer("t_rcd")
        timer.hold_until(3)
        assert timer.next_event_cycle(7) == 7


class TestSDRAMDeviceBounds:
    def make(self, **kw):
        return SDRAMDevice(SDRAMTiming(**kw))

    def test_closed_row_column_is_horizon(self):
        device = self.make()
        assert device.column_ready_at(0, is_write=False) == HORIZON

    def test_open_row_column_matches_scoreboard(self):
        device = self.make()
        device.activate(0, cycle=0)
        ready = device.column_ready_at(0, is_write=False)
        assert ready < HORIZON
        assert not device.can_column(0, ready - 1, is_write=False)
        assert device.can_column(0, ready, is_write=False)

    def test_pins_bound_includes_turnaround(self):
        device = self.make()
        device.activate(0, cycle=0)
        ready = device.column_ready_at(0, is_write=False)
        device.column(0, ready, is_write=False)
        same_dir = device.pins_ready_at(is_write=False)
        reversed_dir = device.pins_ready_at(is_write=True)
        assert reversed_dir == same_dir + device.bus_turnaround
        assert not device.data_pins_ready(reversed_dir - 1, is_write=True)
        assert device.data_pins_ready(reversed_dir, is_write=True)

    def test_refresh_schedule_advances(self):
        device = self.make(refresh_interval=100)
        assert device.next_refresh_cycle == 100
        assert not device.maybe_refresh(99)
        assert device.maybe_refresh(100)
        assert device.next_refresh_cycle == 200
        # A refresh occupies the banks: their bounds move past t_rfc.
        assert device.next_event_cycle(101) >= 100 + device.timing.t_rfc

    def test_bound_clamps_to_cycle(self):
        device = self.make()
        assert device.next_event_cycle(50) == 50


class TestSRAMDeviceBounds:
    def test_column_bound_matches_scoreboard(self):
        device = SRAMDevice()
        device.column(0, cycle=4, is_write=False)
        ready = device.column_ready_at(1, is_write=False)
        assert not device.can_column(1, ready - 1, is_write=False)
        assert device.can_column(1, ready, is_write=False)

    def test_turnaround_in_bound(self):
        device = SRAMDevice()
        device.column(0, cycle=4, is_write=False)
        assert device.column_ready_at(1, is_write=True) == (
            device.column_ready_at(1, is_write=False)
            + device.bus_turnaround
        )


class TestVectorBusBound:
    def test_tracks_busy_until(self):
        bus = VectorBus(SystemParams())
        freed = bus.broadcast_request(10)
        assert bus.next_event_cycle(10) == freed
        assert bus.next_event_cycle(freed + 3) == freed + 3


class TestBankControllerBounds:
    def make(self, params=None):
        params = params or SystemParams(num_banks=4)
        device = SDRAMDevice(params.sdram)
        pla = shared_k1_pla(params.num_banks)
        return BankController(0, params, device, pla), params

    def test_idle_controller_is_quiet_at_horizon(self):
        bc, _ = self.make()
        assert bc.idle_at(0)
        assert bc.quiet_at(123456)
        assert bc.next_event_cycle(0) == HORIZON

    def test_broadcast_resets_the_stall_cache(self):
        bc, params = self.make()
        vector = Vector(base=0, stride=1, length=8)
        bc._skip_until = 999  # simulate a cached stall window
        bc.broadcast(txn_id=0, vector=vector, is_write=False, cycle=0)
        assert bc._skip_until == 0
        assert not bc.quiet_at(1)

    def test_queued_request_bounds_at_ready_cycle(self):
        bc, params = self.make()
        # A non-power-of-two stride goes through the FirstHit-Calculate
        # multiply-add, so the request becomes ready several cycles
        # after the broadcast — a gap the bound must expose.
        vector = Vector(base=0, stride=19, length=8)
        bc.broadcast(txn_id=0, vector=vector, is_write=False, cycle=0)
        ready = bc.rqf[0].ready_cycle
        assert ready > 1
        assert bc.next_event_cycle(1) == ready
        # ... and the bound is cached for the cycles in between.
        assert bc.quiet_at(ready - 1)
        assert not bc.quiet_at(ready)

    def test_bound_never_precedes_cycle(self):
        bc, _ = self.make()
        vector = Vector(base=0, stride=1, length=8)
        bc.broadcast(txn_id=0, vector=vector, is_write=False, cycle=0)
        ready = bc.rqf[0].ready_cycle
        assert bc.next_event_cycle(ready + 5) == ready + 5

    def test_skip_never_crosses_refresh(self):
        params = SystemParams(
            num_banks=4, sdram=SDRAMTiming(refresh_interval=50)
        )
        bc, _ = self.make(params)
        vector = Vector(base=0, stride=1, length=8)
        bc.broadcast(txn_id=0, vector=vector, is_write=False, cycle=0)
        assert bc.next_event_cycle(1) <= 50
        assert not bc.idle_at(50)


class TestHorizonSentinel:
    def test_is_a_plain_int(self):
        assert isinstance(HORIZON, int)
        assert HORIZON > 10**15  # far beyond any simulated cycle count

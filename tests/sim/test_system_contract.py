"""The shared MemorySystem contract, checked over every registered
system.

All four systems now run on the shared simulation kernel
(:class:`repro.sim.kernel.SimKernel`), so the same behavioural contract
must hold everywhere: the watchdog budget is honoured, ``run`` returns a
well-formed :class:`~repro.sim.stats.RunResult` with a complete
attribution ledger, ``reset()`` restores a just-built system, and
``capture_data`` controls payload capture without affecting timing.
"""

from __future__ import annotations

import pytest

from repro.api import available_systems, build_system
from repro.errors import SimulationTimeout
from repro.kernels import build_trace, kernel_by_name
from repro.params import SystemParams
from repro.sim import simulation_limits
from repro.sim.events import ENV_TOGGLE

ALL_SYSTEMS = available_systems()


@pytest.fixture(autouse=True)
def _no_env_override(monkeypatch):
    monkeypatch.delenv(ENV_TOGGLE, raising=False)


def _trace(params, kernel="copy", stride=4, elements=64):
    return build_trace(
        kernel_by_name(kernel), stride=stride, params=params, elements=elements
    )


@pytest.mark.parametrize("system", ALL_SYSTEMS)
class TestSystemContract:
    def test_satisfies_protocol(self, system):
        instance = build_system(system, SystemParams())
        assert instance.name
        assert callable(instance.run)
        assert callable(instance.reset)

    def test_run_result_well_formed(self, system, prototype_params):
        trace = _trace(prototype_params)
        result = build_system(system, prototype_params).run(trace)
        assert result.system
        assert result.cycles > 0
        assert result.commands == len(trace)
        assert result.read_commands + result.write_commands == len(trace)
        assert result.elements_read >= 0
        assert result.elements_written >= 0
        summary = result.summary()
        assert summary["cycles"] == result.cycles

    def test_attribution_complete(self, system, prototype_params):
        """Every run carries a kernel ledger whose per-component buckets
        sum to the run's total cycle count."""
        result = build_system(system, prototype_params).run(
            _trace(prototype_params)
        )
        assert result.attribution
        assert result.attribution_consistent()
        for buckets in result.attribution.values():
            assert buckets.total == result.cycles
        summary = result.attribution_summary()
        assert set(summary) == set(result.attribution)

    @pytest.mark.parametrize("sim_mode", ["tick", "skip"])
    def test_honors_watchdog(self, system, prototype_params, sim_mode):
        """An impossibly small cycle budget must surface as a contained
        SimulationTimeout in both run-loop modes — never a hang."""
        from dataclasses import replace

        params = replace(prototype_params, sim_mode=sim_mode)
        trace = _trace(params)
        with simulation_limits(max_cycles_per_command=1):
            with pytest.raises(SimulationTimeout):
                build_system(system, params).run(trace)

    def test_reset_is_idempotent(self, system, prototype_params):
        """reset() restores a just-built system, and resetting twice is
        the same as resetting once."""
        trace = _trace(prototype_params)
        fresh = build_system(system, prototype_params).run(
            trace, capture_data=True
        )
        instance = build_system(system, prototype_params)
        first = instance.run(trace, capture_data=True)
        instance.reset()
        instance.reset()
        again = instance.run(trace, capture_data=True)
        assert first == fresh
        assert again == fresh

    def test_capture_data_controls_payloads(self, system, prototype_params):
        """capture_data=True gathers read payloads; False leaves them
        unset; timing is identical either way."""
        trace = _trace(prototype_params)
        plain = build_system(system, prototype_params).run(trace)
        captured = build_system(system, prototype_params).run(
            trace, capture_data=True
        )
        assert plain.read_lines is None
        assert captured.read_lines is not None
        assert len(captured.read_lines) == captured.read_commands
        assert captured.cycles == plain.cycles
        assert captured.attribution == plain.attribution

"""Differential tests: the event-driven cycle-skipping run loop must be
cycle-exact with the reference tick loop.

Every test runs the same trace twice — ``sim_mode="tick"`` (the
cycle-by-cycle reference) and ``sim_mode="skip"`` (the next-event
fast path) — and asserts the two :class:`~repro.sim.stats.RunResult`
objects are **equal**, which covers cycle counts, per-command latencies,
device statistics, bus statistics, and (with ``capture_data=True``) the
gathered data payloads.  An underestimated lower bound can only cost
speed; an *overestimated* one would show up here as a divergence.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.api import available_systems, simulate
from repro.kernels import ALIGNMENTS, build_trace, kernel_by_name
from repro.params import SDRAMTiming, SystemParams
from repro.sim.events import ENV_TOGGLE

ALL_SYSTEMS = available_systems()
PAPER_STRIDES = (1, 2, 4, 8, 16, 19)


@pytest.fixture(autouse=True)
def _no_env_override(monkeypatch):
    """The differential harness controls the mode through params alone."""
    monkeypatch.delenv(ENV_TOGGLE, raising=False)


def assert_modes_agree(trace, params, system, capture_data=False):
    tick = simulate(
        trace,
        replace(params, sim_mode="tick"),
        system=system,
        capture_data=capture_data,
    )
    skip = simulate(
        trace,
        replace(params, sim_mode="skip"),
        system=system,
        capture_data=capture_data,
    )
    assert tick == skip, (
        f"{system}: time-skip diverged from the tick loop "
        f"({tick.cycles} vs {skip.cycles} cycles)"
    )
    return tick


class TestPaperConfiguration:
    """The prototype configuration over the evaluation strides."""

    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    @pytest.mark.parametrize("stride", PAPER_STRIDES)
    def test_copy_all_strides(self, system, stride, prototype_params):
        trace = build_trace(
            kernel_by_name("copy"),
            stride=stride,
            params=prototype_params,
            elements=256,
        )
        assert_modes_agree(trace, prototype_params, system)

    @pytest.mark.parametrize("system", ("pva-sdram", "pva-sram"))
    @pytest.mark.parametrize(
        "alignment", ALIGNMENTS, ids=[a.name for a in ALIGNMENTS]
    )
    def test_saxpy_stride19_all_alignments(
        self, system, alignment, prototype_params
    ):
        trace = build_trace(
            kernel_by_name("saxpy"),
            stride=19,
            params=prototype_params,
            elements=128,
            alignment=alignment,
        )
        assert_modes_agree(trace, prototype_params, system)

    @pytest.mark.parametrize("system", ("pva-sdram", "pva-sram"))
    def test_data_payloads_match(self, system, prototype_params):
        """capture_data=True: the gathered lines and per-command
        latencies must be identical, not just the cycle totals."""
        trace = build_trace(
            kernel_by_name("swap"),
            stride=19,
            params=prototype_params,
            elements=128,
        )
        tick = assert_modes_agree(
            trace, prototype_params, system, capture_data=True
        )
        assert tick.read_lines  # the comparison actually saw payloads

    def test_refresh_enabled(self):
        """Auto-refresh interacts with every skip bound; a realistic
        refresh period must not break equivalence."""
        params = SystemParams(sdram=SDRAMTiming(refresh_interval=777))
        trace = build_trace(
            kernel_by_name("copy"), stride=19, params=params, elements=256
        )
        assert_modes_agree(trace, params, "pva-sdram", capture_data=True)

    def test_issue_interval_throttled_front_end(self):
        params = SystemParams(issue_interval=7)
        trace = build_trace(
            kernel_by_name("scale"), stride=4, params=params, elements=128
        )
        assert_modes_agree(trace, params, "pva-sdram")


class TestFuzzedGeometries:
    """Seeded random machine geometries x kernels x strides, all four
    systems, payload comparison included."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_geometry(self, seed):
        rng = random.Random(0xC0FFEE + seed)
        params = SystemParams(
            num_banks=rng.choice((4, 8, 16, 32)),
            cache_line_words=rng.choice((8, 16, 32)),
            num_vector_contexts=rng.choice((1, 2, 4)),
            bypass_paths=rng.random() < 0.5,
            issue_interval=rng.choice((0, 0, 3)),
            bus_turnaround=rng.choice((0, 1, 2)),
            sdram=SDRAMTiming(
                t_rcd=rng.randint(1, 3),
                cas_latency=rng.randint(1, 3),
                t_rp=rng.randint(1, 3),
                t_wr=rng.randint(0, 2),
                internal_banks=rng.choice((2, 4)),
                row_words=rng.choice((64, 128, 256)),
                refresh_interval=rng.choice((0, 777)),
            ),
        )
        kernel = rng.choice(
            ("copy", "copy2", "saxpy", "scale", "swap", "tridiag", "vaxpy")
        )
        stride = rng.choice(PAPER_STRIDES)
        alignment = rng.choice(ALIGNMENTS)
        trace = build_trace(
            kernel_by_name(kernel),
            stride=stride,
            params=params,
            elements=96,
            alignment=alignment,
        )
        for system in ALL_SYSTEMS:
            assert_modes_agree(trace, params, system, capture_data=True)


class TestEnvOverride:
    """The ``REPRO_TIME_SKIP`` escape hatch wins over the params field."""

    def test_env_forces_tick_loop(self, monkeypatch, prototype_params):
        from repro.sim.events import time_skip_enabled

        monkeypatch.setenv(ENV_TOGGLE, "0")
        assert not time_skip_enabled(prototype_params)
        # ... and the forced mode still produces the reference result.
        trace = build_trace(
            kernel_by_name("copy"),
            stride=8,
            params=prototype_params,
            elements=64,
        )
        forced = simulate(trace, prototype_params, system="pva-sdram")
        monkeypatch.delenv(ENV_TOGGLE)
        reference = simulate(
            trace,
            replace(prototype_params, sim_mode="tick"),
            system="pva-sdram",
        )
        assert forced == reference

    def test_env_forces_skip_loop(self, monkeypatch, prototype_params):
        from repro.sim.events import time_skip_enabled

        monkeypatch.setenv(ENV_TOGGLE, "1")
        assert time_skip_enabled(replace(prototype_params, sim_mode="tick"))

    def test_auto_defers_to_params(self, monkeypatch, prototype_params):
        from repro.sim.events import time_skip_enabled

        monkeypatch.setenv(ENV_TOGGLE, "auto")
        assert time_skip_enabled(prototype_params)
        assert not time_skip_enabled(
            replace(prototype_params, sim_mode="tick")
        )

"""Differential suite: ``sim_mode="soa"`` vs ``sim_mode="precompute"``.

The structure-of-arrays bank automaton (:mod:`repro.pva.soa`) is a pure
representation change: it must reproduce the object backend's
:class:`~repro.sim.stats.RunResult` bit for bit — total cycles, captured
data payloads, per-bank statistics and the per-component attribution
ledger — on every workload either can run.  These tests sweep the
paper's strides/alignments, fuzzed geometries/timings, both run loops,
and back-to-back runs on one system object (state carry through
``writeback``).
"""

import random
from dataclasses import replace

import pytest

from repro.api import build_system, simulate
from repro.kernels import ALIGNMENTS, KERNELS, build_trace, kernel_by_name
from repro.params import SystemParams
from repro.types import AccessType, ExplicitCommand, Vector, VectorCommand

PVA_SYSTEMS = ("pva-sdram", "pva-sram")

ROW_POLICIES = ("paper", "open", "close", "history")


def _run_both(trace, base, system, *, capture_data=True):
    """Simulate ``trace`` under precompute and soa; return both results."""
    pre = replace(base, sim_mode="precompute")
    soa = replace(base, sim_mode="soa")
    a = simulate(trace, pre, system=system, capture_data=capture_data)
    b = simulate(trace, soa, system=system, capture_data=capture_data)
    return a, b


@pytest.mark.parametrize("system", PVA_SYSTEMS)
@pytest.mark.parametrize("kernel", KERNELS)
def test_paper_sweep_bit_identical(system, kernel):
    """Every kernel x stride x alignment of the section-6.2 grid slice:
    the two backends return equal RunResults (cycles, capture_data,
    attribution and all)."""
    k = kernel_by_name(kernel)
    for stride in (1, 19):
        for alignment in ALIGNMENTS:
            base = SystemParams()
            trace = build_trace(
                k,
                stride=stride,
                alignment=alignment,
                elements=256,
                params=base,
            )
            a, b = _run_both(trace, base, system)
            assert a == b, (system, kernel, stride, alignment.name)


@pytest.mark.parametrize("system", PVA_SYSTEMS)
def test_tick_loop_equivalence(system, monkeypatch):
    """The automaton is loop-agnostic: under the reference tick loop
    (forced via ``REPRO_TIME_SKIP=0``) it still matches the object
    backend."""
    from repro.sim.events import ENV_TOGGLE

    monkeypatch.setenv(ENV_TOGGLE, "0")
    base = SystemParams()
    trace = build_trace(
        kernel_by_name("saxpy"), stride=19, elements=256, params=base
    )
    a, b = _run_both(trace, base, system)
    assert a == b
    assert a.cycles > 0


def test_explicit_commands_equivalent():
    """Explicit (indexed) commands snoop through broadcast_pairs; both
    backends agree on cycles and captured data."""
    base = SystemParams()
    trace = [
        ExplicitCommand(
            addresses=(3, 19, 64, 64 + 16, 5, 1000),
            access=AccessType.WRITE,
            broadcast_cycles=3,
            data=(10, 20, 30, 40, 50, 60),
        ),
        ExplicitCommand(
            addresses=(3, 19, 64, 64 + 16, 5, 1000),
            access=AccessType.READ,
            broadcast_cycles=3,
        ),
    ]
    a, b = _run_both(trace, base, "pva-sdram")
    assert a == b


def test_sram_storage_equality_after_writes():
    """After a write-heavy run the device storages of the two backends
    hold identical contents (the SoA data movement writes through the
    same staging units and storage dicts)."""
    base = SystemParams()
    trace = [
        VectorCommand(
            vector=Vector(base=7, stride=19, length=32),
            access=AccessType.WRITE,
            data=tuple(range(100, 132)),
        ),
        VectorCommand(
            vector=Vector(base=3, stride=1, length=32),
            access=AccessType.WRITE,
            data=tuple(range(200, 232)),
        ),
    ]
    for system in PVA_SYSTEMS:
        sys_pre = build_system(system, replace(base, sim_mode="precompute"))
        sys_soa = build_system(system, replace(base, sim_mode="soa"))
        ra = sys_pre.run(trace)
        rb = sys_soa.run(trace)
        assert ra == rb
        for bank_a, bank_b in zip(sys_pre.banks, sys_soa.banks):
            assert bank_a.device._storage == bank_b.device._storage


def _random_trace(rng):
    commands = []
    for _ in range(rng.randint(2, 10)):
        if rng.random() < 0.25:
            n = rng.randint(1, 20)
            addresses = tuple(rng.randrange(0, 1 << 16) for _ in range(n))
            access = (
                AccessType.WRITE if rng.random() < 0.5 else AccessType.READ
            )
            data = (
                tuple(rng.randrange(0, 1000) for _ in range(n))
                if access == AccessType.WRITE
                else None
            )
            commands.append(
                ExplicitCommand(
                    addresses=addresses,
                    access=access,
                    broadcast_cycles=(n + 1) // 2,
                    data=data,
                )
            )
        else:
            length = rng.randint(1, 32)
            vector = Vector(
                base=rng.randrange(0, 1 << 14),
                stride=rng.randint(1, 64),
                length=length,
            )
            access = (
                AccessType.WRITE if rng.random() < 0.5 else AccessType.READ
            )
            data = (
                tuple(rng.randrange(0, 1000) for _ in range(length))
                if access == AccessType.WRITE
                else None
            )
            commands.append(VectorCommand(vector=vector, access=access, data=data))
    return commands


def test_fuzzed_geometries_and_state_carry(monkeypatch):
    """Randomized geometries, timings, policies, refresh, context and
    FIFO depths, both PVA systems, both run loops (via the
    ``REPRO_TIME_SKIP`` toggle), fresh runs AND back-to-back runs on
    one system object (the writeback path must leave the object graph
    exactly as the object backend would)."""
    from repro.sim.events import ENV_TOGGLE

    rng = random.Random(20260808)
    for trial in range(60):
        monkeypatch.setenv(ENV_TOGGLE, "1" if rng.random() < 0.8 else "0")
        num_banks = rng.choice([1, 2, 4, 8, 16])
        max_transactions = rng.randint(1, 8)
        sdram = dict(
            t_rcd=rng.randint(1, 4),
            cas_latency=rng.randint(1, 4),
            t_rp=rng.randint(1, 4),
            t_wr=rng.randint(1, 3),
            internal_banks=rng.choice([1, 2, 4, 8]),
            row_words=rng.choice([64, 128, 512]),
            refresh_interval=rng.choice([0, 0, 150, 700]),
            t_rfc=rng.randint(2, 10),
        )
        base = SystemParams(
            num_banks=num_banks,
            max_transactions=max_transactions,
            num_vector_contexts=rng.randint(1, 4),
            request_fifo_depth=max(max_transactions, rng.randint(1, 10)),
            fhc_latency=rng.randint(1, 4),
            bus_turnaround=rng.randint(0, 3),
            bypass_paths=rng.random() < 0.5,
            row_policy=rng.choice(ROW_POLICIES),
            issue_interval=rng.choice([0, 0, 17, 256]),
        )
        base = replace(base, sdram=replace(base.sdram, **sdram))
        system = rng.choice(PVA_SYSTEMS)
        trace = _random_trace(rng)
        a, b = _run_both(trace, base, system)
        assert a == b, (trial, system)
        # Back-to-back on one system object per mode: run N leaves
        # exactly the state run N+1 of the other backend expects.
        sys_pre = build_system(system, replace(base, sim_mode="precompute"))
        sys_soa = build_system(system, replace(base, sim_mode="soa"))
        trace2 = _random_trace(rng)
        for tr in (trace, trace2):
            ra = sys_pre.run(tr, capture_data=True)
            rb = sys_soa.run(tr, capture_data=True)
            assert ra == rb, (trial, system, "back-to-back")

"""Multi-channel topologies across every backend and baseline.

The topology generalization (channel-interleaved word addressing, line
transfers split evenly across channels) must behave identically in all
four ``sim_mode`` backends — they share one bus-occupancy model — and
the analytic formulas must keep predicting the serial baselines
exactly.
"""

from dataclasses import replace

import pytest

from repro.analysis.model import (
    cacheline_serial_cycles,
    gathering_serial_cycles,
    pva_lower_bound,
)
from repro.api import simulate
from repro.kernels import ALIGNMENTS, build_trace, kernel_by_name
from repro.params import SIM_MODES, SystemParams

MULTI_CHANNEL_PARAMS = (
    SystemParams(num_channels=2),
    SystemParams(num_channels=4),
    SystemParams(num_channels=2, ranks_per_channel=2),
    SystemParams(num_banks=8, num_channels=2, cache_line_words=16),
)


def _trace(params, kernel="saxpy", stride=19, elements=128):
    return build_trace(
        kernel_by_name(kernel),
        stride=stride,
        params=params,
        elements=elements,
    )


class TestBackendAgreement:
    @pytest.mark.parametrize("base", MULTI_CHANNEL_PARAMS)
    @pytest.mark.parametrize("system", ("pva-sdram", "pva-sram"))
    def test_all_four_modes_bit_identical(self, base, system):
        trace = _trace(base)
        results = {
            mode: simulate(
                trace, replace(base, sim_mode=mode), system=system
            )
            for mode in SIM_MODES
        }
        reference = results["tick"]
        assert reference.cycles > 0
        for mode, result in results.items():
            assert result == reference, mode

    @pytest.mark.parametrize("stride", (1, 4, 19))
    @pytest.mark.parametrize("alignment", ALIGNMENTS)
    def test_two_channel_stride_alignment_sweep(self, stride, alignment):
        base = SystemParams(num_channels=2)
        trace = build_trace(
            kernel_by_name("copy"),
            stride=stride,
            alignment=alignment,
            elements=128,
            params=base,
        )
        results = [
            simulate(trace, replace(base, sim_mode=mode), system="pva-sdram")
            for mode in SIM_MODES
        ]
        assert all(r == results[0] for r in results[1:])


class TestChannelScaling:
    def test_more_channels_never_slow_the_pva_down(self):
        """Splitting the line transfer across channels relieves the bus
        bottleneck on dense accesses."""
        trace_params = SystemParams()
        trace = _trace(trace_params, kernel="copy", stride=1)
        one = simulate(trace, trace_params, system="pva-sdram").cycles
        two = simulate(
            trace, SystemParams(num_channels=2), system="pva-sdram"
        ).cycles
        four = simulate(
            trace, SystemParams(num_channels=4), system="pva-sdram"
        ).cycles
        assert one > two > four

    @pytest.mark.parametrize("base", MULTI_CHANNEL_PARAMS)
    def test_simulated_cycles_respect_the_lower_bound(self, base):
        trace = _trace(base)
        cycles = simulate(trace, base, system="pva-sdram").cycles
        assert cycles >= pva_lower_bound(trace, base)


class TestSerialBaselinesMatchAnalysis:
    @pytest.mark.parametrize("channels", (1, 2, 4))
    def test_cacheline_serial_formula_exact(self, channels):
        params = SystemParams(num_channels=channels)
        trace = _trace(params, kernel="vaxpy", stride=2)
        assert simulate(
            trace, params, system="cacheline-serial"
        ).cycles == cacheline_serial_cycles(trace, params)

    @pytest.mark.parametrize("channels", (1, 2, 4))
    def test_gathering_serial_formula_exact(self, channels):
        params = SystemParams(num_channels=channels)
        trace = _trace(params, kernel="vaxpy", stride=2)
        assert simulate(
            trace, params, system="gathering-serial"
        ).cycles == gathering_serial_cycles(trace, params)

"""Tests for the text timeline renderer."""

from repro.params import SDRAMTiming, SystemParams
from repro.pva.system import PVAMemorySystem
from repro.sdram.commands import SDRAMCommand
from repro.sim.timeline import bank_utilization, render_timeline
from repro.sim.trace_log import CommandEvent, CommandLog
from repro.types import AccessType, Vector, VectorCommand

SMALL = SystemParams(
    num_banks=4, cache_line_words=8, sdram=SDRAMTiming(row_words=64)
)


def make_log(events):
    log = CommandLog()
    for event in events:
        log.record(event)
    return log


class TestRenderer:
    def test_symbols_placed_at_cycles(self):
        log = make_log(
            [
                CommandEvent(0, SDRAMCommand.ACTIVATE, 0, row=0),
                CommandEvent(2, SDRAMCommand.READ, 0, row=0, column=0),
                CommandEvent(3, SDRAMCommand.READ_AP, 0, row=0, column=1),
            ]
        )
        text = render_timeline([log])
        row = text.splitlines()[1]
        assert row.endswith("A.rR")

    def test_idle_banks_all_dots(self):
        busy = make_log([CommandEvent(1, SDRAMCommand.WRITE, 0, column=0)])
        idle = CommandLog()
        text = render_timeline([busy, idle], end=4)
        rows = text.splitlines()
        assert rows[2].split()[-1] == "...."

    def test_truncation_note(self):
        log = make_log(
            [CommandEvent(c, SDRAMCommand.READ, 0, column=c) for c in range(0, 500, 5)]
        )
        text = render_timeline([log], width=50)
        assert "more cycles" in text

    def test_window_selection(self):
        log = make_log(
            [
                CommandEvent(5, SDRAMCommand.READ, 0, column=0),
                CommandEvent(50, SDRAMCommand.WRITE, 0, column=1),
            ]
        )
        text = render_timeline([log], start=40, end=60)
        assert "w" in text
        assert "r" not in text.splitlines()[1]

    def test_real_run_timeline(self):
        system = PVAMemorySystem(SMALL)
        logs = system.attach_command_logs()
        trace = [
            VectorCommand(
                vector=Vector(base=0, stride=1, length=8),
                access=AccessType.READ,
            )
        ]
        system.run(trace)
        text = render_timeline(logs)
        # Every bank got an activate and two reads (8 elements / 4 banks).
        assert text.count("A") >= 4 + 1  # +1 from the legend line
        assert len(text.splitlines()) == 1 + 4 + 1  # ruler + banks + legend


class TestUtilization:
    def test_bank_utilization(self):
        log = make_log(
            [
                CommandEvent(0, SDRAMCommand.ACTIVATE, 0, row=0),
                CommandEvent(2, SDRAMCommand.READ, 0, column=0),
            ]
        )
        idle = CommandLog()
        assert bank_utilization([log, idle], total_cycles=4) == [0.5, 0.0]

    def test_zero_cycles(self):
        assert bank_utilization([CommandLog()], 0) == [0.0]

"""The simulation watchdog: cycle and wall-clock containment."""

import time

import pytest

from repro.errors import ConfigurationError, ReproError, SimulationTimeout
from repro.sim.runner import (
    SimulationLimits,
    Watchdog,
    active_limits,
    simulation_limits,
)


class TestWatchdog:
    def test_within_budget_is_silent(self):
        dog = Watchdog(2, limits=SimulationLimits(max_cycles_per_command=10))
        for cycle in range(20):
            dog.check(cycle)

    def test_cycle_budget_trips(self):
        dog = Watchdog(2, limits=SimulationLimits(max_cycles_per_command=10))
        with pytest.raises(SimulationTimeout):
            dog.check(21)

    def test_timeout_is_a_repro_error(self):
        dog = Watchdog(1, limits=SimulationLimits(max_cycles_per_command=1))
        with pytest.raises(ReproError):
            dog.check(2)

    def test_empty_trace_still_has_a_budget(self):
        dog = Watchdog(0, limits=SimulationLimits(max_cycles_per_command=8))
        dog.check(8)
        with pytest.raises(SimulationTimeout):
            dog.check(9)

    def test_wall_clock_budget_trips(self):
        dog = Watchdog(
            1,
            limits=SimulationLimits(
                max_cycles_per_command=10**9, max_wall_seconds=0.05
            ),
        )
        deadline = time.monotonic() + 10.0
        with pytest.raises(SimulationTimeout):
            while time.monotonic() < deadline:
                dog.check(0)
        assert time.monotonic() < deadline  # tripped, not timed out

    def test_limits_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationLimits(max_cycles_per_command=0)
        with pytest.raises(ConfigurationError):
            SimulationLimits(max_wall_seconds=-1.0)

    def test_wall_clock_probed_on_cycle_jumps(self):
        """Regression: under the time-skip run loop a single check can
        stand for thousands of skipped cycles, so the wall clock must be
        probed on elapsed *simulated* cycles, not only every 1024th
        check — otherwise a skipping run blows far past its budget."""
        dog = Watchdog(
            10**6,
            limits=SimulationLimits(
                max_cycles_per_command=10**9, max_wall_seconds=0.01
            ),
        )
        dog.check(0)  # arms the first probe window
        time.sleep(0.05)  # exhaust the wall budget
        # Far fewer than 1024 checks, but each jumps past the probe
        # stride — the deadline must still be noticed immediately.
        with pytest.raises(SimulationTimeout):
            dog.check(50_000)


class TestLimitsOverride:
    def test_context_manager_scopes_the_override(self):
        default = active_limits()
        with simulation_limits(max_cycles_per_command=7) as limits:
            assert limits.max_cycles_per_command == 7
            assert active_limits() is limits
            # the wall-clock default is untouched by a partial override
            assert limits.max_wall_seconds == default.max_wall_seconds
        assert active_limits() is default

    def test_new_watchdogs_pick_up_the_override(self):
        with simulation_limits(max_cycles_per_command=3):
            dog = Watchdog(1)
        with pytest.raises(SimulationTimeout):
            dog.check(4)


class TestSystemsAreContained:
    """Every paper system runs its trace under a watchdog: shrink the
    budget and a healthy run becomes a contained SimulationTimeout."""

    @pytest.mark.parametrize(
        "system",
        ["pva-sdram", "pva-sram", "cacheline-serial", "gathering-serial"],
    )
    def test_tiny_budget_trips_each_system(self, system):
        from repro.api import simulate
        from repro.kernels import build_trace, kernel_by_name
        from repro.params import SystemParams

        params = SystemParams()
        trace = build_trace(
            kernel_by_name("copy"), stride=1, params=params, elements=256
        )
        with simulation_limits(max_cycles_per_command=1):
            with pytest.raises(SimulationTimeout):
                simulate(trace, params, system=system)

    @pytest.mark.parametrize(
        "system",
        ["pva-sdram", "pva-sram", "cacheline-serial", "gathering-serial"],
    )
    def test_default_budget_is_generous(self, system):
        from repro.api import simulate
        from repro.kernels import build_trace, kernel_by_name
        from repro.params import SystemParams

        params = SystemParams()
        trace = build_trace(
            kernel_by_name("copy"), stride=19, params=params, elements=128
        )
        assert simulate(trace, params, system=system).cycles > 0

"""Differential suite: ``sim_mode="window"`` vs the rest of the ladder.

The closed-form window backend (:mod:`repro.pva.window`) resolves each
bank's service chain arithmetically instead of event-stepping it, with
a conservative per-chain fallback to the inherited SoA walk.  Whatever
mix of closed-form commits and fallbacks a workload provokes, the
observable :class:`~repro.sim.stats.RunResult` must be bit-identical to
the reference tick loop — total cycles, per-bank statistics and the
per-component attribution ledger.  These tests sweep the paper's
strides/alignments, adversarial fuzzed geometries (refresh deadlines
landing mid-chain, degenerate stride-1 runs, single-bank and
single-internal-bank devices), both run loops, back-to-back runs on one
system object, and — in the fuzz loop — all five ladder modes at once.
"""

import random
from dataclasses import replace

import pytest

from repro.api import build_system, simulate
from repro.errors import ConfigurationError
from repro.kernels import ALIGNMENTS, KERNELS, build_trace, kernel_by_name
from repro.params import SIM_MODES, SystemParams
from repro.types import AccessType, ExplicitCommand, Vector, VectorCommand

PVA_SYSTEMS = ("pva-sdram", "pva-sram")

ROW_POLICIES = ("paper", "open", "close", "history")


def _run_both(trace, base, system, *, capture_data=True):
    """Simulate ``trace`` under tick and window; return both results."""
    tick = replace(base, sim_mode="tick")
    window = replace(base, sim_mode="window")
    a = simulate(trace, tick, system=system, capture_data=capture_data)
    b = simulate(trace, window, system=system, capture_data=capture_data)
    return a, b


@pytest.mark.parametrize("system", PVA_SYSTEMS)
@pytest.mark.parametrize("kernel", KERNELS)
def test_paper_sweep_bit_identical(system, kernel):
    """Every kernel x stride x alignment of the section-6.2 grid slice:
    the closed form reproduces the reference tick loop's RunResult
    (cycles, capture_data, attribution and all)."""
    k = kernel_by_name(kernel)
    for stride in (1, 19):
        for alignment in ALIGNMENTS:
            base = SystemParams()
            trace = build_trace(
                k,
                stride=stride,
                alignment=alignment,
                elements=256,
                params=base,
            )
            a, b = _run_both(trace, base, system)
            assert a == b, (system, kernel, stride, alignment.name)


@pytest.mark.parametrize("system", PVA_SYSTEMS)
def test_tick_loop_equivalence(system, monkeypatch):
    """The window backend is loop-agnostic: under the reference tick
    loop (forced via ``REPRO_TIME_SKIP=0``) it still matches."""
    from repro.sim.events import ENV_TOGGLE

    monkeypatch.setenv(ENV_TOGGLE, "0")
    base = SystemParams()
    trace = build_trace(
        kernel_by_name("saxpy"), stride=19, elements=256, params=base
    )
    a, b = _run_both(trace, base, system)
    assert a == b
    assert a.cycles > 0


def test_explicit_commands_equivalent():
    """Explicit (indexed) commands snoop through broadcast_pairs; the
    closed form agrees on cycles and captured data."""
    base = SystemParams()
    trace = [
        ExplicitCommand(
            addresses=(3, 19, 64, 64 + 16, 5, 1000),
            access=AccessType.WRITE,
            broadcast_cycles=3,
            data=(10, 20, 30, 40, 50, 60),
        ),
        ExplicitCommand(
            addresses=(3, 19, 64, 64 + 16, 5, 1000),
            access=AccessType.READ,
            broadcast_cycles=3,
        ),
    ]
    a, b = _run_both(trace, base, "pva-sdram")
    assert a == b


def test_sram_storage_equality_after_writes():
    """After a write-heavy run the device storages of the two backends
    hold identical contents."""
    base = SystemParams()
    trace = [
        VectorCommand(
            vector=Vector(base=7, stride=19, length=32),
            access=AccessType.WRITE,
            data=tuple(range(100, 132)),
        ),
        VectorCommand(
            vector=Vector(base=3, stride=1, length=32),
            access=AccessType.WRITE,
            data=tuple(range(200, 232)),
        ),
    ]
    for system in PVA_SYSTEMS:
        sys_tick = build_system(system, replace(base, sim_mode="tick"))
        sys_win = build_system(system, replace(base, sim_mode="window"))
        ra = sys_tick.run(trace)
        rb = sys_win.run(trace)
        assert ra == rb
        for bank_a, bank_b in zip(sys_tick.banks, sys_win.banks):
            assert bank_a.device._storage == bank_b.device._storage


def test_refresh_deadline_lands_mid_chain():
    """A refresh interval short enough to expire *inside* a service
    chain forces the conservative fallback path; cycles and the refresh
    attribution component must still match tick exactly."""
    base = SystemParams()
    base = replace(
        base, sdram=replace(base.sdram, refresh_interval=40, t_rfc=7)
    )
    trace = build_trace(
        kernel_by_name("saxpy"), stride=19, elements=256, params=base
    )
    a, b = _run_both(trace, base, "pva-sdram")
    assert a == b
    # The short cadence must actually have perturbed the run (otherwise
    # this test exercises nothing): the dense slice is bus-bound so
    # total cycles hide the refresh, but the bank ledger cannot.
    quiet = replace(base, sdram=replace(base.sdram, refresh_interval=0))
    c = simulate(
        build_trace(
            kernel_by_name("saxpy"), stride=19, elements=256, params=quiet
        ),
        replace(quiet, sim_mode="tick"),
        system="pva-sdram",
    )
    assert a.attribution["bank-0"] != c.attribution["bank-0"]


def test_degenerate_shapes():
    """Stride-1 single-run chains, a single external bank, and a single
    internal bank per device each exercise a boundary of the run
    partition; all must match tick bit for bit."""
    shapes = [
        SystemParams(),  # stride handled per-trace below
        SystemParams(num_banks=1),
        None,  # placeholder: internal_banks=1 built explicitly
    ]
    one_ib = SystemParams()
    shapes[2] = replace(one_ib, sdram=replace(one_ib.sdram, internal_banks=1))
    for base in shapes:
        for stride in (1, 19):
            trace = build_trace(
                kernel_by_name("copy"),
                stride=stride,
                elements=128,
                params=base,
            )
            a, b = _run_both(trace, base, "pva-sdram")
            assert a == b, (base.num_banks, base.sdram.internal_banks, stride)


def test_non_power_of_two_internal_banks_unconstructible():
    """The SDRAM timing model only admits power-of-two internal bank
    counts, so a 3-bank device — the one shape whose interleaving the
    closed form was never validated against — cannot be constructed at
    all.  Documented here so the gap is explicit, not silent."""
    base = SystemParams()
    with pytest.raises(ConfigurationError):
        replace(base, sdram=replace(base.sdram, internal_banks=3))


def _random_trace(rng):
    commands = []
    for _ in range(rng.randint(2, 10)):
        if rng.random() < 0.25:
            n = rng.randint(1, 20)
            addresses = tuple(rng.randrange(0, 1 << 16) for _ in range(n))
            access = (
                AccessType.WRITE if rng.random() < 0.5 else AccessType.READ
            )
            data = (
                tuple(rng.randrange(0, 1000) for _ in range(n))
                if access == AccessType.WRITE
                else None
            )
            commands.append(
                ExplicitCommand(
                    addresses=addresses,
                    access=access,
                    broadcast_cycles=(n + 1) // 2,
                    data=data,
                )
            )
        else:
            length = rng.randint(1, 32)
            vector = Vector(
                base=rng.randrange(0, 1 << 14),
                stride=rng.choice([1, 1, rng.randint(1, 64)]),
                length=length,
            )
            access = (
                AccessType.WRITE if rng.random() < 0.5 else AccessType.READ
            )
            data = (
                tuple(rng.randrange(0, 1000) for _ in range(length))
                if access == AccessType.WRITE
                else None
            )
            commands.append(VectorCommand(vector=vector, access=access, data=data))
    return commands


def test_fuzzed_all_five_modes(monkeypatch):
    """Randomized geometries, timings, policies, refresh cadences that
    expire mid-chain, context and FIFO depths, both PVA systems, both
    run loops, fresh runs AND back-to-back runs on one system object —
    with every trial checked across *all five* ladder modes (tick, skip,
    precompute, soa, window) for bit-identical cycles, payloads and
    attribution."""
    from repro.sim.events import ENV_TOGGLE

    assert SIM_MODES == ("tick", "skip", "precompute", "soa", "window")
    rng = random.Random(20260808)
    for trial in range(40):
        monkeypatch.setenv(ENV_TOGGLE, "1" if rng.random() < 0.8 else "0")
        num_banks = rng.choice([1, 2, 4, 8, 16])
        max_transactions = rng.randint(1, 8)
        sdram = dict(
            t_rcd=rng.randint(1, 4),
            cas_latency=rng.randint(1, 4),
            t_rp=rng.randint(1, 4),
            t_wr=rng.randint(1, 3),
            internal_banks=rng.choice([1, 2, 4, 8]),
            row_words=rng.choice([64, 128, 512]),
            refresh_interval=rng.choice([0, 40, 150, 700]),
            t_rfc=rng.randint(2, 10),
        )
        base = SystemParams(
            num_banks=num_banks,
            max_transactions=max_transactions,
            num_vector_contexts=rng.randint(1, 4),
            request_fifo_depth=max(max_transactions, rng.randint(1, 10)),
            fhc_latency=rng.randint(1, 4),
            bus_turnaround=rng.randint(0, 3),
            bypass_paths=rng.random() < 0.5,
            row_policy=rng.choice(ROW_POLICIES),
            issue_interval=rng.choice([0, 0, 17, 256]),
        )
        base = replace(base, sdram=replace(base.sdram, **sdram))
        system = rng.choice(PVA_SYSTEMS)
        trace = _random_trace(rng)
        results = [
            simulate(
                trace,
                replace(base, sim_mode=mode),
                system=system,
                capture_data=True,
            )
            for mode in SIM_MODES
        ]
        for mode, result in zip(SIM_MODES[1:], results[1:]):
            assert result == results[0], (trial, system, mode)
        # Back-to-back on one system object per mode: run N leaves
        # exactly the state run N+1 of the other backend expects.
        sys_tick = build_system(system, replace(base, sim_mode="tick"))
        sys_win = build_system(system, replace(base, sim_mode="window"))
        trace2 = _random_trace(rng)
        for tr in (trace, trace2):
            ra = sys_tick.run(tr, capture_data=True)
            rb = sys_win.run(tr, capture_data=True)
            assert ra == rb, (trial, system, "back-to-back")

"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.params import SDRAMTiming, SystemParams


@pytest.fixture
def prototype_params() -> SystemParams:
    """The paper's prototype configuration (16 banks, 32-word lines)."""
    return SystemParams()


@pytest.fixture
def small_params() -> SystemParams:
    """A reduced configuration that keeps cycle-level tests fast while
    still exercising multi-bank behaviour."""
    return SystemParams(
        num_banks=4,
        cache_line_words=8,
        sdram=SDRAMTiming(row_words=64),
    )

"""Tests for the W x N x M interleave schemes (section 4.1.3)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError, VectorSpecError
from repro.interleave.schemes import InterleaveScheme


class TestConstruction:
    def test_word_interleave_factory(self):
        scheme = InterleaveScheme.word(16)
        assert scheme.block_words == 1
        assert scheme.bank_width_words == 1
        assert scheme.chunk_words == 1

    def test_cache_line_factory(self):
        scheme = InterleaveScheme.cache_line(16, 32)
        assert scheme.block_words == 32
        assert scheme.chunk_words == 32

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            InterleaveScheme(num_banks=3)
        with pytest.raises(ConfigurationError):
            InterleaveScheme(num_banks=4, block_words=5)
        with pytest.raises(ConfigurationError):
            InterleaveScheme(num_banks=4, bank_width_words=3)

    def test_logical_bank_count(self):
        """The paper's N=2, W=4, M=2 example yields 16 logical banks."""
        scheme = InterleaveScheme(
            num_banks=2, block_words=2, bank_width_words=4
        )
        assert scheme.logical_banks == 16


class TestMapping:
    def test_paper_figure_4_physical_view(self):
        """N=2, W=4, M=2: bank 0 owns words 0-7, bank 1 owns 8-15, then
        bank 0 again at 16."""
        scheme = InterleaveScheme(
            num_banks=2, block_words=2, bank_width_words=4
        )
        assert [scheme.bank_of(a) for a in range(0, 24, 4)] == [
            0,
            0,
            1,
            1,
            0,
            0,
        ]

    def test_logical_view_is_word_modulo(self):
        scheme = InterleaveScheme(
            num_banks=2, block_words=2, bank_width_words=4
        )
        for address in range(64):
            assert scheme.logical_bank_of(address) == address % 16

    def test_logical_to_physical(self):
        scheme = InterleaveScheme(
            num_banks=2, block_words=2, bank_width_words=4
        )
        # Logical banks 0-7 live in physical bank 0, 8-15 in bank 1.
        assert [scheme.physical_bank_of_logical(j) for j in range(16)] == [
            0
        ] * 8 + [1] * 8

    def test_logical_physical_consistency(self):
        """logical_bank -> physical bank agrees with direct decoding."""
        scheme = InterleaveScheme(
            num_banks=4, block_words=8, bank_width_words=2
        )
        for address in range(0, 512, 3):
            logical = scheme.logical_bank_of(address)
            assert scheme.physical_bank_of_logical(logical) == scheme.bank_of(
                address
            )

    def test_negative_address(self):
        scheme = InterleaveScheme.word(4)
        with pytest.raises(VectorSpecError):
            scheme.bank_of(-1)
        with pytest.raises(VectorSpecError):
            scheme.local_word(-1)

    def test_out_of_range_logical_bank(self):
        scheme = InterleaveScheme.word(4)
        with pytest.raises(ConfigurationError):
            scheme.physical_bank_of_logical(4)

    @given(
        address=st.integers(0, 10**6),
        m=st.sampled_from([1, 2, 4, 8]),
        n=st.sampled_from([1, 2, 8]),
        w=st.sampled_from([1, 2, 4]),
    )
    def test_local_word_roundtrip(self, address, m, n, w):
        scheme = InterleaveScheme(
            num_banks=m, block_words=n, bank_width_words=w
        )
        bank = scheme.bank_of(address)
        local = scheme.local_word(address)
        chunk_index = local // scheme.chunk_words
        offset = local % scheme.chunk_words
        rebuilt = (chunk_index * m + bank) * scheme.chunk_words + offset
        assert rebuilt == address

"""Tests for the logical-bank transformation (section 4.1.3): the
word-interleave theorems applied to W*N*M logical banks must reproduce the
cache-line-interleave access pattern exactly."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cacheline import first_hit_bruteforce
from repro.interleave.logical import LogicalBankView
from repro.interleave.schemes import InterleaveScheme
from repro.types import Vector


@st.composite
def vectors(draw):
    return Vector(
        base=draw(st.integers(0, 1024)),
        stride=draw(st.integers(1, 80)),
        length=draw(st.integers(1, 64)),
    )


GEOMETRIES = [
    (2, 2, 4),  # the paper's figure 4/5 example
    (8, 4, 1),  # the section 4.1.2 example geometry
    (16, 32, 1),  # the prototype's line size over 16 banks
    (4, 1, 1),  # degenerate: word interleave
]


class TestAgainstBruteForce:
    @pytest.mark.parametrize("m,n,w", GEOMETRIES)
    def test_first_hit_small_grid(self, m, n, w):
        scheme = InterleaveScheme(
            num_banks=m, block_words=n, bank_width_words=w
        )
        view = LogicalBankView(scheme)
        chunk = scheme.chunk_words
        period = chunk * m
        bases = range(0, 2 * period, max(1, (2 * period) // 8))
        strides = list(range(1, min(period + 2, 34))) + [
            period - 1,
            period,
            period + 1,
        ]
        for base in bases:
            for stride in strides:
                v = Vector(base=base, stride=stride, length=3 * m + 2)
                for bank in range(m):
                    expected = first_hit_bruteforce(v, bank, m, chunk)
                    assert view.first_hit(v, bank) == expected, (
                        base,
                        stride,
                        bank,
                    )

    @given(v=vectors())
    @settings(max_examples=150)
    def test_first_hit_paper_geometry(self, v):
        scheme = InterleaveScheme(num_banks=8, block_words=4)
        view = LogicalBankView(scheme)
        for bank in range(8):
            assert view.first_hit(v, bank) == first_hit_bruteforce(
                v, bank, 8, 4
            )

    @given(v=vectors())
    @settings(max_examples=150)
    def test_hit_indices_partition(self, v):
        """Across physical banks, hit indices partition [0, L)."""
        scheme = InterleaveScheme(num_banks=8, block_words=4)
        view = LogicalBankView(scheme)
        seen = []
        for bank in range(8):
            indices = view.hit_indices(v, bank)
            assert indices == sorted(indices)
            seen.extend(indices)
        assert sorted(seen) == list(range(v.length))

    @given(v=vectors())
    @settings(max_examples=100)
    def test_subvector_addresses(self, v):
        scheme = InterleaveScheme(num_banks=4, block_words=8)
        view = LogicalBankView(scheme)
        for bank in range(4):
            for index, address in view.subvector(v, bank):
                assert address == v.element_address(index)
                assert scheme.bank_of(address) == bank

    def test_hit_count(self):
        scheme = InterleaveScheme(num_banks=8, block_words=4)
        view = LogicalBankView(scheme)
        # Example 4 of section 4.1.2: banks 0,2,4,6,1,3,5,7,2,4.
        v = Vector(base=0, stride=9, length=10)
        counts = [view.hit_count(v, bank) for bank in range(8)]
        assert counts == [1, 1, 2, 1, 2, 1, 1, 1]

    def test_word_interleave_degenerates_to_theorems(self):
        from repro.core.firsthit import first_hit

        scheme = InterleaveScheme.word(16)
        view = LogicalBankView(scheme)
        v = Vector(base=3, stride=6, length=40)
        for bank in range(16):
            assert view.first_hit(v, bank) == first_hit(v, bank, 16)

"""Full kernel dataflow: execute the Table 2 loops *with real data*
through the PVA unit — gather operands, compute in the "CPU", scatter
results — and compare the final memory image against a pure-Python
execution of the reference loop.

This is the functional-simulation direction the paper leaves as future
work, at kernel scale: it exercises gathers, computation-carried writes
and loop-carried dependencies (tridiag) end to end.
"""

import pytest

from repro.kernels import kernel_by_name
from repro.kernels.traces import ALIGNMENTS, array_bases
from repro.params import SystemParams
from repro.pva.system import PVAMemorySystem
from repro.types import AccessType, Vector, VectorCommand

PARAMS = SystemParams()
ELEMENTS = 128
A_SCALAR = 3


def gather(system, base, stride, length):
    """Read a strided vector through the PVA; returns its values."""
    values = []
    vector = Vector(base=base, stride=stride, length=length)
    for piece in vector.split(PARAMS.cache_line_words):
        result = system.run(
            [VectorCommand(vector=piece, access=AccessType.READ)],
            capture_data=True,
        )
        values.extend(result.read_lines[0])
    return values


def scatter(system, base, stride, values):
    """Write values to a strided vector through the PVA."""
    vector = Vector(base=base, stride=stride, length=len(values))
    offset = 0
    for piece in vector.split(PARAMS.cache_line_words):
        data = tuple(values[offset : offset + piece.length])
        system.run(
            [VectorCommand(vector=piece, access=AccessType.WRITE, data=data)]
        )
        offset += piece.length


def setup_arrays(kernel_name, stride):
    kernel = kernel_by_name(kernel_name)
    bases = array_bases(kernel, stride, ELEMENTS, PARAMS, ALIGNMENTS[0])
    system = PVAMemorySystem(PARAMS)
    reference = {}
    for slot, name in enumerate(kernel.arrays):
        values = [
            (slot + 1) * 10_000 + 7 * i + 1 for i in range(ELEMENTS)
        ]
        reference[name] = list(values)
        for i, value in enumerate(values):
            system.poke(bases[name] + i * stride, value)
    return system, bases, reference


def read_back(system, base, stride):
    return [system.peek(base + i * stride) for i in range(ELEMENTS)]


@pytest.mark.parametrize("stride", [1, 16, 19])
class TestKernelDataflow:
    def test_copy(self, stride):
        system, bases, ref = setup_arrays("copy", stride)
        x = gather(system, bases["x"], stride, ELEMENTS)
        scatter(system, bases["y"], stride, x)
        assert read_back(system, bases["y"], stride) == ref["x"]

    def test_scale(self, stride):
        system, bases, ref = setup_arrays("scale", stride)
        x = gather(system, bases["x"], stride, ELEMENTS)
        scatter(system, bases["x"], stride, [A_SCALAR * v for v in x])
        assert read_back(system, bases["x"], stride) == [
            A_SCALAR * v for v in ref["x"]
        ]

    def test_saxpy(self, stride):
        system, bases, ref = setup_arrays("saxpy", stride)
        x = gather(system, bases["x"], stride, ELEMENTS)
        y = gather(system, bases["y"], stride, ELEMENTS)
        scatter(
            system,
            bases["y"],
            stride,
            [yi + A_SCALAR * xi for xi, yi in zip(x, y)],
        )
        assert read_back(system, bases["y"], stride) == [
            yi + A_SCALAR * xi
            for xi, yi in zip(ref["x"], ref["y"])
        ]

    def test_swap(self, stride):
        system, bases, ref = setup_arrays("swap", stride)
        x = gather(system, bases["x"], stride, ELEMENTS)
        y = gather(system, bases["y"], stride, ELEMENTS)
        scatter(system, bases["x"], stride, y)
        scatter(system, bases["y"], stride, x)
        assert read_back(system, bases["x"], stride) == ref["y"]
        assert read_back(system, bases["y"], stride) == ref["x"]

    def test_vaxpy(self, stride):
        system, bases, ref = setup_arrays("vaxpy", stride)
        a = gather(system, bases["a"], stride, ELEMENTS)
        x = gather(system, bases["x"], stride, ELEMENTS)
        y = gather(system, bases["y"], stride, ELEMENTS)
        scatter(
            system,
            bases["y"],
            stride,
            [yi + ai * xi for ai, xi, yi in zip(a, x, y)],
        )
        assert read_back(system, bases["y"], stride) == [
            yi + ai * xi
            for ai, xi, yi in zip(ref["a"], ref["x"], ref["y"])
        ]

    def test_tridiag(self, stride):
        """x[i] = z[i] * (y[i] - x[i-1]) — loop-carried dependency, so
        each block must read the x written by the previous block."""
        system, bases, ref = setup_arrays("tridiag", stride)
        chunk = PARAMS.cache_line_words
        # Reference execution (x[-1] treated as the pristine word before
        # the array, which we set to 0 here).
        system.poke(bases["x"] - stride, 0)
        expected = list(ref["x"])
        prev = 0
        for i in range(ELEMENTS):
            expected[i] = ref["z"][i] * (ref["y"][i] - prev)
            prev = expected[i]
        # Blocked execution through the memory system.
        for start in range(0, ELEMENTS, chunk):
            z = gather(system, bases["z"] + start * stride, stride, chunk)
            y = gather(system, bases["y"] + start * stride, stride, chunk)
            x_prev = gather(
                system, bases["x"] + (start - 1) * stride, stride, chunk
            )
            block = []
            carry = x_prev[0]
            for j in range(chunk):
                value = z[j] * (y[j] - carry)
                block.append(value)
                carry = value
            scatter(
                system, bases["x"] + start * stride, stride, block
            )
        assert read_back(system, bases["x"], stride) == expected

"""Configuration-matrix integration tests: the PVA system must stay
functionally correct and respect its analytic lower bounds across the
whole geometry space — bank counts, line sizes, internal banks, row
sizes, timing variants and row policies."""

import pytest

from repro.analysis.model import pva_lower_bound
from repro.params import SDRAMTiming, SystemParams
from repro.pva.system import PVAMemorySystem
from repro.types import AccessType, Vector, VectorCommand


def make_params(num_banks=16, line=32, internal_banks=4, rows=512, **kw):
    return SystemParams(
        num_banks=num_banks,
        cache_line_words=line,
        sdram=SDRAMTiming(internal_banks=internal_banks, row_words=rows),
        **kw,
    )


def checked_run(params, strides=(1, 3, 7)):
    """Run a read+write mix per stride; verify data and bounds."""
    system = PVAMemorySystem(params)
    line = params.cache_line_words
    trace = []
    expected_lines = []
    for i, stride in enumerate(strides):
        base = 1 + i * line * max(strides) + i
        vector = Vector(base=base, stride=stride, length=line)
        data = tuple(10_000 * (i + 1) + j for j in range(line))
        trace.append(
            VectorCommand(vector=vector, access=AccessType.WRITE, data=data)
        )
        trace.append(VectorCommand(vector=vector, access=AccessType.READ))
        expected_lines.append(data)
    result = system.run(trace, capture_data=True)
    assert result.read_lines == expected_lines
    assert result.cycles >= pva_lower_bound(trace, params)
    return result


class TestGeometryMatrix:
    @pytest.mark.parametrize("num_banks", [1, 2, 4, 8, 16, 32, 64])
    def test_bank_counts(self, num_banks):
        checked_run(make_params(num_banks=num_banks))

    @pytest.mark.parametrize("line", [4, 8, 16, 32, 64])
    def test_line_sizes(self, line):
        checked_run(make_params(line=line))

    @pytest.mark.parametrize("internal_banks", [1, 2, 4, 8])
    def test_internal_banks(self, internal_banks):
        checked_run(make_params(internal_banks=internal_banks))

    @pytest.mark.parametrize("rows", [16, 64, 512, 2048])
    def test_row_sizes(self, rows):
        checked_run(make_params(rows=rows))

    @pytest.mark.parametrize("policy", ["paper", "close", "open", "history"])
    def test_row_policies(self, policy):
        checked_run(make_params(row_policy=policy))

    @pytest.mark.parametrize("contexts", [1, 2, 8])
    def test_vector_context_counts(self, contexts):
        checked_run(make_params(num_vector_contexts=contexts))

    def test_no_bypass(self):
        checked_run(make_params(bypass_paths=False))

    def test_single_transaction(self):
        checked_run(make_params(max_transactions=1, request_fifo_depth=1))

    def test_slow_timing(self):
        params = SystemParams(
            sdram=SDRAMTiming(
                t_rcd=5, cas_latency=4, t_rp=5, t_wr=3, row_words=256
            )
        )
        checked_run(params)

    def test_more_banks_than_line_words(self):
        """64 banks, 16-word commands: most banks idle per command."""
        checked_run(make_params(num_banks=64, line=16))

    def test_single_bank_system(self):
        """M=1 degenerates to a serial controller; still correct."""
        result = checked_run(make_params(num_banks=1, line=8))
        assert result.device.reads > 0

"""Randomized functional verification: the cycle-level PVA system must be
*observationally equivalent* to a flat reference memory executing the same
command stream in program order — for arbitrary mixes of base-stride and
explicit scatter/gather commands, including overlapping vectors and
read-after-write chains."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.pva_sram import make_pva_sram
from repro.params import SDRAMTiming, SystemParams
from repro.pva.system import PVAMemorySystem
from repro.types import (
    AccessType,
    ExplicitCommand,
    Vector,
    VectorCommand,
)

SMALL = SystemParams(
    num_banks=4,
    cache_line_words=8,
    sdram=SDRAMTiming(row_words=64),
)

ADDRESS_SPACE = 1 << 12


@st.composite
def base_stride_command(draw, params):
    length = draw(st.integers(1, params.cache_line_words))
    stride = draw(st.integers(1, 40))
    base = draw(st.integers(0, ADDRESS_SPACE - length * stride - 1))
    if draw(st.booleans()):
        return VectorCommand(
            vector=Vector(base=base, stride=stride, length=length),
            access=AccessType.READ,
        )
    data = tuple(
        draw(st.integers(0, 2**20)) for _ in range(length)
    )
    return VectorCommand(
        vector=Vector(base=base, stride=stride, length=length),
        access=AccessType.WRITE,
        data=data,
    )


@st.composite
def explicit_command(draw, params):
    length = draw(st.integers(1, params.cache_line_words))
    addresses = tuple(
        draw(st.integers(0, ADDRESS_SPACE - 1)) for _ in range(length)
    )
    if draw(st.booleans()):
        return ExplicitCommand(
            addresses=addresses,
            access=AccessType.READ,
            broadcast_cycles=1 + (length + 1) // 2,
        )
    data = tuple(draw(st.integers(0, 2**20)) for _ in range(length))
    return ExplicitCommand(
        addresses=addresses,
        access=AccessType.WRITE,
        broadcast_cycles=1 + (length + 1) // 2,
        data=data,
    )


@st.composite
def traces(draw, params):
    n = draw(st.integers(1, 12))
    return [
        draw(
            st.one_of(
                base_stride_command(params), explicit_command(params)
            )
        )
        for _ in range(n)
    ]


def reference_execute(trace, initial):
    """Program-order interpreter over a flat word array."""
    memory = dict(initial)
    read_lines = []
    for command in trace:
        if isinstance(command, ExplicitCommand):
            addresses = list(command.addresses)
        else:
            addresses = list(command.vector.addresses())
        if command.access is AccessType.READ:
            read_lines.append(tuple(memory.get(a, 0) for a in addresses))
        else:
            data = command.data or tuple(range(len(addresses)))
            for a, value in zip(addresses, data):
                memory[a] = value
    return read_lines, memory


def run_and_compare(system_factory, trace):
    initial = {a: a * 7 + 3 for a in range(0, ADDRESS_SPACE, 13)}
    system = system_factory()
    for a, value in initial.items():
        system.poke(a, value)
    result = system.run(trace, capture_data=True)
    expected_lines, expected_memory = reference_execute(trace, initial)
    assert result.read_lines == expected_lines
    for a, value in expected_memory.items():
        assert system.peek(a) == value, a
    return result


class TestObservationalEquivalence:
    @given(trace=traces(SMALL))
    @settings(max_examples=60, deadline=None)
    def test_sdram_system(self, trace):
        run_and_compare(lambda: PVAMemorySystem(SMALL), trace)

    @given(trace=traces(SMALL))
    @settings(max_examples=40, deadline=None)
    def test_sram_system(self, trace):
        run_and_compare(lambda: make_pva_sram(SMALL), trace)

    @given(trace=traces(SMALL))
    @settings(max_examples=25, deadline=None)
    def test_row_policies_are_functionally_identical(self, trace):
        """Row management changes timing, never data."""
        import dataclasses

        baseline = run_and_compare(lambda: PVAMemorySystem(SMALL), trace)
        for policy in ("close", "open", "history"):
            params = dataclasses.replace(SMALL, row_policy=policy)
            run_and_compare(lambda: PVAMemorySystem(params), trace)


class TestWAWOrdering:
    """Regression: two in-flight *writes* covering the same word must
    commit in program order.  The bank schedulers reorder same-polarity
    contexts across internal banks (the polarity rule only orders mixed
    read/write pairs), so before the front end's WAW gate the younger
    write could land first — observed under the open/history policies,
    where the kept-open row let the younger context slip its column in
    while the older context was activating another internal bank's row.
    """

    # Hypothesis-minimized: command 1 ends with a write of 1 to word 0
    # (via an element on another internal bank's row in between),
    # command 2 overwrites word 0 with 0 while command 1 is in flight.
    TRACE = [
        ExplicitCommand(
            addresses=(0, 0, 0, 0, 0, 308, 0),
            access=AccessType.WRITE,
            broadcast_cycles=5,
            data=(0, 0, 0, 0, 0, 0, 1),
        ),
        ExplicitCommand(
            addresses=(0,),
            access=AccessType.WRITE,
            broadcast_cycles=2,
            data=(0,),
        ),
    ]

    @pytest.mark.parametrize(
        "policy", ("paper", "close", "open", "history")
    )
    def test_all_row_policies(self, policy):
        import dataclasses

        params = dataclasses.replace(SMALL, row_policy=policy)
        system = PVAMemorySystem(params)
        system.run(self.TRACE, capture_data=True)
        assert system.peek(0) == 0, policy
        assert system.peek(308) == 0

    def test_all_sim_modes(self):
        import dataclasses

        from repro.params import SIM_MODES

        for mode in SIM_MODES:
            params = dataclasses.replace(
                SMALL, row_policy="open", sim_mode=mode
            )
            system = PVAMemorySystem(params)
            system.run(self.TRACE, capture_data=True)
            assert system.peek(0) == 0, mode


class TestRAWChains:
    def test_repeated_overwrite_of_same_vector(self):
        system = PVAMemorySystem(SMALL)
        v = Vector(base=16, stride=3, length=8)
        trace = []
        for round_number in range(5):
            data = tuple(round_number * 100 + i for i in range(8))
            trace.append(
                VectorCommand(vector=v, access=AccessType.WRITE, data=data)
            )
            trace.append(VectorCommand(vector=v, access=AccessType.READ))
        result = system.run(trace, capture_data=True)
        for round_number in range(5):
            assert result.read_lines[round_number] == tuple(
                round_number * 100 + i for i in range(8)
            )

    def test_partial_overlap_write_read(self):
        """A read overlapping two earlier writes sees both."""
        system = PVAMemorySystem(SMALL)
        w1 = VectorCommand(
            vector=Vector(base=0, stride=2, length=8),
            access=AccessType.WRITE,
            data=tuple(100 + i for i in range(8)),
        )
        w2 = VectorCommand(
            vector=Vector(base=1, stride=2, length=8),
            access=AccessType.WRITE,
            data=tuple(200 + i for i in range(8)),
        )
        read = VectorCommand(
            vector=Vector(base=0, stride=1, length=8),
            access=AccessType.READ,
        )
        result = system.run([w1, w2, read], capture_data=True)
        assert result.read_lines[0] == (100, 200, 101, 201, 102, 202, 103, 203)

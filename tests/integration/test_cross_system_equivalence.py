"""All four memory systems must be observationally equivalent: identical
gathered data for identical traces (they differ only in timing)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.cacheline_serial import CacheLineSerialSDRAM
from repro.baselines.gathering_serial import GatheringSerialSDRAM
from repro.baselines.pva_sram import make_pva_sram
from repro.params import SDRAMTiming, SystemParams
from repro.pva.system import PVAMemorySystem
from repro.types import AccessType, Vector, VectorCommand
from repro.workloads.random_traces import RandomTraceConfig, random_trace

SMALL = SystemParams(
    num_banks=4, cache_line_words=8, sdram=SDRAMTiming(row_words=64)
)
SPACE = 1 << 12


def all_systems():
    return [
        PVAMemorySystem(SMALL),
        make_pva_sram(SMALL),
        CacheLineSerialSDRAM(SMALL),
        GatheringSerialSDRAM(SMALL),
    ]


@given(seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_identical_read_lines_across_systems(seed):
    trace = random_trace(
        seed,
        SMALL,
        RandomTraceConfig(
            commands=10,
            address_space_words=SPACE,
            max_stride=20,
            full_lines=False,
        ),
    )
    initial = {a: a ^ 0xABC for a in range(0, SPACE, 7)}
    results = []
    for system in all_systems():
        for address, value in initial.items():
            system.poke(address, value)
        results.append(system.run(trace, capture_data=True).read_lines)
    reference = results[0]
    for other in results[1:]:
        assert other == reference


def test_final_memory_state_matches():
    trace = random_trace(
        123,
        SMALL,
        RandomTraceConfig(
            commands=20,
            address_space_words=SPACE,
            max_stride=12,
            write_fraction=0.6,
        ),
    )
    systems = all_systems()
    for system in systems:
        system.run(trace)
    probe_addresses = sorted(
        {
            a
            for c in trace
            if isinstance(c, VectorCommand) and c.access is AccessType.WRITE
            for a in c.vector.addresses()
        }
    )
    reference = [systems[0].peek(a) for a in probe_addresses]
    for system in systems[1:]:
        assert [system.peek(a) for a in probe_addresses] == reference


def test_timing_differs_but_data_does_not():
    """The whole point: same answers, wildly different cycle counts."""
    vector = Vector(base=0, stride=SMALL.num_banks, length=8)
    trace = [VectorCommand(vector=vector, access=AccessType.READ)]
    systems = all_systems()
    for system in systems:
        for a in vector.addresses():
            system.poke(a, a + 1)
    results = [s.run(trace, capture_data=True) for s in systems]
    lines = {r.read_lines[0] for r in results}
    assert len(lines) == 1
    cycles = [r.cycles for r in results]
    assert len(set(cycles)) > 1

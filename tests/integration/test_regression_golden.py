"""Golden cycle-count regression tests.

The simulator is deterministic; these exact counts (256-element vectors,
prototype configuration, 'aligned' placement) pin its timing behaviour so
refactors that unintentionally change scheduling are caught immediately.
If a deliberate timing-model change lands, regenerate with the command in
the docstring of ``test_golden_cycle_counts`` and update both the table
and EXPERIMENTS.md.
"""

import pytest

from repro.baselines.pva_sram import make_pva_sram
from repro.kernels import build_trace, kernel_by_name
from repro.params import SystemParams
from repro.pva.system import PVAMemorySystem

#: (kernel, stride) -> (pva_sdram_cycles, pva_sram_cycles)
GOLDEN = {
    ("copy", 1): (293, 293),
    ("copy", 8): (327, 295),
    ("copy", 16): (583, 529),
    ("copy", 19): (293, 293),
    ("saxpy", 1): (443, 443),
    ("saxpy", 8): (464, 445),
    ("saxpy", 16): (847, 785),
    ("saxpy", 19): (443, 443),
    ("swap", 1): (597, 597),
    ("swap", 8): (655, 591),
    ("swap", 16): (1167, 1041),
    ("swap", 19): (597, 597),
    ("tridiag", 1): (589, 589),
    ("tridiag", 8): (624, 589),
    ("tridiag", 16): (1135, 1041),
    ("tridiag", 19): (589, 589),
}


@pytest.mark.parametrize("kernel,stride", sorted(GOLDEN))
def test_golden_cycle_counts(kernel, stride):
    """Regenerate with::

        python -c "from repro import *; from repro.kernels import *;
        [print(k, s, PVAMemorySystem().run(build_trace(kernel_by_name(k),
        stride=s, elements=256)).cycles) for k in (...) for s in (...)]"
    """
    params = SystemParams()
    trace = build_trace(
        kernel_by_name(kernel), stride=stride, params=params, elements=256
    )
    expected_sdram, expected_sram = GOLDEN[(kernel, stride)]
    assert PVAMemorySystem(params).run(trace).cycles == expected_sdram
    assert make_pva_sram(params).run(trace).cycles == expected_sram


def test_determinism():
    """Two identical runs produce identical results in every field."""
    params = SystemParams()
    trace = build_trace(
        kernel_by_name("vaxpy"), stride=16, params=params, elements=256
    )
    a = PVAMemorySystem(params).run(trace)
    b = PVAMemorySystem(params).run(trace)
    assert a.cycles == b.cycles
    assert a.command_latencies == b.command_latencies
    assert a.device == b.device

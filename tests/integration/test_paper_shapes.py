"""Reproduction-shape tests: the qualitative results of section 6.3 must
hold on a reduced-size grid (256-element vectors keep the suite fast; the
benchmarks run the full 1024-element evaluation).

Every docstring quotes the paper claim being checked.
"""

import pytest

from repro.experiments.grid import run_grid
from repro.kernels import ALIGNMENTS


@pytest.fixture(scope="module")
def grid():
    return run_grid(
        kernels=("copy", "scale", "swap", "vaxpy"),
        strides=(1, 4, 16, 19),
        alignments=ALIGNMENTS,
        elements=256,
    )


class TestUnitStride:
    def test_cacheline_parity(self, grid):
        """'For unit-stride access patterns our PVA unit performs about
        the same as a cache-line interleaved system' — 100% to 109%."""
        for kernel in grid.kernels:
            ratio = grid.normalized(kernel, 1, "cacheline-serial")
            assert 0.95 <= ratio <= 1.20, (kernel, ratio)

    def test_pva_never_loses_at_unit_stride(self, grid):
        for kernel in grid.kernels:
            assert grid.min_cycles(kernel, 1, "pva-sdram") <= grid.min_cycles(
                kernel, 1, "cacheline-serial"
            )


class TestStrideGrowth:
    def test_stride4_band(self, grid):
        """'At stride four, normalized execution time rises to between
        307% and 408%' — we accept a slightly wider honest band."""
        for kernel in grid.kernels:
            ratio = grid.normalized(kernel, 4, "cacheline-serial")
            assert 2.5 <= ratio <= 5.0, (kernel, ratio)

    def test_stride16_band(self, grid):
        """'At stride 16, normalized execution time rises to between 638%
        and 1112%.'  ``scale`` is the clean probe (one array, so relative
        alignment cannot move vectors to different banks); multi-array
        kernels get a wider band because a lucky alignment parallelizes
        their single-bank streams."""
        ratio = grid.normalized("scale", 16, "cacheline-serial")
        assert 5.0 <= ratio <= 13.0, ratio
        for kernel in grid.kernels:
            ratio = grid.normalized(kernel, 16, "cacheline-serial")
            assert 2.5 <= ratio <= 20.0, (kernel, ratio)

    def test_prime_stride_is_the_extreme(self, grid):
        """'At a prime stride like 19 execution time rises to between
        2878% and 3278%' — with honest intra-line-reuse accounting the
        factor lands near 20x; it must dominate every other stride."""
        for kernel in grid.kernels:
            ratio19 = grid.normalized(kernel, 19, "cacheline-serial")
            assert ratio19 > 15.0, (kernel, ratio19)
            for stride in (1, 4, 16):
                assert ratio19 > grid.normalized(
                    kernel, stride, "cacheline-serial"
                )

    def test_monotone_degradation_of_cacheline_system(self, grid):
        """The cache-line system's normalized time grows with stride."""
        for kernel in grid.kernels:
            ratios = [
                grid.normalized(kernel, s, "cacheline-serial")
                for s in (1, 4, 16, 19)
            ]
            assert ratios == sorted(ratios), (kernel, ratios)


class TestPrimeStrideRecovery:
    def test_stride19_matches_unit_stride_for_pva(self, grid):
        """'Performances for both our SDRAM PVA system and the SRAM PVA
        system for stride 19 are similar to the corresponding results for
        unit-stride access patterns.'"""
        for kernel in grid.kernels:
            t19 = grid.min_cycles(kernel, 19, "pva-sdram")
            t1 = grid.min_cycles(kernel, 1, "pva-sdram")
            assert abs(t19 - t1) / t1 < 0.10, (kernel, t1, t19)

    def test_stride16_is_pva_worst_case(self, grid):
        """Stride 16 hits a single bank per vector (parallelism
        M/2^s = 1): the PVA's slowest stride at the worst alignment.
        (At the best alignment a multi-array kernel can still spread its
        vectors across banks, which is exactly the alignment sensitivity
        figure 11 plots.)"""
        for kernel in grid.kernels:
            t16 = grid.max_cycles(kernel, 16, "pva-sdram")
            for stride in (1, 4, 19):
                assert t16 >= grid.max_cycles(kernel, stride, "pva-sdram")


class TestGatheringComparison:
    def test_pva_beats_gathering_everywhere(self, grid):
        for kernel in grid.kernels:
            for stride in grid.strides:
                assert grid.min_cycles(
                    kernel, stride, "gathering-serial"
                ) > grid.min_cycles(kernel, stride, "pva-sdram")

    def test_factor_of_roughly_three_at_full_parallelism(self, grid):
        """'3.3 times faster than a pipelined vector unit.'"""
        for kernel in grid.kernels:
            ratio = grid.normalized(kernel, 19, "gathering-serial")
            assert 2.3 <= ratio <= 4.0, (kernel, ratio)

    def test_gathering_beats_cacheline_at_large_stride(self, grid):
        """'its relative performance increases dramatically as vector
        stride goes up.'"""
        for kernel in grid.kernels:
            assert grid.min_cycles(
                kernel, 16, "gathering-serial"
            ) < grid.min_cycles(kernel, 16, "cacheline-serial")


class TestSRAMGap:
    def test_sdram_within_15_percent_of_sram(self, grid):
        """'the PVA mechanism is able to use SDRAM to achieve a
        performance equivalent to that of SRAM or in the worst case at
        most 15% slower.'"""
        for (kernel, stride, alignment), point in grid.cycles.items():
            gap = point["pva-sdram"] / point["pva-sram"] - 1
            assert gap <= 0.15, (kernel, stride, alignment, gap)

    def test_sram_is_a_lower_bound(self, grid):
        for point in grid.cycles.values():
            assert point["pva-sram"] <= point["pva-sdram"]


class TestAlignmentSensitivity:
    def test_low_parallelism_strides_feel_alignment(self, grid):
        """'For strides that hit one or two of the SDRAM components,
        relative alignment has a larger impact.'"""
        for kernel in ("copy", "swap", "vaxpy"):
            spread16 = grid.max_cycles(
                kernel, 16, "pva-sdram"
            ) / grid.min_cycles(kernel, 16, "pva-sdram")
            spread1 = grid.max_cycles(
                kernel, 1, "pva-sdram"
            ) / grid.min_cycles(kernel, 1, "pva-sdram")
            assert spread16 > spread1, (kernel, spread1, spread16)

    def test_high_parallelism_strides_robust(self, grid):
        """'For small strides that hit more than two SDRAM banks, the
        minimum and maximum execution times differ only by a few
        percent.'"""
        for kernel in grid.kernels:
            spread = grid.max_cycles(
                kernel, 1, "pva-sdram"
            ) / grid.min_cycles(kernel, 1, "pva-sdram")
            assert spread <= 1.05, (kernel, spread)

"""Load-balance properties, observed through the SDRAM command logs:
the parallelism law of section 6.3.1 made visible per bank."""

import pytest

from repro.kernels import build_trace, kernel_by_name
from repro.params import SystemParams
from repro.pva.system import PVAMemorySystem
from repro.sim.timeline import bank_utilization

PROTO = SystemParams()


def run_with_logs(stride, kernel="scale", elements=256):
    system = PVAMemorySystem(PROTO)
    logs = system.attach_command_logs()
    trace = build_trace(
        kernel_by_name(kernel), stride=stride, params=PROTO, elements=elements
    )
    result = system.run(trace)
    return logs, result


class TestParallelismLaw:
    def test_odd_stride_balances_all_banks(self):
        """Stride 19: every bank issues the same number of columns."""
        logs, _ = run_with_logs(19)
        columns = [len(log.columns()) for log in logs]
        assert len(set(columns)) == 1
        assert columns[0] > 0

    def test_single_bank_stride_concentrates(self):
        """Stride 16: one bank does all the column work."""
        logs, _ = run_with_logs(16)
        columns = [len(log.columns()) for log in logs]
        busy = [c for c in columns if c > 0]
        assert len(busy) == 1
        assert busy[0] == 2 * 256  # read + write per element

    def test_stride_four_uses_a_quarter(self):
        logs, _ = run_with_logs(4)
        columns = [len(log.columns()) for log in logs]
        assert sum(1 for c in columns if c > 0) == PROTO.num_banks // 4

    @pytest.mark.parametrize("stride", [1, 2, 4, 8, 16, 19])
    def test_column_totals_conserved(self, stride):
        logs, result = run_with_logs(stride)
        total = sum(len(log.columns()) for log in logs)
        assert total == result.device.reads + result.device.writes

    def test_utilization_skew(self):
        """Bank utilization is flat at stride 1 and maximally skewed at
        stride 16 — the quantity the timeline renderer exposes."""
        logs1, result1 = run_with_logs(1)
        util1 = bank_utilization(logs1, result1.cycles)
        assert max(util1) - min(util1) < 0.1
        logs16, result16 = run_with_logs(16)
        util16 = bank_utilization(logs16, result16.cycles)
        assert max(util16) > 10 * (
            sorted(util16)[-2] + 1e-9
        )  # second-busiest bank is ~idle


class TestLogConsistency:
    def test_logs_monotone_across_kernels(self):
        for stride in (1, 19):
            logs, _ = run_with_logs(stride, kernel="vaxpy", elements=128)
            for log in logs:
                log.verify_monotone()

    def test_activates_bounded_by_columns(self):
        """No bank opens more rows than it performs accesses."""
        logs, _ = run_with_logs(19, kernel="swap", elements=256)
        for log in logs:
            assert len(log.activates()) <= max(1, len(log.columns()))

"""Combined geometry + trace fuzzing: for random small memory geometries
and random command streams, the PVA system must match the program-order
reference interpreter and respect the analytic lower bound."""

from hypothesis import given, settings, strategies as st

from repro.analysis.model import pva_lower_bound
from repro.params import SDRAMTiming, SystemParams
from repro.pva.system import PVAMemorySystem
from repro.types import AccessType, ExplicitCommand, Vector, VectorCommand

ADDRESS_SPACE = 1 << 11


@st.composite
def geometries(draw):
    num_banks = draw(st.sampled_from([1, 2, 4, 8, 16]))
    line = draw(st.sampled_from([4, 8, 16]))
    internal_banks = draw(st.sampled_from([1, 2, 4]))
    row_words = draw(st.sampled_from([16, 64, 256]))
    t_rcd = draw(st.integers(1, 4))
    cas = draw(st.integers(1, 4))
    t_rp = draw(st.integers(1, 4))
    policy = draw(st.sampled_from(["paper", "close", "open", "history"]))
    contexts = draw(st.sampled_from([1, 2, 4]))
    return SystemParams(
        num_banks=num_banks,
        cache_line_words=line,
        num_vector_contexts=contexts,
        row_policy=policy,
        sdram=SDRAMTiming(
            t_rcd=t_rcd,
            cas_latency=cas,
            t_rp=t_rp,
            internal_banks=internal_banks,
            row_words=row_words,
        ),
    )


@st.composite
def command_for(draw, params):
    length = draw(st.integers(1, params.cache_line_words))
    if draw(st.booleans()):
        addresses = tuple(
            draw(st.integers(0, ADDRESS_SPACE - 1)) for _ in range(length)
        )
        access = draw(st.sampled_from([AccessType.READ, AccessType.WRITE]))
        data = (
            tuple(draw(st.integers(0, 999)) for _ in range(length))
            if access is AccessType.WRITE
            else None
        )
        return ExplicitCommand(
            addresses=addresses,
            access=access,
            broadcast_cycles=1 + (length + 1) // 2,
            data=data,
        )
    stride = draw(st.integers(1, 24))
    base = draw(st.integers(0, ADDRESS_SPACE - length * stride - 1))
    access = draw(st.sampled_from([AccessType.READ, AccessType.WRITE]))
    data = (
        tuple(draw(st.integers(0, 999)) for _ in range(length))
        if access is AccessType.WRITE
        else None
    )
    return VectorCommand(
        vector=Vector(base=base, stride=stride, length=length),
        access=access,
        data=data,
    )


def reference_execute(trace, initial):
    memory = dict(initial)
    read_lines = []
    for command in trace:
        addresses = (
            list(command.addresses)
            if isinstance(command, ExplicitCommand)
            else list(command.vector.addresses())
        )
        if command.access is AccessType.READ:
            read_lines.append(tuple(memory.get(a, 0) for a in addresses))
        else:
            data = command.data or tuple(range(len(addresses)))
            for address, value in zip(addresses, data):
                memory[address] = value
    return read_lines


@given(params=geometries(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_random_geometry_random_trace(params, data):
    trace = [
        data.draw(command_for(params))
        for _ in range(data.draw(st.integers(1, 8)))
    ]
    initial = {a: a * 5 + 1 for a in range(0, ADDRESS_SPACE, 17)}
    system = PVAMemorySystem(params)
    for address, value in initial.items():
        system.poke(address, value)
    result = system.run(trace, capture_data=True)
    assert result.read_lines == reference_execute(trace, initial)
    assert result.cycles >= pva_lower_bound(trace, params)

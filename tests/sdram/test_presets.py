"""Tests for the DRAM technology presets."""

import dataclasses

import pytest

from repro.kernels import build_trace, kernel_by_name
from repro.params import SystemParams
from repro.pva.system import PVAMemorySystem
from repro.sdram.presets import (
    DDR_CLASS,
    EDO,
    FAST_PAGE_MODE,
    PC100_SDRAM,
    PRESETS,
)


class TestPresetValues:
    def test_registry_complete(self):
        assert set(PRESETS) == {"pc100-sdram", "fpm", "edo", "ddr-class"}

    def test_paper_part_is_the_default(self):
        """The prototype's timing equals the PC100 preset."""
        assert SystemParams().sdram == PC100_SDRAM

    def test_edo_is_fpm_with_faster_cas(self):
        assert EDO.cas_latency < FAST_PAGE_MODE.cas_latency
        assert EDO.t_rcd == FAST_PAGE_MODE.t_rcd
        assert EDO.internal_banks == FAST_PAGE_MODE.internal_banks

    def test_ddr_class_more_banked(self):
        assert DDR_CLASS.internal_banks > PC100_SDRAM.internal_banks
        assert DDR_CLASS.t_rp <= PC100_SDRAM.t_rp


class TestPresetBehaviour:
    def _cycles(self, timing, stride):
        params = dataclasses.replace(SystemParams(), sdram=timing)
        trace = build_trace(
            kernel_by_name("scale"), stride=stride, params=params,
            elements=256,
        )
        return PVAMemorySystem(params).run(trace).cycles

    def test_technology_ordering_at_bank_bound_stride(self):
        """Where the SDRAM is the bottleneck (stride 16) the generations
        order as expected: FPM >= EDO >= PC100 >= DDR-class."""
        fpm = self._cycles(FAST_PAGE_MODE, 16)
        edo = self._cycles(EDO, 16)
        sdram = self._cycles(PC100_SDRAM, 16)
        ddr = self._cycles(DDR_CLASS, 16)
        assert fpm >= edo >= sdram >= ddr

    def test_bus_bound_strides_insensitive(self):
        """At full parallelism the vector bus hides the part's speed."""
        fpm = self._cycles(FAST_PAGE_MODE, 19)
        ddr = self._cycles(DDR_CLASS, 19)
        assert fpm <= ddr * 1.15

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_all_presets_functionally_correct(self, name):
        from repro.types import AccessType, Vector, VectorCommand

        params = dataclasses.replace(SystemParams(), sdram=PRESETS[name])
        system = PVAMemorySystem(params)
        v = Vector(base=5, stride=19, length=32)
        for a in v.addresses():
            system.poke(a, a * 3)
        result = system.run(
            [VectorCommand(vector=v, access=AccessType.READ)],
            capture_data=True,
        )
        assert result.read_lines[0] == tuple(a * 3 for a in v.addresses())

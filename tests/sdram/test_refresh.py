"""Tests for SDRAM auto-refresh (section 2.2's leaky capacitors)."""

import pytest

from repro.kernels import build_trace, kernel_by_name
from repro.params import SDRAMTiming, SystemParams
from repro.pva.system import PVAMemorySystem
from repro.sdram.device import SDRAMDevice
from repro.types import AccessType, Vector, VectorCommand


class TestDeviceRefresh:
    def test_disabled_by_default(self):
        device = SDRAMDevice(SDRAMTiming())
        assert not device.maybe_refresh(10_000)
        assert device.refreshes == 0

    def test_refresh_fires_on_schedule(self):
        timing = SDRAMTiming(refresh_interval=100, t_rfc=8)
        device = SDRAMDevice(timing)
        assert not device.maybe_refresh(50)
        assert device.maybe_refresh(100)
        assert device.refreshes == 1
        assert not device.maybe_refresh(101)
        assert device.maybe_refresh(205)  # next boundary was 200
        assert device.refreshes == 2

    def test_refresh_closes_rows_and_blocks_activates(self):
        timing = SDRAMTiming(refresh_interval=100, t_rfc=8)
        device = SDRAMDevice(timing)
        device.activate(0, 0)
        assert device.open_row(0) == 0
        assert device.maybe_refresh(100)
        assert device.open_row(0) is None
        assert not device.can_activate(0, 105)
        assert device.can_activate(0, 108)

    def test_refresh_embeds_precharge(self):
        """A refreshed bank needs no extra t_rp before reopening."""
        timing = SDRAMTiming(refresh_interval=100, t_rfc=8, t_rp=2)
        device = SDRAMDevice(timing)
        device.activate(0, 0)
        device.maybe_refresh(100)
        device.activate(0, 100 + timing.t_rfc)  # no TimingViolation


class TestSystemWithRefresh:
    def _params(self, interval):
        return SystemParams(
            sdram=SDRAMTiming(refresh_interval=interval, t_rfc=8)
        )

    def test_functional_correctness_preserved(self):
        params = self._params(50)
        system = PVAMemorySystem(params)
        v = Vector(base=3, stride=19, length=32)
        for a in v.addresses():
            system.poke(a, a + 9)
        trace = [VectorCommand(vector=v, access=AccessType.READ)] * 4
        result = system.run(trace, capture_data=True)
        for line in result.read_lines:
            assert line == tuple(a + 9 for a in v.addresses())

    def test_refresh_costs_cycles(self):
        trace = build_trace(
            kernel_by_name("scale"), stride=16, elements=256
        )
        without = PVAMemorySystem(self._params(0)).run(trace).cycles
        with_refresh = PVAMemorySystem(self._params(100)).run(trace).cycles
        assert with_refresh > without

    def test_realistic_interval_overhead_is_small(self):
        """At the realistic ~780-cycle period the refresh tax on a
        bus-bound workload stays under a few percent."""
        trace = build_trace(kernel_by_name("copy"), stride=1, elements=512)
        without = PVAMemorySystem(self._params(0)).run(trace).cycles
        with_refresh = PVAMemorySystem(self._params(780)).run(trace).cycles
        assert with_refresh >= without
        assert with_refresh <= without * 1.10

"""Tests for the restimer resource counters (section 5.2.5)."""

import pytest

from repro.errors import TimingViolation
from repro.sdram.restimer import Restimer


class TestRestimer:
    def test_initially_available(self):
        timer = Restimer("t_rp")
        assert timer.available(0)
        timer.check(0)  # no raise

    def test_hold_blocks_until_release(self):
        timer = Restimer("t_rcd")
        timer.hold_until(5)
        assert not timer.available(4)
        assert timer.available(5)

    def test_check_raises_when_busy(self):
        timer = Restimer("t_rcd")
        timer.hold_until(3)
        with pytest.raises(TimingViolation):
            timer.check(2)

    def test_holds_never_shrink(self):
        timer = Restimer("x")
        timer.hold_until(10)
        timer.hold_until(4)
        assert timer.ready_at == 10

    def test_holds_extend(self):
        timer = Restimer("x")
        timer.hold_until(4)
        timer.hold_until(10)
        assert timer.ready_at == 10

    def test_reset(self):
        timer = Restimer("x")
        timer.hold_until(100)
        timer.reset()
        assert timer.available(0)

"""Tests for the idealized SRAM device (section 6.1)."""

import pytest

from repro.errors import SchedulingError
from repro.params import SRAMTiming
from repro.sram.device import SRAMDevice


@pytest.fixture
def device():
    return SRAMDevice(SRAMTiming(access_cycles=1), bus_turnaround=1)


class TestSRAM:
    def test_no_row_state(self, device):
        assert not device.has_rows
        assert device.row_is_open_for(12345)
        assert not device.conflicting_row_open(12345)
        assert not device.can_activate(0, 0)
        assert not device.can_precharge(0, 0)

    def test_single_cycle_access(self, device):
        assert device.can_column(0, 0, is_write=False)
        data_cycle, value = device.column(0, 0, is_write=False)
        assert data_cycle == 1
        assert value == 0

    def test_one_access_per_cycle(self, device):
        device.column(0, 0, is_write=False)
        assert not device.can_column(1, 0, is_write=False)
        assert device.can_column(1, 1, is_write=False)

    def test_turnaround_still_applies(self, device):
        """The SRAM comparison keeps the data-pin physics so the PVA
        SDRAM/SRAM gap isolates DRAM overheads only."""
        device.column(0, 0, is_write=False)
        assert not device.can_column(1, 1, is_write=True)
        assert device.can_column(1, 2, is_write=True)

    def test_storage(self, device):
        device.column(7, 0, is_write=True, value=11)
        device.poke(8, 22)
        assert device.peek(7) == 11
        assert device.peek(8) == 22
        _, value = device.column(7, 3, is_write=True, value=12)
        assert device.peek(7) == 12

    def test_write_requires_data(self, device):
        with pytest.raises(SchedulingError):
            device.column(0, 0, is_write=True)

    def test_pins_busy_raises(self, device):
        device.column(0, 0, is_write=False)
        with pytest.raises(SchedulingError):
            device.column(1, 0, is_write=False)

    def test_stats(self, device):
        device.column(0, 0, is_write=False)
        device.column(1, 2, is_write=True, value=1)
        stats = device.stats()
        assert stats.reads == 1
        assert stats.writes == 1
        assert stats.activates == 0
        assert stats.turnarounds == 1

"""Tests for the internal-bank state machine."""

import pytest

from repro.errors import SchedulingError, TimingViolation
from repro.params import SDRAMTiming
from repro.sdram.bank import InternalBank

TIMING = SDRAMTiming(t_rcd=2, cas_latency=2, t_rp=2, t_wr=1)


@pytest.fixture
def bank():
    return InternalBank(0, TIMING)


class TestActivate:
    def test_open_then_column_after_trcd(self, bank):
        bank.activate(row=5, cycle=0)
        assert bank.open_row == 5
        assert not bank.can_column(1, row=5)  # t_rcd not elapsed
        assert bank.can_column(2, row=5)

    def test_activate_while_open_is_error(self, bank):
        bank.activate(row=5, cycle=0)
        with pytest.raises(SchedulingError):
            bank.activate(row=6, cycle=10)

    def test_cannot_column_wrong_row(self, bank):
        bank.activate(row=5, cycle=0)
        assert not bank.can_column(10, row=6)

    def test_column_with_closed_bank_is_error(self, bank):
        with pytest.raises(SchedulingError):
            bank.column(0, is_write=False, auto_precharge=False)


class TestPrecharge:
    def test_precharge_then_activate_after_trp(self, bank):
        bank.activate(row=5, cycle=0)
        bank.precharge(cycle=2)
        assert bank.open_row is None
        assert not bank.can_activate(3)
        assert bank.can_activate(4)  # t_rp = 2

    def test_precharge_too_early_raises(self, bank):
        bank.activate(row=5, cycle=0)
        with pytest.raises(TimingViolation):
            bank.precharge(cycle=1)  # before activate completes

    def test_precharge_closed_bank_is_error(self, bank):
        with pytest.raises(SchedulingError):
            bank.precharge(cycle=0)

    def test_write_recovery_delays_precharge(self, bank):
        bank.activate(row=1, cycle=0)
        bank.column(2, is_write=True, auto_precharge=False)
        assert not bank.can_precharge(3)  # t_wr holds it
        assert bank.can_precharge(4)

    def test_read_allows_next_cycle_precharge(self, bank):
        bank.activate(row=1, cycle=0)
        bank.column(2, is_write=False, auto_precharge=False)
        assert bank.can_precharge(3)


class TestAutoPrecharge:
    def test_auto_precharge_closes_row(self, bank):
        bank.activate(row=1, cycle=0)
        bank.column(2, is_write=False, auto_precharge=True)
        assert bank.open_row is None
        assert bank.auto_precharges == 1

    def test_auto_precharge_respects_trp(self, bank):
        bank.activate(row=1, cycle=0)
        bank.column(2, is_write=False, auto_precharge=True)
        # Closed effective cycle 3, + t_rp 2 -> ready at 5.
        assert not bank.can_activate(4)
        assert bank.can_activate(5)

    def test_write_auto_precharge_includes_recovery(self, bank):
        bank.activate(row=1, cycle=0)
        bank.column(2, is_write=True, auto_precharge=True)
        assert not bank.can_activate(5)
        assert bank.can_activate(6)  # extra t_wr cycle


class TestStats:
    def test_counters(self, bank):
        bank.activate(row=1, cycle=0)
        bank.column(2, is_write=False, auto_precharge=False)
        bank.precharge(cycle=3)
        bank.activate(row=2, cycle=5)
        bank.column(7, is_write=False, auto_precharge=True)
        assert bank.activates == 2
        assert bank.precharges == 1
        assert bank.auto_precharges == 1

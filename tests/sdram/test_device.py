"""Tests for the SDRAM device model (geometry, data pins, storage)."""

import pytest

from repro.errors import SchedulingError
from repro.params import SDRAMTiming
from repro.sdram.device import SDRAMDevice

TIMING = SDRAMTiming(
    t_rcd=2, cas_latency=2, t_rp=2, t_wr=1, internal_banks=4, row_words=512
)


@pytest.fixture
def device():
    return SDRAMDevice(TIMING, bus_turnaround=1)


class TestGeometry:
    def test_locate_first_row(self, device):
        loc = device.locate(0)
        assert (loc.internal_bank, loc.row, loc.column) == (0, 0, 0)
        loc = device.locate(511)
        assert (loc.internal_bank, loc.row, loc.column) == (0, 0, 511)

    def test_rows_rotate_internal_banks(self, device):
        """Consecutive rows of local address space land in different
        internal banks (activates can overlap with CAS traffic)."""
        assert device.locate(512).internal_bank == 1
        assert device.locate(1024).internal_bank == 2
        assert device.locate(1536).internal_bank == 3
        assert device.locate(2048).internal_bank == 0
        assert device.locate(2048).row == 1

    def test_columns_within_row(self, device):
        assert device.locate(512 + 37).column == 37


class TestTiming:
    def test_full_read_sequence(self, device):
        assert device.can_activate(0, 0)
        device.activate(0, 0)
        assert not device.can_column(0, 1, is_write=False)
        assert device.can_column(0, 2, is_write=False)
        data_cycle, value = device.column(0, 2, is_write=False)
        assert data_cycle == 2 + TIMING.cas_latency
        assert value == 0  # untouched storage

    def test_one_column_per_cycle(self, device):
        device.activate(0, 0)
        device.column(0, 2, is_write=False)
        assert not device.can_column(1, 2, is_write=False)
        assert device.can_column(1, 3, is_write=False)

    def test_column_without_pins_raises(self, device):
        device.activate(0, 0)
        device.column(0, 2, is_write=False)
        with pytest.raises(SchedulingError):
            device.column(1, 2, is_write=False)

    def test_turnaround_on_direction_change(self, device):
        device.activate(0, 0)
        device.column(0, 2, is_write=False)
        # Read -> write: one turnaround cycle, so cycle 3 is blocked.
        assert not device.can_column(1, 3, is_write=True)
        assert device.can_column(1, 4, is_write=True)
        device.column(1, 4, is_write=True, value=42)
        assert device.stats().turnarounds == 1

    def test_no_turnaround_same_direction(self, device):
        device.activate(0, 0)
        device.column(0, 2, is_write=False)
        device.column(1, 3, is_write=False)
        assert device.stats().turnarounds == 0

    def test_internal_banks_independent(self, device):
        device.activate(0, 0)  # internal bank 0
        device.activate(512, 1)  # internal bank 1 next cycle
        assert device.can_column(0, 2, is_write=False)
        assert device.can_column(512, 3, is_write=False)

    def test_conflicting_row_open(self, device):
        device.activate(0, 0)
        # word 2048 is internal bank 0, row 1.
        assert device.conflicting_row_open(2048)
        assert not device.conflicting_row_open(5)
        assert device.row_is_open_for(5)
        assert not device.row_is_open_for(2048)


class TestStorage:
    def test_read_before_turnaround_elapses_raises(self, device):
        device.activate(0, 0)
        device.column(3, 2, is_write=True, value=99)
        with pytest.raises(SchedulingError):
            device.column(3, 3, is_write=False)

    def test_write_then_read_with_turnaround(self, device):
        device.activate(0, 0)
        device.column(3, 2, is_write=True, value=99)
        _, value = device.column(3, 4, is_write=False)
        assert value == 99

    def test_write_requires_data(self, device):
        device.activate(0, 0)
        with pytest.raises(SchedulingError):
            device.column(3, 2, is_write=True, value=None)

    def test_peek_poke(self, device):
        device.poke(100, 7)
        assert device.peek(100) == 7
        assert device.peek(101) == 0

    def test_stats_aggregation(self, device):
        device.activate(0, 0)
        device.column(0, 2, is_write=False)
        device.column(1, 3, is_write=False, auto_precharge=True)
        stats = device.stats()
        assert stats.activates == 1
        assert stats.reads == 2
        assert stats.auto_precharges == 1
        assert stats.row_reuse == 1

"""Tests for bit-reversed application vectors (chapter 7)."""

import pytest

from repro.errors import VectorSpecError
from repro.extensions.bitreversal import (
    bit_reversal_addresses,
    bit_reversal_gather,
    bit_reverse,
)
from repro.params import SystemParams
from repro.pva.system import PVAMemorySystem


class TestBitReverse:
    def test_known_values(self):
        assert bit_reverse(0b001, 3) == 0b100
        assert bit_reverse(0b110, 3) == 0b011
        assert bit_reverse(0, 4) == 0
        assert bit_reverse(0b1111, 4) == 0b1111

    def test_is_involution(self):
        for bits in (1, 3, 5, 8):
            for value in range(1 << bits):
                assert bit_reverse(bit_reverse(value, bits), bits) == value

    def test_is_permutation(self):
        bits = 6
        image = {bit_reverse(v, bits) for v in range(1 << bits)}
        assert image == set(range(1 << bits))

    def test_value_too_large(self):
        with pytest.raises(VectorSpecError):
            bit_reverse(8, 3)

    def test_negative_bits(self):
        with pytest.raises(VectorSpecError):
            bit_reverse(0, -1)


class TestAddresses:
    def test_fft_reorder_pattern(self):
        # 8-point FFT: 0,4,2,6,1,5,3,7
        assert bit_reversal_addresses(0, 3) == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_base_offset(self):
        assert bit_reversal_addresses(100, 2) == [100, 102, 101, 103]

    def test_windowed_chunk(self):
        full = bit_reversal_addresses(0, 5)
        chunk = bit_reversal_addresses(0, 5, start=8, count=8)
        assert chunk == full[8:16]

    def test_range_validation(self):
        with pytest.raises(VectorSpecError):
            bit_reversal_addresses(0, 3, start=4, count=8)


class TestGatherCommand:
    def test_functional_reorder(self):
        system = PVAMemorySystem(SystemParams())
        bits = 10
        base = 0
        for i in range(1 << bits):
            system.poke(base + i, 3000 + i)
        command = bit_reversal_gather(base, bits, start=32, count=32)
        result = system.run([command], capture_data=True)
        expected = tuple(
            3000 + bit_reverse(i, bits) for i in range(32, 64)
        )
        assert result.read_lines[0] == expected

    def test_whole_fft_permutation_in_chunks(self):
        """Gather a full 256-point reorder as 8 line-sized commands; the
        concatenated result is the bit-reversed permutation."""
        system = PVAMemorySystem(SystemParams())
        bits = 8
        for i in range(1 << bits):
            system.poke(i, i)
        trace = [
            bit_reversal_gather(0, bits, start=s, count=32)
            for s in range(0, 256, 32)
        ]
        result = system.run(trace, capture_data=True)
        flattened = [v for line in result.read_lines for v in line]
        assert flattened == [bit_reverse(i, bits) for i in range(256)]

    def test_sequential_expansion_cost(self):
        cmd = bit_reversal_gather(0, 10, count=32)
        assert cmd.broadcast_cycles == 17

"""Tests for Impulse-style shadow address spaces (section 3.2)."""

import pytest

from repro.errors import AddressError, ConfigurationError
from repro.extensions.shadow import ShadowRegion, ShadowSpace
from repro.params import SystemParams
from repro.pva.system import PVAMemorySystem
from repro.types import AccessType

PROTO = SystemParams()


class TestShadowRegion:
    def test_translate(self):
        region = ShadowRegion(
            shadow_base=1000, target_base=0, stride=7, length=64
        )
        assert region.translate(1000) == 0
        assert region.translate(1003) == 21

    def test_out_of_region(self):
        region = ShadowRegion(
            shadow_base=1000, target_base=0, stride=7, length=64
        )
        with pytest.raises(AddressError):
            region.translate(999)
        with pytest.raises(AddressError):
            region.translate(1064)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ShadowRegion(shadow_base=0, target_base=0, stride=0, length=4)
        with pytest.raises(ConfigurationError):
            ShadowRegion(shadow_base=0, target_base=0, stride=1, length=0)

    def test_line_fill_command(self):
        region = ShadowRegion(
            shadow_base=0, target_base=500, stride=19, length=64
        )
        command = region.line_fill_command(32, PROTO)
        assert command.vector.base == 500 + 32 * 19
        assert command.vector.stride == 19
        assert command.vector.length == 32

    def test_partial_last_line(self):
        region = ShadowRegion(
            shadow_base=0, target_base=0, stride=3, length=40
        )
        command = region.line_fill_command(32, PROTO)
        assert command.vector.length == 8  # only 40 - 32 words mapped

    def test_unaligned_line_rejected(self):
        region = ShadowRegion(shadow_base=0, target_base=0, stride=3, length=64)
        with pytest.raises(AddressError):
            region.line_fill_command(5, PROTO)


class TestShadowSpace:
    def test_overlap_rejected(self):
        space = ShadowSpace()
        space.configure(
            ShadowRegion(shadow_base=0, target_base=0, stride=2, length=64)
        )
        with pytest.raises(ConfigurationError):
            space.configure(
                ShadowRegion(
                    shadow_base=32, target_base=4096, stride=1, length=64
                )
            )

    def test_physical_aliasing_allowed(self):
        """Two shadow views of the same physical data are the point."""
        space = ShadowSpace()
        space.configure(
            ShadowRegion(shadow_base=0, target_base=0, stride=2, length=64)
        )
        space.configure(
            ShadowRegion(shadow_base=64, target_base=1, stride=2, length=64)
        )
        assert len(space) == 2

    def test_unmapped_address(self):
        with pytest.raises(AddressError):
            ShadowSpace().translate(0)

    def test_dense_shadow_read_gathers_strided_data(self):
        """The end-to-end story: the processor reads the shadow region
        with ordinary line fills; the PVA gathers the strided physical
        data; the result is the dense strided view."""
        stride = 19
        space = ShadowSpace()
        space.configure(
            ShadowRegion(
                shadow_base=0, target_base=100, stride=stride, length=128
            )
        )
        system = PVAMemorySystem(PROTO)
        for i in range(128):
            system.poke(100 + i * stride, 40_000 + i)
        commands = space.fill_commands(0, 128, PROTO)
        assert len(commands) == 4  # 128 shadow words / 32-word lines
        result = system.run(commands, capture_data=True)
        dense = [v for line in result.read_lines for v in line]
        assert dense == [40_000 + i for i in range(128)]

    def test_shadow_write_scatters(self):
        space = ShadowSpace()
        space.configure(
            ShadowRegion(shadow_base=0, target_base=0, stride=5, length=32)
        )
        system = PVAMemorySystem(PROTO)
        commands = space.fill_commands(
            0, 32, PROTO, access=AccessType.WRITE
        )
        system.run(commands)
        # Placeholder write pattern is index order.
        assert [system.peek(i * 5) for i in range(32)] == list(range(32))

"""Tests for vector-indirect scatter/gather (chapter 7)."""

import random

import pytest

from repro.errors import VectorSpecError
from repro.extensions.indirect import (
    indirect_gather,
    indirect_scatter,
    load_indirection_vector,
)
from repro.params import SystemParams
from repro.pva.system import PVAMemorySystem
from repro.types import AccessType


class TestCommandConstruction:
    def test_load_is_unit_stride(self):
        cmd = load_indirection_vector(base=128, length=32)
        assert cmd.vector.stride == 1
        assert cmd.vector.length == 32
        assert cmd.access is AccessType.READ

    def test_broadcast_cost_two_per_cycle(self):
        """32 addresses at two per cycle: 1 command + 16 snoop cycles."""
        assert indirect_gather(range(32)).broadcast_cycles == 17
        assert indirect_gather(range(31)).broadcast_cycles == 17
        assert indirect_gather(range(2)).broadcast_cycles == 2
        assert indirect_gather([5]).broadcast_cycles == 2

    def test_empty_rejected(self):
        with pytest.raises(VectorSpecError):
            indirect_gather([])
        with pytest.raises(VectorSpecError):
            indirect_scatter([])

    def test_scatter_carries_data(self):
        cmd = indirect_scatter([1, 2], data=[10, 20])
        assert cmd.data == (10, 20)
        assert cmd.access is AccessType.WRITE


class TestFunctional:
    def test_sparse_gather(self):
        system = PVAMemorySystem(SystemParams())
        rng = random.Random(42)
        addresses = rng.sample(range(1 << 14), 32)
        for a in addresses:
            system.poke(a, a ^ 0x5A5A)
        result = system.run([indirect_gather(addresses)], capture_data=True)
        assert result.read_lines[0] == tuple(a ^ 0x5A5A for a in addresses)

    def test_sparse_scatter(self):
        system = PVAMemorySystem(SystemParams())
        rng = random.Random(43)
        addresses = rng.sample(range(1 << 14), 32)
        data = tuple(rng.randrange(1 << 30) for _ in range(32))
        system.run([indirect_scatter(addresses, data)])
        assert [system.peek(a) for a in addresses] == list(data)

    def test_duplicate_addresses_allowed_in_gather(self):
        system = PVAMemorySystem(SystemParams())
        system.poke(100, 9)
        result = system.run(
            [indirect_gather([100, 100, 100])], capture_data=True
        )
        assert result.read_lines[0] == (9, 9, 9)

    def test_two_phase_sequence(self):
        """Phase (i) loads the indirection vector; phase (ii) gathers
        through it — sparse-matrix style."""
        system = PVAMemorySystem(SystemParams())
        index_base = 1 << 14  # keep the index array clear of the targets
        indices = [7 + 13 * i for i in range(32)]
        for slot, target in enumerate(indices):
            system.poke(index_base + slot, target)
            system.poke(target, target * 11)
        phase1 = system.run(
            [load_indirection_vector(index_base, 32)], capture_data=True
        )
        loaded = phase1.read_lines[0]
        assert list(loaded) == indices
        phase2 = system.run([indirect_gather(loaded)], capture_data=True)
        assert phase2.read_lines[0] == tuple(t * 11 for t in indices)

    def test_gather_slower_than_dense_read(self):
        """The indirection broadcast costs bus cycles a base-stride
        command does not."""
        from repro.types import Vector, VectorCommand

        system_a = PVAMemorySystem(SystemParams())
        dense = VectorCommand(
            vector=Vector(base=0, stride=1, length=32),
            access=AccessType.READ,
        )
        system_b = PVAMemorySystem(SystemParams())
        sparse = indirect_gather(list(range(32)))
        assert (
            system_b.run([sparse]).cycles > system_a.run([dense]).cycles
        )

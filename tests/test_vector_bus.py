"""Unit tests for the vector-bus occupancy model."""

import pytest

from repro.bus.vector_bus import VectorBus
from repro.errors import ProtocolError
from repro.params import SystemParams

PROTO = SystemParams()  # stage_cycles = 16, turnaround = 1


@pytest.fixture
def bus():
    return VectorBus(PROTO)


class TestRequests:
    def test_single_request_cycle(self, bus):
        assert bus.is_free(0)
        end = bus.broadcast_request(0)
        assert end == 1
        assert not bus.is_free(0)
        assert bus.is_free(1)

    def test_multi_cycle_broadcast(self, bus):
        end = bus.broadcast_request(0, request_cycles=17)
        assert end == 17
        assert bus.stats.request_cycles == 17

    def test_double_claim_rejected(self, bus):
        bus.broadcast_request(0, request_cycles=4)
        with pytest.raises(ProtocolError):
            bus.broadcast_request(2)


class TestStaging:
    def test_stage_read_occupancy(self, bus):
        end = bus.stage_read(0)
        assert end == 1 + PROTO.stage_cycles  # command + 16 data
        assert bus.stats.data_cycles == 16
        assert bus.stats.request_cycles == 1
        assert bus.last_data_was_write is False

    def test_stage_write_returns_broadcast_cycle(self, bus):
        broadcast = bus.stage_write(0)
        assert broadcast == 1 + PROTO.stage_cycles
        assert bus.busy_until == broadcast + 1
        assert bus.last_data_was_write is True

    def test_no_turnaround_on_first_transfer(self, bus):
        assert bus.stage_read(0) == 17
        assert bus.stats.turnaround_cycles == 0

    def test_turnaround_write_then_read(self, bus):
        bus.stage_write(0)  # frees at 18
        end = bus.stage_read(18)
        assert end == 18 + 1 + 1 + 16  # cmd + turnaround + data
        assert bus.stats.turnaround_cycles == 1

    def test_turnaround_read_then_write(self, bus):
        bus.stage_read(0)  # frees at 17
        broadcast = bus.stage_write(17)
        assert broadcast == 17 + 1 + 1 + 16
        assert bus.stats.turnaround_cycles == 1

    def test_no_turnaround_same_direction(self, bus):
        bus.stage_read(0)
        bus.stage_read(17)
        assert bus.stats.turnaround_cycles == 0

    def test_requests_do_not_change_polarity(self, bus):
        bus.stage_read(0)
        bus.broadcast_request(17)
        bus.stage_read(18)
        assert bus.stats.turnaround_cycles == 0


class TestStats:
    def test_accumulation(self, bus):
        bus.broadcast_request(0)
        bus.stage_read(1)
        bus.stage_write(18)
        stats = bus.stats
        # requests: 1 (broadcast) + 1 (STAGE_READ) + 2 (STAGE_WRITE + VEC_WRITE)
        assert stats.request_cycles == 4
        assert stats.data_cycles == 32
        assert stats.turnaround_cycles == 1

"""Smoke tests: every example script must run cleanly via the public API.

The heavier sweeps are exercised at reduced scale elsewhere; here we run
the scripts exactly as a user would, asserting a zero exit and the
expected headline output.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def run_example(path):
    return subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_examples_directory_populated():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    result = run_example(path)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_quickstart_shows_speedups():
    result = run_example(
        pathlib.Path(__file__).resolve().parent.parent
        / "examples"
        / "quickstart.py"
    )
    assert "PVA-SDRAM" in result.stdout
    assert "x" in result.stdout  # speedup column

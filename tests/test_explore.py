"""The design-space exploration driver (``python -m repro explore``)."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.explore import (
    QUICK_SPEC,
    SweepSpec,
    enumerate_candidates,
    format_explore,
    run_explore,
)


@pytest.fixture(scope="module")
def quick_report():
    return run_explore(QUICK_SPEC)


class TestSweepSpec:
    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(axes={"clock_ghz": [1, 2]})

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(axes={})
        with pytest.raises(ConfigurationError):
            SweepSpec(axes={"num_banks": []})

    def test_non_pva_system_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(axes={"num_banks": [8]}, system="cacheline-serial")

    def test_negative_slack_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(axes={"num_banks": [8]}, prune_slack=-0.1)

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec.from_dict({"axes": {"num_banks": [8]}, "turbo": True})

    def test_round_trips_through_dict(self):
        spec = SweepSpec.from_dict(QUICK_SPEC.to_dict())
        assert spec == QUICK_SPEC


class TestEnumeration:
    def test_invalid_combos_are_counted_not_dropped(self):
        spec = SweepSpec(
            axes={"num_banks": [8, 16], "num_channels": [1, 32]},
            elements=64,
        )
        candidates, invalid = enumerate_candidates(spec)
        # num_channels=32 cannot fit either bank count.
        assert len(candidates) == 2
        assert len(invalid) == 2
        assert all("reason" in record for record in invalid)

    def test_elements_round_up_to_the_line_size(self):
        spec = SweepSpec(axes={"cache_line_words": [16, 64]}, elements=100)
        candidates, _ = enumerate_candidates(spec)
        by_line = {
            c.params.cache_line_words: c.elements for c in candidates
        }
        assert by_line == {16: 112, 64: 128}


class TestRunExplore:
    def test_quick_sweep_acceptance(self, quick_report):
        report = quick_report
        assert report["invalid"] == 0
        assert report["enumerated"] == 12
        # Pre-filtering measurably bites: >= 30% of the sweep skipped.
        assert report["prune_fraction"] >= 0.30
        assert report["pruned"] + report["simulated"] == report["candidates"]
        assert report["pareto"], "Pareto frontier must be non-empty"

    def test_every_simulated_point_respects_its_bound(self, quick_report):
        for record in quick_report["points"]:
            if record["status"] == "simulated":
                assert record["cycles"] >= record["lower_bound"]
            else:
                assert record["cycles"] is None

    def test_pareto_frontier_is_minimal_and_sorted(self, quick_report):
        frontier = quick_report["pareto"]
        simulated = [
            r for r in quick_report["points"] if r["status"] == "simulated"
        ]
        complexities = [p["complexity"] for p in frontier]
        cycles = [p["cycles"] for p in frontier]
        assert complexities == sorted(complexities)
        assert cycles == sorted(cycles, reverse=True)
        # No simulated point strictly dominates a frontier member.
        for member in frontier:
            assert not any(
                other["complexity"] <= member["complexity"]
                and other["cycles"] < member["cycles"]
                for other in simulated
            )

    def test_points_carry_canonical_config_keys(self, quick_report):
        from repro.params import SystemParams

        record = quick_report["points"][0]
        rebuilt = SystemParams(**record["settings"])
        assert rebuilt.config_key() == record["config_key"]

    def test_report_is_json_serializable(self, quick_report):
        parsed = json.loads(json.dumps(quick_report))
        assert parsed["spec"]["kernel"] == "copy"

    def test_slack_prunes_at_least_as_much_as_exact(self, quick_report):
        slack_doc = QUICK_SPEC.to_dict()
        slack_doc["prune_slack"] = 0.5
        slacked = run_explore(SweepSpec.from_dict(slack_doc))
        assert slacked["pruned"] >= quick_report["pruned"]

    def test_format_renders_summary(self, quick_report):
        text = format_explore(quick_report)
        assert "Pareto frontier" in text
        assert "pruned by analytic bound" in text


class TestExploreCLI:
    def test_quick_writes_report_and_passes_gate(self, tmp_path, capsys):
        out = tmp_path / "EXPLORE.json"
        code = main(
            [
                "explore",
                "--quick",
                "--min-prune-fraction",
                "0.3",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["pareto"]
        assert "Pareto" in capsys.readouterr().out

    def test_spec_file_round_trip(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(
                {
                    "axes": {"num_banks": [4, 8]},
                    "kernel": "copy",
                    "stride": 1,
                    "elements": 64,
                }
            )
        )
        assert main(["explore", "--spec", str(spec_path)]) == 0

    def test_axis_flags_build_a_sweep(self):
        assert (
            main(
                [
                    "explore",
                    "--banks",
                    "8,16",
                    "--contexts",
                    "1,4",
                    "--kernel",
                    "copy",
                    "--stride",
                    "1",
                    "--elements",
                    "64",
                ]
            )
            == 0
        )

    def test_unreachable_gate_fails_cleanly(self):
        code = main(
            [
                "explore",
                "--quick",
                "--min-prune-fraction",
                "0.99",
            ]
        )
        assert code == 1

    def test_bad_spec_file_fails_cleanly(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text('{"axes": {"warp_factor": [9]}}')
        assert main(["explore", "--spec", str(spec_path)]) == 2

"""Tests pinning the simulators to the closed-form performance models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.model import (
    available_parallelism,
    bus_bound_cycles,
    cacheline_serial_cycles,
    gathering_serial_cycles,
    per_bank_column_bound,
    pva_lower_bound,
)
from repro.baselines.cacheline_serial import CacheLineSerialSDRAM
from repro.baselines.gathering_serial import GatheringSerialSDRAM
from repro.baselines.pva_sram import make_pva_sram
from repro.kernels import build_trace, kernel_by_name
from repro.params import SystemParams
from repro.pva.system import PVAMemorySystem
from repro.types import AccessType, Vector, VectorCommand

PROTO = SystemParams()


class TestParallelism:
    def test_section_631_values(self):
        assert available_parallelism(1, 16) == 16
        assert available_parallelism(4, 16) == 4
        assert available_parallelism(16, 16) == 1
        assert available_parallelism(19, 16) == 16


class TestBaselineFormulas:
    @pytest.mark.parametrize("kernel", ["copy", "scale", "vaxpy", "tridiag"])
    @pytest.mark.parametrize("stride", [1, 4, 16, 19])
    def test_cacheline_simulator_matches_formula(self, kernel, stride):
        trace = build_trace(
            kernel_by_name(kernel), stride=stride, params=PROTO, elements=128
        )
        simulated = CacheLineSerialSDRAM(PROTO).run(trace).cycles
        assert simulated == cacheline_serial_cycles(trace, PROTO)

    @pytest.mark.parametrize("stride", [1, 4, 16, 19])
    def test_gathering_simulator_matches_formula(self, stride):
        trace = build_trace(
            kernel_by_name("swap"), stride=stride, params=PROTO, elements=128
        )
        simulated = GatheringSerialSDRAM(PROTO).run(trace).cycles
        assert simulated == gathering_serial_cycles(trace, PROTO)


class TestPVABounds:
    @pytest.mark.parametrize("kernel", ["copy", "scale", "swap", "vaxpy"])
    @pytest.mark.parametrize("stride", [1, 2, 8, 16, 19])
    def test_simulation_never_beats_lower_bound(self, kernel, stride):
        trace = build_trace(
            kernel_by_name(kernel), stride=stride, params=PROTO, elements=256
        )
        bound = pva_lower_bound(trace, PROTO)
        for system in (PVAMemorySystem(PROTO), make_pva_sram(PROTO)):
            assert system.run(trace).cycles >= bound

    def test_bus_bound_is_tight_at_unit_stride(self):
        """At stride 1 the PVA is bus-limited: the simulation lands within
        ~10% of the occupancy bound."""
        trace = build_trace(
            kernel_by_name("copy"), stride=1, params=PROTO, elements=512
        )
        bound = bus_bound_cycles(trace, PROTO)
        cycles = PVAMemorySystem(PROTO).run(trace).cycles
        assert bound <= cycles <= bound * 1.10

    def test_column_bound_dominates_at_single_bank_stride(self):
        """At stride 16 every element of a vector lands in one bank: the
        busiest-bank bound exceeds the bus bound per command."""
        trace = build_trace(
            kernel_by_name("scale"), stride=16, params=PROTO, elements=512
        )
        assert per_bank_column_bound(trace, PROTO) > 0
        # All of scale's elements share one bank at stride 16.
        assert per_bank_column_bound(trace, PROTO) == 2 * 512

    def test_per_bank_bound_with_explicit_command(self):
        from repro.types import ExplicitCommand

        cmd = ExplicitCommand(
            addresses=(0, 16, 32, 1),
            access=AccessType.READ,
            broadcast_cycles=3,
        )
        assert per_bank_column_bound([cmd], PROTO) == 3  # bank 0 gets 3

    @given(
        stride=st.integers(1, 64),
        length=st.integers(1, 32),
        base=st.integers(0, 1024),
    )
    @settings(max_examples=50, deadline=None)
    def test_bound_invariant_random_single_commands(self, stride, length, base):
        command = VectorCommand(
            vector=Vector(base=base, stride=stride, length=length),
            access=AccessType.READ,
        )
        cycles = PVAMemorySystem(PROTO).run([command]).cycles
        assert cycles >= pva_lower_bound([command], PROTO)

"""Cache-key stability and on-disk result cache behavior."""

import dataclasses
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine import (
    CommandTraceSpec,
    ExperimentPoint,
    KernelTraceSpec,
    ResultCache,
    canonical,
    default_salt,
    point_key,
)
from repro.params import SDRAMTiming, SystemParams
from repro.types import AccessType, Vector, VectorCommand


def _point(**overrides):
    spec = dict(kernel="copy", stride=4, alignment="aligned", elements=256)
    spec.update(overrides)
    return ExperimentPoint(system="pva-sdram", trace=KernelTraceSpec(**spec))


SRC = Path(__file__).resolve().parents[2] / "src"

KEY_SCRIPT = """
import json, sys
from repro.engine import ExperimentPoint, KernelTraceSpec, point_key
from repro.params import SystemParams
spec = json.loads(sys.argv[1])
point = ExperimentPoint(
    system=spec["system"],
    trace=KernelTraceSpec(**spec["trace"]),
    params=SystemParams(**spec["params"]),
)
print(point_key(point, spec["salt"]))
"""


def test_key_is_deterministic_within_process():
    assert point_key(_point(), "salt") == point_key(_point(), "salt")


def test_key_stable_across_processes():
    """The content address must be reproducible in a fresh interpreter —
    no id()/hash-randomization/closure leakage into the key material."""
    point = _point(stride=19, alignment="element")
    spec = {
        "system": point.system,
        "trace": dataclasses.asdict(point.trace),
        "params": {"num_banks": point.params.num_banks},
        "salt": "cross-process-salt",
    }
    out = subprocess.run(
        [sys.executable, "-c", KEY_SCRIPT, json.dumps(spec)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC), "PYTHONHASHSEED": "random"},
        check=True,
    )
    assert out.stdout.strip() == point_key(point, "cross-process-salt")


def test_key_changes_with_params():
    base = point_key(_point(), "s")
    changed = ExperimentPoint(
        system="pva-sdram",
        trace=KernelTraceSpec(
            kernel="copy", stride=4, alignment="aligned", elements=256
        ),
        params=SystemParams(sdram=SDRAMTiming(t_rcd=3)),
    )
    assert point_key(changed, "s") != base


@pytest.mark.parametrize(
    "override",
    [
        dict(kernel="scale"),
        dict(stride=5),
        dict(alignment="element"),
        dict(elements=512),
    ],
)
def test_key_changes_with_trace_spec(override):
    assert point_key(_point(**override), "s") != point_key(_point(), "s")


def test_key_changes_with_salt():
    assert point_key(_point(), "a") != point_key(_point(), "b")


def test_key_changes_with_sim_mode():
    """The resolved backend label is part of the point key: a document
    produced by one backend can never be served for another."""
    keys = {
        point_key(
            ExperimentPoint(
                system="pva-sdram",
                trace=KernelTraceSpec(
                    kernel="copy", stride=4, alignment="aligned", elements=256
                ),
                params=SystemParams(sim_mode=mode),
            ),
            "s",
        )
        for mode in ("tick", "skip", "precompute", "soa", "window")
    }
    assert len(keys) == 5


def test_default_salt_carries_version_and_schema():
    import repro
    from repro.engine.spec import CACHE_SCHEMA_VERSION

    salt = default_salt()
    assert repro.__version__ in salt
    assert str(CACHE_SCHEMA_VERSION) in salt


def test_command_trace_label_is_cosmetic():
    command = VectorCommand(
        vector=Vector(base=3, stride=1, length=16), access=AccessType.READ
    )
    a = ExperimentPoint(
        system="pva-sdram",
        trace=CommandTraceSpec(commands=(command,), label="one"),
    )
    b = ExperimentPoint(
        system="pva-sdram",
        trace=CommandTraceSpec(commands=(command,), label="two"),
    )
    assert point_key(a, "s") == point_key(b, "s")


def test_canonical_rejects_unkeyable_objects():
    with pytest.raises(TypeError):
        canonical(object())


def test_cache_roundtrip(tmp_path):
    cache = ResultCache(tmp_path)
    key = point_key(_point(), "s")
    assert cache.get(key) is None
    cache.put(key, {"cycles": 145, "point": "copy/s4"})
    assert key in cache
    assert cache.get(key)["cycles"] == 145
    assert len(cache) == 1
    assert cache.clear() == 1
    assert cache.get(key) is None


def test_cache_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    key = point_key(_point(), "s")
    cache.put(key, {"cycles": 145})
    path = cache._path(key)
    path.write_text("{not json")
    assert cache.get(key) is None
    assert not path.exists()  # dropped for recomputation


def test_cache_entry_without_cycles_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    key = "ab" + "0" * 62
    path = cache._path(key)
    path.parent.mkdir(parents=True)
    path.write_text(json.dumps({"note": "no cycle count"}))
    assert cache.get(key) is None


class TestPutValidation:
    """put() rejects documents without a non-negative integer cycles
    field, so garbage never enters the cache in the first place."""

    @pytest.mark.parametrize(
        "document",
        [
            {"note": "no cycle count"},
            {"cycles": -1},
            {"cycles": 3.5},
            {"cycles": "145"},
            {"cycles": True},
            {"cycles": None},
        ],
    )
    def test_rejects_invalid_documents(self, tmp_path, document):
        from repro.errors import CacheIntegrityError, ReproError

        cache = ResultCache(tmp_path)
        with pytest.raises(CacheIntegrityError):
            cache.put("ab" + "0" * 62, document)
        assert len(cache) == 0
        # and the error is catchable as the library base class
        with pytest.raises(ReproError):
            cache.put("ab" + "0" * 62, document)

    def test_accepts_zero_cycles(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" + "0" * 62, {"cycles": 0})
        assert cache.get("ab" + "0" * 62)["cycles"] == 0


class TestPollutedDirectory:
    """Maintenance paths skip stray files, so a polluted cache
    directory cannot crash (or be damaged by) __len__/clear."""

    def _polluted(self, tmp_path):
        from repro.faults import CacheCorruptor

        cache = ResultCache(tmp_path)
        cache.put("ab" + "0" * 62, {"cycles": 145})
        strays = CacheCorruptor(cache).strays()
        return cache, strays

    def test_len_counts_entries_only(self, tmp_path):
        cache, _ = self._polluted(tmp_path)
        assert len(cache) == 1

    def test_clear_removes_entries_and_spares_strays(self, tmp_path):
        cache, strays = self._polluted(tmp_path)
        assert cache.clear() == 1
        assert len(cache) == 0
        for stray in strays:
            assert stray.exists()

    def test_corrupted_entries_are_misses(self, tmp_path):
        from repro.faults import CacheCorruptor

        cache = ResultCache(tmp_path)
        corruptor = CacheCorruptor(cache)
        keys = ["aa" + "0" * 62, "bb" + "0" * 62, "cc" + "0" * 62]
        corruptor.torn_entry(keys[0])
        corruptor.garbage_entry(keys[1])
        corruptor.non_dict_entry(keys[2])
        for key in keys:
            assert cache.get(key) is None


class TestQuarantine:
    """Corrupt entries are moved aside — evidence preserved, lookup
    path cleared — and never served or recounted."""

    KEY = "ab" + "0" * 62

    def _corrupted(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(self.KEY, {"cycles": 145})
        cache._path(self.KEY).write_text("{torn", encoding="utf-8")
        return cache

    def test_corrupt_entry_moves_to_quarantine_dir(self, tmp_path):
        cache = self._corrupted(tmp_path)
        assert cache.get(self.KEY) is None
        quarantine = tmp_path / ResultCache.QUARANTINE_DIR
        assert (quarantine / f"{self.KEY}.json.quarantined").exists()
        assert cache.quarantined == 1

    def test_quarantined_entry_leaves_len_and_put_usable(self, tmp_path):
        cache = self._corrupted(tmp_path)
        cache.get(self.KEY)
        assert len(cache) == 0  # quarantine files are not entries
        cache.put(self.KEY, {"cycles": 99})  # slot is reusable
        assert cache.get(self.KEY)["cycles"] == 99
        assert len(cache) == 1

    def test_wrong_shape_document_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache._path(self.KEY)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"cycles": "not-an-int"}))
        assert cache.get(self.KEY) is None
        assert cache.quarantined == 1
        assert not path.exists()

    def test_stale_schema_is_a_miss_but_not_quarantined(self, tmp_path):
        from repro.engine.cache import SCHEMA_VERSION

        cache = ResultCache(tmp_path)
        path = cache._path(self.KEY)
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps({"cycles": 145, "schema_version": SCHEMA_VERSION - 1})
        )
        assert cache.get(self.KEY) is None
        # The entry is well-formed, just old: no quarantine, and a
        # fresh put overwrites it in place.
        assert cache.quarantined == 0
        assert path.exists()

    def test_counter_accumulates_across_entries(self, tmp_path):
        from repro.faults import CacheCorruptor

        cache = ResultCache(tmp_path)
        corruptor = CacheCorruptor(cache)
        keys = ["aa" + "0" * 62, "bb" + "0" * 62]
        corruptor.torn_entry(keys[0])
        corruptor.garbage_entry(keys[1])
        for key in keys:
            cache.get(key)
        assert cache.quarantined == 2


def _hammer_cache(root, seed):
    """One stress worker: interleaved put/get rounds over shared keys.

    Runs in a child process; any assertion failure surfaces as a
    nonzero exit code in the parent's join."""
    cache = ResultCache(root)
    keys = [f"{index:02x}" + "0" * 62 for index in range(8)]
    for round_number in range(40):
        for key in keys:
            cache.put(key, {"cycles": seed * 1000 + round_number})
            document = cache.get(key)
            assert document is not None, "own write must be visible"
            assert isinstance(document["cycles"], int)
            assert document["cycles"] >= 0


class TestConcurrentWriters:
    def test_multiprocess_stress_leaves_only_valid_entries(self, tmp_path):
        """Many processes hammering the same keys: every read returns a
        complete document (atomic replace — no torn reads), and the
        directory afterwards holds exactly the entry files, all valid,
        with no orphaned temp files."""
        import multiprocessing

        from repro.engine.cache import SCHEMA_VERSION

        context = multiprocessing.get_context("fork")
        workers = [
            context.Process(target=_hammer_cache, args=(tmp_path, seed))
            for seed in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0

        cache = ResultCache(tmp_path)
        assert len(cache) == 8
        for entry in cache.root.glob("*/*.json"):
            document = json.loads(entry.read_text(encoding="utf-8"))
            assert document["schema_version"] == SCHEMA_VERSION
            assert isinstance(document["cycles"], int)
        assert list(tmp_path.glob("*/.tmp-*")) == []
        assert cache.quarantined == 0

"""Engine execution semantics: ordering, parallel parity, caching,
coalescing, and the metrics/hooks surface."""

import pytest

from repro.engine import (
    EngineHooks,
    ExperimentEngine,
    ExperimentPoint,
    KernelTraceSpec,
    execute_point,
)
from repro.experiments.grid import run_grid


def _points():
    return [
        ExperimentPoint(
            system=system,
            trace=KernelTraceSpec(
                kernel=kernel, stride=stride, elements=128
            ),
        )
        for kernel in ("copy", "scale")
        for stride in (1, 19)
        for system in ("pva-sdram", "cacheline-serial")
    ]


class Recorder(EngineHooks):
    def __init__(self):
        self.outcomes = []
        self.batches = []

    def point_done(self, outcome, metrics):
        self.outcomes.append(outcome)

    def batch_complete(self, metrics):
        self.batches.append(metrics.summary())


def test_results_in_submission_order():
    points = _points()
    engine = ExperimentEngine(jobs=1)
    results = engine.run(points)
    assert results == [execute_point(point) for point in points]


def test_parallel_matches_serial():
    points = _points()
    serial = ExperimentEngine(jobs=1).run(points)
    parallel = ExperimentEngine(jobs=3).run(points)
    assert parallel == serial


def test_grid_results_identical_across_job_counts(tmp_path):
    kwargs = dict(
        kernels=("copy", "swap"),
        strides=(1, 4),
        elements=128,
    )
    serial = run_grid(engine=ExperimentEngine(jobs=1), **kwargs)
    parallel = run_grid(
        engine=ExperimentEngine(jobs=4, cache_dir=tmp_path), **kwargs
    )
    assert parallel == serial


def test_cache_warm_run_skips_simulation(tmp_path):
    points = _points()
    cold = ExperimentEngine(jobs=1, cache_dir=tmp_path)
    cold_results = cold.run(points)
    assert cold.metrics.cache_hits == 0
    assert cold.metrics.simulated > 0

    warm = ExperimentEngine(jobs=1, cache_dir=tmp_path)
    warm_results = warm.run(points)
    assert warm_results == cold_results
    assert warm.metrics.simulated == 0
    assert warm.metrics.cache_hit_rate == 1.0


def test_params_change_invalidates_cache(tmp_path):
    from repro.params import SDRAMTiming, SystemParams

    spec = KernelTraceSpec(kernel="copy", stride=1, elements=128)
    base = ExperimentPoint(system="pva-sdram", trace=spec)
    slower = ExperimentPoint(
        system="pva-sdram",
        trace=spec,
        params=SystemParams(sdram=SDRAMTiming(cas_latency=3)),
    )
    engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
    engine.run_one(base)
    engine.run_one(slower)
    # Distinct content addresses: the second run must simulate, not hit.
    assert engine.key_of(base) != engine.key_of(slower)
    assert engine.metrics.cache_hits == 0
    assert engine.metrics.simulated == 2


def test_salt_change_invalidates_cache(tmp_path):
    point = _points()[0]
    a = ExperimentEngine(jobs=1, cache_dir=tmp_path, salt="v1")
    a.run_one(point)
    b = ExperimentEngine(jobs=1, cache_dir=tmp_path, salt="v2")
    b.run_one(point)
    assert b.metrics.cache_hits == 0
    assert a.key_of(point) != b.key_of(point)


def test_in_batch_coalescing():
    point = _points()[0]
    recorder = Recorder()
    engine = ExperimentEngine(jobs=1, hooks=recorder)
    results = engine.run([point, point, point])
    assert len(set(results)) == 1
    assert engine.metrics.simulated == 1
    assert engine.metrics.coalesced == 2
    assert [o.coalesced for o in sorted(recorder.outcomes, key=lambda o: o.index)] == [
        False,
        True,
        True,
    ]


def test_hooks_receive_every_point_and_metrics(tmp_path):
    points = _points()
    recorder = Recorder()
    engine = ExperimentEngine(jobs=2, cache_dir=tmp_path, hooks=recorder)
    engine.run(points)
    assert sorted(o.index for o in recorder.outcomes) == list(
        range(len(points))
    )
    assert all(o.cycles > 0 for o in recorder.outcomes)
    assert len(recorder.batches) == 1
    summary = recorder.batches[0]
    assert summary["points"] == len(points)
    assert summary["jobs"] == 2
    assert summary["points_per_second"] > 0

    # Second batch on the same engine: metrics accumulate, hits now 100%.
    engine.run(points)
    assert recorder.batches[-1]["points"] == 2 * len(points)
    assert all(o.cached for o in recorder.outcomes[len(points) :])


def test_unknown_kernel_raises():
    from repro.errors import ConfigurationError

    bogus = ExperimentPoint(
        system="pva-sdram",
        trace=KernelTraceSpec(kernel="nope", stride=1, elements=64),
    )
    with pytest.raises(ConfigurationError):
        ExperimentEngine(jobs=1).run_one(bogus)


class TestSimThroughputMetrics:
    """Per-point simulated cycles + host seconds (cycles/sec) metrics."""

    def test_execute_point_timed_matches_untimed(self):
        from repro.engine import execute_point_timed

        point = _points()[0]
        cycles, seconds, attribution = execute_point_timed(point)
        assert cycles == execute_point(point)
        assert seconds > 0
        # The attribution ledger rides along and sums to the cycle count.
        assert attribution
        for buckets in attribution.values():
            assert (
                buckets["busy"] + buckets["stalled"] + buckets["idle"]
                == cycles
            )

    def test_metrics_aggregate_component_cycles(self):
        points = _points()
        recorder = Recorder()
        engine = ExperimentEngine(jobs=1, hooks=recorder)
        engine.run(points)
        component_cycles = engine.metrics.component_cycles
        # Both system families contribute their own components.
        assert "front-end" in component_cycles
        assert "serial-engine" in component_cycles
        # The totals are exactly the fold of the unique executions'
        # per-point ledgers.
        expected = {}
        for outcome in recorder.outcomes:
            if outcome.cached or outcome.coalesced or not outcome.attribution:
                continue
            for name, buckets in outcome.attribution.items():
                entry = expected.setdefault(
                    name, {"busy": 0, "stalled": 0, "idle": 0}
                )
                for bucket in entry:
                    entry[bucket] += buckets[bucket]
        assert component_cycles == expected
        assert (
            engine.metrics.summary()["component_cycles"] == component_cycles
        )

    def test_metrics_accumulate_cycles_and_seconds(self):
        points = _points()
        engine = ExperimentEngine(jobs=1)
        results = engine.run(points)
        assert engine.metrics.simulated_cycles == sum(results)
        assert engine.metrics.sim_seconds > 0
        assert engine.metrics.sim_cycles_per_second > 0
        summary = engine.metrics.summary()
        assert summary["simulated_cycles"] == sum(results)
        assert summary["sim_cycles_per_second"] > 0

    def test_outcomes_carry_sim_seconds(self):
        recorder = Recorder()
        engine = ExperimentEngine(jobs=1, hooks=recorder)
        engine.run(_points())
        assert recorder.outcomes
        assert all(
            outcome.sim_seconds is not None and outcome.sim_seconds >= 0
            for outcome in recorder.outcomes
        )

    def test_cached_documents_record_producing_sim_mode(self, tmp_path):
        import json

        points = _points()[:2]
        ExperimentEngine(jobs=1, cache_dir=tmp_path).run(points)
        documents = [
            json.loads(path.read_text())
            for path in tmp_path.rglob("*.json")
        ]
        assert documents
        assert all(
            document.get("sim_mode") == points[0].params.sim_mode
            for document in documents
        )

    def test_cache_hits_cost_no_sim_time(self, tmp_path):
        points = _points()
        ExperimentEngine(jobs=1, cache_dir=tmp_path).run(points)
        recorder = Recorder()
        warm = ExperimentEngine(jobs=1, cache_dir=tmp_path, hooks=recorder)
        warm.run(points)
        assert warm.metrics.sim_seconds == 0.0
        assert warm.metrics.simulated_cycles == 0
        # ... but the stored execution time is surfaced per outcome.
        assert all(outcome.cached for outcome in recorder.outcomes)
        assert all(
            outcome.sim_seconds is not None for outcome in recorder.outcomes
        )

    def test_pool_reports_seconds_too(self):
        engine = ExperimentEngine(jobs=2)
        results = engine.run(_points())
        assert engine.metrics.simulated_cycles == sum(results)
        assert engine.metrics.sim_seconds > 0

"""The repro.api facade: registry, simulate(), and removed-shim errors."""

import warnings

import pytest

import repro
from repro.api import (
    available_systems,
    build_system,
    register_system,
    simulate,
    system_entry,
)
from repro.errors import ConfigurationError, ReproError
from repro.kernels import build_trace, kernel_by_name
from repro.params import SystemParams


def _trace(params, stride=1, elements=64):
    return build_trace(
        kernel_by_name("copy"), stride=stride, params=params, elements=elements
    )


def test_registry_lists_all_four_systems():
    names = available_systems()
    assert set(names) >= {
        "pva-sdram",
        "pva-sram",
        "cacheline-serial",
        "gathering-serial",
    }


def test_unknown_system_raises_configuration_error():
    with pytest.raises(ConfigurationError) as excinfo:
        build_system("no-such-system")
    # The error names the valid choices.
    assert "pva-sdram" in str(excinfo.value)
    with pytest.raises(ConfigurationError):
        system_entry("no-such-system")
    with pytest.raises(ConfigurationError):
        simulate([], system="no-such-system")


def test_simulate_matches_direct_construction():
    from repro.pva import PVAMemorySystem

    params = SystemParams()
    trace = _trace(params)
    result = simulate(trace, params)
    assert result.cycles == PVAMemorySystem(params).run(trace).cycles


def test_simulate_selects_system_by_name():
    params = SystemParams()
    trace = _trace(params, stride=19)
    pva = simulate(trace, params, system="pva-sdram").cycles
    serial = simulate(trace, params, system="cacheline-serial").cycles
    assert serial > pva


def test_simulate_keyword_only_options():
    with pytest.raises(TypeError):
        simulate([], SystemParams(), "pva-sdram")  # system must be keyword


def test_simulate_uses_fresh_instance_per_call():
    params = SystemParams()
    trace = _trace(params)
    assert simulate(trace, params).cycles == simulate(trace, params).cycles


def test_register_system_requires_overwrite_to_replace():
    with pytest.raises(ConfigurationError):
        register_system(
            "pva-sdram", lambda params: None, description="dup"
        )


def test_registry_entry_carries_alignment_flag():
    assert system_entry("cacheline-serial").alignment_free
    assert not system_entry("pva-sdram").alignment_free


def test_top_level_reexports():
    assert repro.simulate is simulate
    assert repro.build_system is build_system
    assert repro.available_systems is available_systems


@pytest.mark.parametrize(
    "name",
    [
        "PVAMemorySystem",
        "CacheLineSerialSDRAM",
        "GatheringSerialSDRAM",
        "make_pva_sram",
    ],
)
def test_removed_constructor_shims_raise(name):
    with pytest.raises(ReproError) as excinfo:
        getattr(repro, name)
    # The error points at the facade replacement.
    assert "build_system" in str(excinfo.value)
    assert name not in repro.__all__


def test_unknown_top_level_name_still_attribute_error():
    with pytest.raises(AttributeError):
        repro.definitely_not_a_name


def test_removed_grid_systems_mapping_raises():
    import repro.experiments.grid as grid_module

    with pytest.raises(ReproError) as excinfo:
        grid_module.SYSTEMS
    assert "available_systems" in str(excinfo.value)


def test_home_module_imports_stay_warning_free():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        from repro.baselines import CacheLineSerialSDRAM  # noqa: F401
        from repro.pva import PVAMemorySystem  # noqa: F401

"""The engine's resilience layer under injected faults.

The containment tests drive real multiprocess batches through the
deterministic injectors in :mod:`repro.faults` and assert the ISSUE's
acceptance criteria: healthy points come back correct (and identical to
an inline run), exactly the injected failures are reported, and every
batch finishes inside an explicit wall-clock bound — no deadlocks.
"""

import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.engine import (
    BatchResult,
    ExperimentEngine,
    ExperimentPoint,
    KernelTraceSpec,
    PointFailure,
    RetryPolicy,
)
from repro.errors import (
    ConfigurationError,
    IncompleteBatchError,
    PointFailedError,
    ReproError,
)
from repro.faults import (
    InjectedFault,
    install_fault_systems,
    uninstall_fault_systems,
)

#: Generous outer bound for any containment batch in this file.  The
#: batches themselves use a 3 s per-point timeout; a run that needs
#: anywhere near this long has deadlocked.
WALL_CLOCK_BOUND = 90.0

POINT_TIMEOUT = 3.0


def _point(system, stride=1, kernel="copy", elements=64):
    return ExperimentPoint(
        system=system,
        trace=KernelTraceSpec(kernel=kernel, stride=stride, elements=elements),
    )


def _healthy_points():
    return [
        _point("pva-sdram", stride=1),
        _point("pva-sdram", stride=19, kernel="scale"),
        _point("cacheline-serial", stride=4),
        _point("gathering-serial", stride=1, kernel="scale"),
    ]


@pytest.fixture
def faults(tmp_path):
    names = install_fault_systems(state_dir=tmp_path / "state")
    yield names
    uninstall_fault_systems()


class TestContainment:
    """The ISSUE's acceptance scenario: one raising point, one
    watchdog-tripping point, one killed worker, in one pool batch."""

    def test_faulty_batch_is_contained(self, faults):
        healthy = _healthy_points()
        faulty = [
            _point(faults["raising"]),
            _point(faults["burner"]),
            _point(faults["killer-once"]),
        ]
        # Interleave so faults land mid-stream, not at the tail.
        points = [
            healthy[0],
            faulty[0],
            healthy[1],
            faulty[1],
            healthy[2],
            faulty[2],
            healthy[3],
        ]
        faulty_indices = (1, 3, 5)

        reference = ExperimentEngine(jobs=1).run(healthy)

        started = time.monotonic()
        engine = ExperimentEngine(
            jobs=4,
            on_error="collect",
            timeout=POINT_TIMEOUT,
            degrade_after=99,  # never rerun the killer inline
        )
        batch = engine.run(points)
        elapsed = time.monotonic() - started
        assert elapsed < WALL_CLOCK_BOUND, "containment batch deadlocked"

        # Healthy points: correct cycles, identical to the inline run.
        assert isinstance(batch, BatchResult)
        assert not batch.ok
        healthy_cycles = [
            cycles
            for index, cycles in enumerate(batch)
            if index not in faulty_indices
        ]
        assert healthy_cycles == reference

        # Exactly the injected failures, nothing else.
        assert batch.failed_indices == faulty_indices
        by_index = {failure.index: failure for failure in batch.failures}
        assert by_index[1].kind == "exception"
        assert by_index[1].error_type == "InjectedFault"
        assert by_index[3].kind == "exception"
        assert by_index[3].error_type == "SimulationTimeout"
        assert by_index[5].kind == "timeout"  # killed worker never reports
        assert engine.metrics.failures == 3
        assert engine.metrics.timeouts >= 1

        with pytest.raises(PointFailedError):
            batch.raise_if_failed()

    def test_collect_mode_parity_across_job_counts(self, faults):
        """jobs=1 and jobs=4 produce the same cycles and the same
        failure indices/kinds for a batch with raise/burn faults (the
        killer is pool-only: inline it would take down the test run)."""
        points = [
            _point("pva-sdram", stride=1),
            _point(faults["raising"]),
            _point("cacheline-serial", stride=4),
            _point(faults["burner"]),
            _point("pva-sdram", stride=19),
        ]

        def run(jobs):
            engine = ExperimentEngine(
                jobs=jobs,
                on_error="collect",
                timeout=POINT_TIMEOUT,
                degrade_after=99,
            )
            return engine.run(points)

        started = time.monotonic()
        inline, pooled = run(1), run(4)
        assert time.monotonic() - started < WALL_CLOCK_BOUND

        assert list(pooled) == list(inline)
        assert pooled.failed_indices == inline.failed_indices == (1, 3)
        kinds = lambda batch: [
            (f.kind, f.error_type) for f in batch.failures
        ]
        assert kinds(pooled) == kinds(inline)


class TestRetry:
    def test_transient_fault_absorbed_by_one_retry(self, faults):
        """A fail-once fault retried once is invisible to the caller."""
        points = [_point(faults["transient"]), _point("pva-sdram")]
        engine = ExperimentEngine(
            jobs=2,
            on_error="collect",
            retry=RetryPolicy(retries=1, backoff_seconds=0.01),
            timeout=POINT_TIMEOUT,
            degrade_after=99,
        )
        started = time.monotonic()
        batch = engine.run(points)
        assert time.monotonic() - started < WALL_CLOCK_BOUND
        assert batch.ok
        # the healed attempt delegates to pva-sdram, so both points agree
        assert batch[0] == batch[1]
        assert engine.metrics.retries == 1
        assert engine.metrics.failures == 0

    def test_transient_fault_absorbed_inline(self, faults):
        engine = ExperimentEngine(jobs=1, retry=1, on_error="collect")
        batch = engine.run([_point(faults["transient"])])
        assert batch.ok
        assert engine.metrics.retries == 1

    def test_retries_exhausted_still_fails(self, faults):
        engine = ExperimentEngine(jobs=1, retry=2, on_error="collect")
        batch = engine.run([_point(faults["raising"])])
        assert not batch.ok
        assert batch.failures[0].attempts == 3
        assert engine.metrics.retries == 2


class TestDegradation:
    def test_pool_degrades_to_inline_and_recovers(self, faults):
        """A worker killed mid-batch with degrade_after=1 abandons the
        pool; the killer-once marker is already claimed, so the inline
        rerun heals and the whole batch succeeds."""
        points = [_point(faults["killer-once"]), _point("pva-sdram")]
        engine = ExperimentEngine(
            jobs=2,
            on_error="collect",
            retry=RetryPolicy(retries=1, retry_timeouts=True),
            timeout=POINT_TIMEOUT,
            degrade_after=1,
        )
        started = time.monotonic()
        batch = engine.run(points)
        assert time.monotonic() - started < WALL_CLOCK_BOUND
        assert batch.ok
        assert engine.metrics.timeouts == 1
        assert engine.metrics.degraded >= 1


class TestRaiseMode:
    def test_inline_raise_propagates_original_exception(self, faults):
        engine = ExperimentEngine(jobs=1)
        with pytest.raises(InjectedFault):
            engine.run([_point(faults["raising"])])

    def test_pool_raise_propagates_original_exception(self, faults):
        engine = ExperimentEngine(jobs=2, timeout=POINT_TIMEOUT)
        points = [_point("pva-sdram"), _point(faults["raising"])]
        with pytest.raises(InjectedFault):
            engine.run(points)

    def test_timeout_raises_point_failed_error(self, faults):
        """A killed worker has no exception object to re-raise, so raise
        mode surfaces the timeout as PointFailedError."""
        engine = ExperimentEngine(
            jobs=2, timeout=POINT_TIMEOUT, degrade_after=99
        )
        points = [_point("pva-sdram"), _point(faults["killer-once"])]
        started = time.monotonic()
        with pytest.raises(PointFailedError):
            engine.run(points)
        assert time.monotonic() - started < WALL_CLOCK_BOUND


class TestRetryPolicy:
    def test_delay_is_exponential_and_capped(self):
        policy = RetryPolicy(
            retries=5,
            backoff_seconds=1.0,
            backoff_factor=2.0,
            max_backoff_seconds=3.0,
        )
        assert policy.delay(1) == 1.0
        assert policy.delay(2) == 2.0
        assert policy.delay(3) == 3.0  # capped
        assert policy.delay(4) == 3.0

    def test_zero_backoff_is_free(self):
        assert RetryPolicy(retries=2).delay(1) == 0.0

    def test_should_retry_counts_attempts(self):
        policy = RetryPolicy(retries=1)
        assert policy.should_retry(1)
        assert not policy.should_retry(2)

    def test_timeouts_can_be_excluded(self):
        policy = RetryPolicy(retries=3, retry_timeouts=False)
        assert policy.should_retry(1)
        assert not policy.should_retry(1, timeout=True)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(retries=-1),
            dict(backoff_seconds=-0.1),
            dict(max_backoff_seconds=-1),
            dict(backoff_factor=0.5),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestJitter:
    """Full-jitter backoff: bounded by the exponential cap, varied
    across draws, and off by default so batches stay reproducible."""

    def _policy(self):
        return RetryPolicy(
            retries=5,
            backoff_seconds=1.0,
            backoff_factor=2.0,
            max_backoff_seconds=3.0,
            jitter=True,
        )

    def test_delay_is_within_the_exponential_envelope(self):
        policy = self._policy()
        for retry_number, cap in [(1, 1.0), (2, 2.0), (3, 3.0), (4, 3.0)]:
            for _ in range(200):
                delay = policy.delay(retry_number)
                assert 0.0 <= delay <= cap

    def test_draws_vary(self):
        import random

        random.seed(0xC0FFEE)
        policy = self._policy()
        draws = {policy.delay(3) for _ in range(32)}
        assert len(draws) > 1  # full jitter, not a constant

    def test_zero_backoff_stays_free_with_jitter(self):
        assert RetryPolicy(retries=2, jitter=True).delay(1) == 0.0

    def test_default_policy_is_deterministic(self):
        policy = RetryPolicy(retries=3, backoff_seconds=0.5)
        assert policy.jitter is False
        assert policy.delay(2) == policy.delay(2) == 1.0


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def _breaker(self, threshold=3, cooldown=30.0):
        from repro.engine import CircuitBreaker

        clock = _FakeClock()
        return (
            CircuitBreaker(
                threshold=threshold,
                cooldown_seconds=cooldown,
                clock=clock,
            ),
            clock,
        )

    def test_starts_closed_and_allows(self):
        breaker, _ = self._breaker()
        assert breaker.state == breaker.CLOSED
        assert breaker.allow()

    def test_opens_at_threshold(self):
        breaker, _ = self._breaker(threshold=3)
        breaker.record_incident()
        breaker.record_incident()
        assert breaker.state == breaker.CLOSED
        breaker.record_incident()
        assert breaker.state == breaker.OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_consecutive_count(self):
        breaker, _ = self._breaker(threshold=2)
        breaker.record_incident()
        breaker.record_success()
        breaker.record_incident()
        assert breaker.state == breaker.CLOSED  # streak was broken

    def test_half_open_grants_exactly_one_probe(self):
        breaker, clock = self._breaker(threshold=1, cooldown=10.0)
        breaker.record_incident()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.state == breaker.HALF_OPEN
        assert breaker.allow()  # the probe slot
        assert not breaker.allow()  # claimed: no second probe

    def test_probe_success_closes(self):
        breaker, clock = self._breaker(threshold=1, cooldown=10.0)
        breaker.record_incident()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == breaker.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_for_a_fresh_cooldown(self):
        breaker, clock = self._breaker(threshold=1, cooldown=10.0)
        breaker.record_incident()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_incident()
        assert breaker.state == breaker.OPEN
        assert breaker.trips == 2
        clock.advance(5.0)
        assert breaker.state == breaker.OPEN  # fresh cooldown, not stale
        clock.advance(5.0)
        assert breaker.state == breaker.HALF_OPEN

    def test_validation(self):
        from repro.engine import CircuitBreaker

        with pytest.raises(ConfigurationError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown_seconds=-1)

    def test_describe_snapshot(self):
        breaker, _ = self._breaker(threshold=2, cooldown=7.0)
        breaker.record_incident()
        snapshot = breaker.describe()
        assert snapshot == {
            "state": "closed",
            "incidents": 1,
            "trips": 0,
            "threshold": 2,
            "cooldown_seconds": 7.0,
        }


class TestEngineConfiguration:
    def test_bad_on_error_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentEngine(on_error="explode")

    def test_bad_timeout_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentEngine(timeout=0)

    def test_int_retry_shorthand(self):
        assert ExperimentEngine(retry=2).retry == RetryPolicy(retries=2)


class TestBatchResult:
    def _failure(self, index):
        return PointFailure(
            index=index,
            point=_point("pva-sdram"),
            error_type="InjectedFault",
            message="boom",
            traceback="",
            attempts=1,
        )

    def test_sequence_semantics(self):
        batch = BatchResult([10, None, 30], [self._failure(1)])
        assert len(batch) == 3
        assert batch[0] == 10 and batch[1] is None
        assert list(batch) == [10, None, 30]
        assert batch == [10, None, 30]  # comparable to a plain list
        assert not batch.ok
        assert batch.failed_indices == (1,)

    def test_ok_batch_raises_nothing(self):
        batch = BatchResult([1, 2, 3])
        assert batch.ok
        batch.raise_if_failed()

    def test_raise_if_failed_summarizes(self):
        batch = BatchResult([None, 2], [self._failure(0)])
        with pytest.raises(PointFailedError, match="1 of 2 points failed"):
            batch.raise_if_failed()

    def test_failures_sorted_by_index(self):
        batch = BatchResult(
            [None, None], [self._failure(1), self._failure(0)]
        )
        assert batch.failed_indices == (0, 1)

    def test_point_failed_error_is_a_repro_error(self):
        with pytest.raises(ReproError):
            BatchResult([None], [self._failure(0)]).raise_if_failed()


class TestIncompleteBatch:
    def test_lost_point_is_an_engine_bug_not_a_hang(self, monkeypatch):
        """If execution drops a point on the floor the engine reports a
        loud IncompleteBatchError instead of returning short results."""
        engine = ExperimentEngine(jobs=1)
        monkeypatch.setattr(
            engine, "_execute", lambda pending, abort=None: iter(())
        )
        with pytest.raises(IncompleteBatchError):
            engine.run([_point("pva-sdram")])


INTERRUPT_SCRIPT = textwrap.dedent(
    """
    import sys, time
    from repro.api import build_system, register_system
    from repro.engine import ExperimentEngine, ExperimentPoint, KernelTraceSpec

    class SlowSystem:
        name = "slow"
        def __init__(self, params):
            self._params = params
        def run(self, commands):
            time.sleep(120)
            raise AssertionError("unreachable")

    register_system("slow-system", SlowSystem, overwrite=True)

    cache_dir = sys.argv[1]
    fast = ExperimentPoint(
        system="pva-sdram",
        trace=KernelTraceSpec(kernel="copy", stride=1, elements=64),
    )
    slow = [
        ExperimentPoint(
            system="slow-system",
            trace=KernelTraceSpec(kernel="copy", stride=s, elements=64),
        )
        for s in (2, 3, 4)
    ]
    engine = ExperimentEngine(jobs=2, cache_dir=cache_dir)
    print("READY", flush=True)
    try:
        engine.run([fast] + slow)
    except KeyboardInterrupt:
        print("INTERRUPTED-CLEANLY", flush=True)
        sys.exit(42)
    print("NOT-INTERRUPTED", flush=True)
    sys.exit(1)
    """
)


class TestKeyboardInterrupt:
    def test_interrupt_flushes_cache_and_reraises_cleanly(self, tmp_path):
        """^C mid-batch: completed results reach the cache, the batch
        re-raises one clean KeyboardInterrupt (no per-worker traceback
        spam), and the process exits promptly."""
        cache_dir = tmp_path / "cache"
        src = Path(__file__).resolve().parents[2] / "src"
        child = subprocess.Popen(
            [sys.executable, "-c", INTERRUPT_SCRIPT, str(cache_dir)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
        try:
            # Wait for the fast point's result to land in the cache,
            # proof the batch is mid-flight with completed work.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if list(cache_dir.glob("*/*.json")):
                    break
                time.sleep(0.05)
            else:
                pytest.fail("fast point never reached the cache")
            child.send_signal(signal.SIGINT)
            stdout, stderr = child.communicate(timeout=30.0)
        finally:
            if child.poll() is None:
                child.kill()
                child.communicate()

        assert child.returncode == 42, (stdout, stderr)
        assert "INTERRUPTED-CLEANLY" in stdout
        assert "Traceback" not in stderr  # workers stayed silent
        assert list(cache_dir.glob("*/*.json"))  # completed work kept

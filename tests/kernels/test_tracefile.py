"""Tests for trace serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import VectorSpecError
from repro.kernels import build_trace, kernel_by_name
from repro.kernels.tracefile import dumps, load, loads, save
from repro.params import SystemParams
from repro.types import AccessType, ExplicitCommand, Vector, VectorCommand
from repro.workloads.random_traces import RandomTraceConfig, random_trace

PROTO = SystemParams()


class TestRoundTrip:
    def test_kernel_trace_round_trips(self):
        trace = build_trace(kernel_by_name("tridiag"), stride=19, elements=128)
        assert loads(dumps(trace)) == trace

    def test_explicit_commands_round_trip(self):
        trace = [
            ExplicitCommand(
                addresses=(5, 99, 3),
                access=AccessType.READ,
                broadcast_cycles=3,
                tag="x",
            ),
            ExplicitCommand(
                addresses=(7,),
                access=AccessType.WRITE,
                broadcast_cycles=2,
                data=(42,),
            ),
        ]
        assert loads(dumps(trace)) == trace

    def test_write_data_preserved(self):
        trace = [
            VectorCommand(
                vector=Vector(base=0, stride=2, length=4),
                access=AccessType.WRITE,
                data=(9, 8, 7, 6),
            )
        ]
        assert loads(dumps(trace))[0].data == (9, 8, 7, 6)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_random_traces_round_trip(self, seed):
        trace = random_trace(
            seed,
            PROTO,
            RandomTraceConfig(
                commands=10, explicit_fraction=0.4, full_lines=False
            ),
        )
        assert loads(dumps(trace)) == trace

    def test_file_round_trip(self, tmp_path):
        trace = build_trace(kernel_by_name("copy"), stride=4, elements=64)
        path = save(trace, tmp_path / "copy.trace.json")
        assert load(path) == trace


class TestValidation:
    def test_invalid_json(self):
        with pytest.raises(VectorSpecError):
            loads("{not json")

    def test_missing_commands_key(self):
        with pytest.raises(VectorSpecError):
            loads('{"version": 1}')

    def test_unknown_version(self):
        with pytest.raises(VectorSpecError):
            loads('{"version": 99, "commands": []}')

    def test_unknown_kind(self):
        with pytest.raises(VectorSpecError):
            loads(
                '{"version": 1, "commands": [{"kind": "magic", '
                '"access": "read"}]}'
            )

    def test_missing_vector_fields(self):
        with pytest.raises(VectorSpecError):
            loads(
                '{"version": 1, "commands": [{"kind": "vector", '
                '"access": "read", "base": 0}]}'
            )

    def test_invalid_access(self):
        with pytest.raises(VectorSpecError):
            loads(
                '{"version": 1, "commands": [{"kind": "vector", '
                '"access": "modify", "base": 0, "stride": 1, "length": 1}]}'
            )

    def test_invalid_vector_values_rejected(self):
        """Field validation flows through the Vector constructor."""
        with pytest.raises(VectorSpecError):
            loads(
                '{"version": 1, "commands": [{"kind": "vector", '
                '"access": "read", "base": -1, "stride": 1, "length": 1}]}'
            )


class TestReplay:
    def test_saved_trace_replays_identically(self, tmp_path):
        from repro.pva.system import PVAMemorySystem

        trace = build_trace(kernel_by_name("swap"), stride=8, elements=128)
        path = save(trace, tmp_path / "swap.json")
        original = PVAMemorySystem(PROTO).run(trace).cycles
        replayed = PVAMemorySystem(PROTO).run(load(path)).cycles
        assert original == replayed

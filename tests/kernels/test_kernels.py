"""Tests for the Table 2 kernel definitions."""

import pytest

from repro.errors import ConfigurationError
from repro.kernels.kernels import KERNELS, ArrayAccess, Kernel, kernel_by_name
from repro.types import AccessType


class TestTable2:
    def test_all_eight_patterns_present(self):
        assert set(KERNELS) == {
            "copy",
            "copy2",
            "saxpy",
            "scale",
            "scale2",
            "swap",
            "tridiag",
            "vaxpy",
        }

    def test_copy_pattern(self):
        k = kernel_by_name("copy")
        assert [(a.array, a.access) for a in k.pattern] == [
            ("x", AccessType.READ),
            ("y", AccessType.WRITE),
        ]
        assert k.unroll == 1

    def test_saxpy_reads_y_before_writing(self):
        k = kernel_by_name("saxpy")
        assert [(a.array, a.access) for a in k.pattern] == [
            ("x", AccessType.READ),
            ("y", AccessType.READ),
            ("y", AccessType.WRITE),
        ]

    def test_scale_read_modify_write(self):
        k = kernel_by_name("scale")
        assert k.arrays == ("x",)
        assert k.reads_per_block == 1
        assert k.writes_per_block == 1

    def test_swap_touches_both_arrays_both_ways(self):
        k = kernel_by_name("swap")
        assert k.reads_per_block == 2
        assert k.writes_per_block == 2

    def test_tridiag_has_shifted_x_read(self):
        """x[i-1] appears as a read at element offset -1 (Livermore 5)."""
        k = kernel_by_name("tridiag")
        offsets = {
            (a.array, a.access): a.offset_elements for a in k.pattern
        }
        assert offsets[("x", AccessType.READ)] == -1
        assert offsets[("x", AccessType.WRITE)] == 0
        assert k.arrays == ("x", "y", "z")

    def test_vaxpy_three_reads_one_write(self):
        k = kernel_by_name("vaxpy")
        assert k.reads_per_block == 3
        assert k.writes_per_block == 1

    def test_unrolled_variants(self):
        assert kernel_by_name("copy2").unroll == 2
        assert kernel_by_name("scale2").unroll == 2

    def test_unknown_kernel(self):
        with pytest.raises(ConfigurationError):
            kernel_by_name("fft")


class TestKernelValidation:
    def test_pattern_array_must_be_declared(self):
        with pytest.raises(ConfigurationError):
            Kernel(
                name="bad",
                arrays=("x",),
                pattern=(ArrayAccess("z", AccessType.READ),),
            )

    def test_unroll_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Kernel(
                name="bad",
                arrays=("x",),
                pattern=(ArrayAccess("x", AccessType.READ),),
                unroll=0,
            )

    def test_commands_per_block(self):
        assert kernel_by_name("tridiag").commands_per_block == 4

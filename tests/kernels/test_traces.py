"""Tests for trace generation: chunking, program order, alignments."""

import pytest

from repro.errors import ConfigurationError
from repro.kernels.kernels import kernel_by_name
from repro.kernels.traces import ALIGNMENTS, array_bases, build_trace
from repro.params import SystemParams
from repro.types import AccessType

PARAMS = SystemParams()


def alignment(name):
    for a in ALIGNMENTS:
        if a.name == name:
            return a
    raise KeyError(name)


class TestTraceStructure:
    def test_command_count(self):
        """1024 elements = 32 blocks; copy issues 2 commands per block."""
        trace = build_trace(kernel_by_name("copy"), stride=1, params=PARAMS)
        assert len(trace) == 64

    def test_commands_are_line_sized(self):
        trace = build_trace(kernel_by_name("vaxpy"), stride=4, params=PARAMS)
        assert all(c.vector.length == 32 for c in trace)

    def test_program_order_per_block(self):
        trace = build_trace(kernel_by_name("saxpy"), stride=1, params=PARAMS)
        block0 = trace[:3]
        assert [c.access for c in block0] == [
            AccessType.READ,
            AccessType.READ,
            AccessType.WRITE,
        ]

    def test_blocks_advance_through_array(self):
        trace = build_trace(kernel_by_name("scale"), stride=2, params=PARAMS)
        reads = [c for c in trace if c.access is AccessType.READ]
        assert reads[1].vector.base - reads[0].vector.base == 32 * 2

    def test_unrolled_grouping(self):
        """copy2 groups two consecutive commands per vector: the PVA sees
        read x(b), read x(b+1), write y(b), write y(b+1)."""
        trace = build_trace(kernel_by_name("copy2"), stride=1, params=PARAMS)
        group = trace[:4]
        assert [c.access for c in group] == [
            AccessType.READ,
            AccessType.READ,
            AccessType.WRITE,
            AccessType.WRITE,
        ]
        assert group[1].vector.base - group[0].vector.base == 32
        assert group[3].vector.base - group[2].vector.base == 32

    def test_tridiag_shifted_read(self):
        trace = build_trace(kernel_by_name("tridiag"), stride=3, params=PARAMS)
        block0 = trace[:4]
        x_read = block0[2]
        x_write = block0[3]
        assert x_write.vector.base - x_read.vector.base == 3  # one stride

    def test_rejects_non_multiple_elements(self):
        with pytest.raises(ConfigurationError):
            build_trace(
                kernel_by_name("copy"), stride=1, params=PARAMS, elements=100
            )

    def test_rejects_bad_stride(self):
        with pytest.raises(ConfigurationError):
            build_trace(kernel_by_name("copy"), stride=0, params=PARAMS)

    def test_tags_identify_commands(self):
        trace = build_trace(kernel_by_name("copy"), stride=1, params=PARAMS)
        assert trace[0].tag == "copy.x.read[0]"
        assert trace[-1].tag == "copy.y.write[31]"


class TestAlignments:
    def test_five_alignments(self):
        assert len(ALIGNMENTS) == 5
        assert len({a.name for a in ALIGNMENTS}) == 5

    def test_aligned_bases_congruent(self):
        """With the 'aligned' setting, all arrays start on the same bank,
        internal bank and row offset."""
        bases = array_bases(
            kernel_by_name("vaxpy"), 1, 1024, PARAMS, alignment("aligned")
        )
        period = (
            PARAMS.num_banks
            * PARAMS.sdram.row_words
            * PARAMS.sdram.internal_banks
        )
        values = list(bases.values())
        assert len({b % period for b in values}) == 1

    def test_bank_plus_one_staggers_banks(self):
        bases = array_bases(
            kernel_by_name("vaxpy"), 1, 1024, PARAMS, alignment("bank+1")
        )
        banks = [b % PARAMS.num_banks for b in bases.values()]
        assert banks == [banks[0], banks[0] + 1, banks[0] + 2]

    def test_ibank_plus_one_staggers_internal_banks(self):
        bases = array_bases(
            kernel_by_name("copy"), 1, 1024, PARAMS, alignment("ibank+1")
        )
        x, y = bases["x"], bases["y"]
        assert x % PARAMS.num_banks == y % PARAMS.num_banks  # same bank
        row_seq = lambda b: (b // PARAMS.num_banks) // PARAMS.sdram.row_words
        ib = lambda b: row_seq(b) % PARAMS.sdram.internal_banks
        assert (ib(y) - ib(x)) % PARAMS.sdram.internal_banks == 1

    def test_arrays_never_overlap(self):
        for align in ALIGNMENTS:
            for stride in (1, 19):
                bases = array_bases(
                    kernel_by_name("tridiag"), stride, 1024, PARAMS, align
                )
                span = 1024 * stride
                ranges = sorted(
                    (b, b + span) for b in bases.values()
                )
                for (_, end), (start, _) in zip(ranges, ranges[1:]):
                    assert end <= start, (align.name, stride, ranges)

    def test_all_addresses_nonnegative(self):
        """tridiag's x[i-1] offset must stay inside the lead pad."""
        for align in ALIGNMENTS:
            trace = build_trace(
                kernel_by_name("tridiag"),
                stride=19,
                params=PARAMS,
                alignment=align,
            )
            assert all(c.vector.base >= 0 for c in trace)

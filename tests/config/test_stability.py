"""Cross-release stability of the canonical configuration identity.

``config_key()`` addresses the engine's on-disk result cache and links
service-journal/bench documents across processes, so the prototype's
key is pinned here verbatim: it may only change together with a
deliberate ``CONFIG_SCHEMA_VERSION`` bump (which is what retires stale
caches), never by accident.
"""

from repro.config import CONFIG_SCHEMA_VERSION, ENV_SIM_MODE
from repro.engine.spec import CACHE_SCHEMA_VERSION
from repro.params import SystemParams

#: sha256 of the prototype's canonical sorted-key JSON document under
#: schema version 5.
PROTOTYPE_CONFIG_KEY = (
    "579fd57ba0f724f281d1ac21661858bfbf17de785170020ee63dd680562cccff"
)


def test_prototype_config_key_is_pinned(monkeypatch):
    monkeypatch.delenv(ENV_SIM_MODE, raising=False)
    assert SystemParams().config_key() == PROTOTYPE_CONFIG_KEY


def test_schema_version_is_five(monkeypatch):
    monkeypatch.delenv(ENV_SIM_MODE, raising=False)
    assert CONFIG_SCHEMA_VERSION == 5
    assert SystemParams().to_dict()["schema_version"] == 5


def test_engine_cache_schema_tracks_config_schema():
    assert CACHE_SCHEMA_VERSION == CONFIG_SCHEMA_VERSION


def test_document_shape_is_nested_and_sorted(monkeypatch):
    monkeypatch.delenv(ENV_SIM_MODE, raising=False)
    doc = SystemParams().to_dict()
    assert set(doc) == {
        "schema_version",
        "topology",
        "sdram",
        "sram",
        "cache_line_words",
        "max_transactions",
        "num_vector_contexts",
        "request_fifo_depth",
        "fhc_latency",
        "bus_turnaround",
        "bypass_paths",
        "row_policy",
        "issue_interval",
        "sim_mode",
    }
    assert doc["topology"] == {
        "num_channels": 1,
        "ranks_per_channel": 1,
        "banks_per_rank": 16,
    }

"""Property-based contracts for the canonical ``GenParams`` document.

The config layer's whole value is that one frozen, validated object and
its ``to_dict()``/``from_dict()``/``config_key()`` triple identify a
configuration everywhere (engine cache, service journal, bench
reports).  Hypothesis sweeps the valid parameter space and checks the
identities hold on all of it, not just the prototype point.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import (
    GenParams,
    ROW_POLICIES,
    SIM_MODES,
    Topology,
)
from repro.params import SDRAMTiming, SRAMTiming, SystemParams


@st.composite
def system_params(draw):
    """A valid SystemParams drawn from the whole supported space."""
    num_banks = draw(st.sampled_from([1, 2, 4, 8, 16, 32]))
    cache_line_words = draw(st.sampled_from([8, 16, 32, 64]))
    stage_cycles = cache_line_words // 2
    pairs = [
        (c, r)
        for c in (1, 2, 4)
        for r in (1, 2, 4)
        if c * r <= num_banks and c <= stage_cycles
    ]
    num_channels, ranks_per_channel = draw(st.sampled_from(pairs))
    max_transactions = draw(st.integers(min_value=1, max_value=8))
    sdram = SDRAMTiming(
        t_rcd=draw(st.integers(1, 4)),
        cas_latency=draw(st.integers(1, 4)),
        t_rp=draw(st.integers(1, 4)),
        t_wr=draw(st.integers(1, 3)),
        internal_banks=draw(st.sampled_from([1, 2, 4, 8])),
        row_words=draw(st.sampled_from([64, 128, 512])),
        refresh_interval=draw(st.sampled_from([0, 150, 700])),
        t_rfc=draw(st.integers(2, 10)),
    )
    return SystemParams(
        num_banks=num_banks,
        cache_line_words=cache_line_words,
        max_transactions=max_transactions,
        num_vector_contexts=draw(st.integers(1, 8)),
        request_fifo_depth=draw(st.integers(max_transactions, 16)),
        sdram=sdram,
        fhc_latency=draw(st.integers(1, 4)),
        bus_turnaround=draw(st.integers(0, 3)),
        bypass_paths=draw(st.booleans()),
        row_policy=draw(st.sampled_from(ROW_POLICIES)),
        issue_interval=draw(st.sampled_from([0, 17, 256])),
        sim_mode=draw(st.sampled_from(SIM_MODES)),
        num_channels=num_channels,
        ranks_per_channel=ranks_per_channel,
        sram=SRAMTiming(access_cycles=draw(st.integers(1, 3))),
    )


class TestRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(system_params())
    def test_from_dict_to_dict_identity(self, params):
        doc = params.to_dict()
        assert SystemParams.from_dict(doc) == params
        assert GenParams.from_dict(doc) == params.gen
        # Serialization is stable, not merely equal.
        assert SystemParams.from_dict(doc).to_dict() == doc

    @settings(max_examples=120, deadline=None)
    @given(system_params())
    def test_config_key_survives_round_trip(self, params):
        assert SystemParams.from_dict(params.to_dict()).config_key() == (
            params.config_key()
        )
        assert params.gen.config_key() == params.config_key()

    @settings(max_examples=60, deadline=None)
    @given(system_params())
    def test_replace_is_stable(self, params):
        # No-op replace re-validates to the same object; the folded-away
        # alias fields never resurface.
        again = replace(params)
        assert again == params
        assert again.time_skip is None and again.precompute is None
        flipped = replace(
            params, sim_mode="tick" if params.sim_mode != "tick" else "soa"
        )
        assert replace(flipped, sim_mode=params.sim_mode) == params

    @settings(max_examples=60, deadline=None)
    @given(system_params(), system_params())
    def test_config_key_injective_on_documents(self, a, b):
        """Equal keys exactly when the canonical documents are equal."""
        assert (a.config_key() == b.config_key()) == (
            a.to_dict() == b.to_dict()
        )

    @settings(max_examples=60, deadline=None)
    @given(system_params())
    def test_describe_is_a_flat_view_of_the_document(self, params):
        description = params.describe()
        doc = params.to_dict()
        for key, value in doc["topology"].items():
            assert description[key] == value
        for key, value in doc["sdram"].items():
            assert description[key] == value
        assert description["sim_mode"] == doc["sim_mode"]
        assert description["row_policy"] == doc["row_policy"]

    @settings(max_examples=40, deadline=None)
    @given(system_params())
    def test_gen_params_system_params_round_trip(self, params):
        gen = params.gen
        assert GenParams.from_system_params(gen.to_system_params()) == gen
        assert gen.to_system_params() == params


class TestTopologyProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        st.sampled_from([1, 2, 4]),
        st.sampled_from([1, 2, 4]),
        st.sampled_from([1, 2, 4, 8, 16]),
        st.integers(min_value=0, max_value=1 << 16),
    )
    def test_coordinate_split_reconstructs_the_bank(
        self, channels, ranks, banks_per_rank, bank
    ):
        topo = Topology(
            num_channels=channels,
            ranks_per_channel=ranks,
            banks_per_rank=banks_per_rank,
        )
        bank %= topo.total_banks
        rebuilt = (
            (topo.bank_within_rank(bank) << (topo.channel_bits + topo.rank_bits))
            | (topo.rank_of_bank(bank) << topo.channel_bits)
            | topo.channel_of_bank(bank)
        )
        assert rebuilt == bank
        assert 0 <= topo.channel_of_bank(bank) < channels
        assert 0 <= topo.rank_of_bank(bank) < ranks
        assert 0 <= topo.bank_within_rank(bank) < banks_per_rank


class TestPolicyRegistryAgreement:
    def test_row_policies_match_the_simulator_registry(self):
        from repro.pva.rowpolicy import _POLICIES

        assert set(ROW_POLICIES) == set(_POLICIES)


@pytest.mark.parametrize("mode", SIM_MODES)
def test_sim_modes_construct(mode):
    assert SystemParams(sim_mode=mode).sim_mode == mode

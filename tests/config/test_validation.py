"""One rejection test per validation rule of the config layer."""

import pytest

from repro.config import GenParams, SDRAMTiming, SRAMTiming, Topology
from repro.errors import ConfigurationError
from repro.params import SystemParams


class TestTopologyRules:
    def test_channels_must_be_a_power_of_two(self):
        with pytest.raises(ConfigurationError):
            Topology(num_channels=3)

    def test_ranks_must_be_a_power_of_two(self):
        with pytest.raises(ConfigurationError):
            Topology(ranks_per_channel=0)

    def test_banks_per_rank_must_be_a_power_of_two(self):
        with pytest.raises(ConfigurationError):
            Topology(banks_per_rank=12)

    def test_channel_rank_bits_must_fit_the_bank_bits(self):
        # 32 channel/rank ways over 16 total banks: the select bits
        # overlap — SystemParams rejects before building a Topology.
        with pytest.raises(ConfigurationError):
            SystemParams(num_banks=16, num_channels=32)
        with pytest.raises(ConfigurationError):
            SystemParams(num_banks=16, num_channels=4, ranks_per_channel=8)

    def test_channels_cannot_outnumber_stage_cycles(self):
        with pytest.raises(ConfigurationError):
            SystemParams(cache_line_words=8, num_banks=8, num_channels=8)


class TestGenParamsRules:
    def test_banks_power_of_two(self):
        with pytest.raises(ConfigurationError):
            SystemParams(num_banks=12)

    def test_line_words_power_of_two(self):
        with pytest.raises(ConfigurationError):
            SystemParams(cache_line_words=33)

    def test_transaction_id_field_width(self):
        with pytest.raises(ConfigurationError):
            SystemParams(max_transactions=0)
        with pytest.raises(ConfigurationError):
            SystemParams(max_transactions=9)

    def test_contexts_positive(self):
        with pytest.raises(ConfigurationError):
            SystemParams(num_vector_contexts=0)

    def test_fifo_holds_all_outstanding_transactions(self):
        with pytest.raises(ConfigurationError):
            SystemParams(request_fifo_depth=4, max_transactions=8)

    def test_fhc_latency_positive(self):
        with pytest.raises(ConfigurationError):
            SystemParams(fhc_latency=0)

    def test_bus_turnaround_non_negative(self):
        with pytest.raises(ConfigurationError):
            SystemParams(bus_turnaround=-1)

    def test_issue_interval_non_negative(self):
        with pytest.raises(ConfigurationError):
            SystemParams(issue_interval=-1)

    def test_row_policy_membership(self):
        with pytest.raises(ConfigurationError):
            SystemParams(row_policy="mru")

    def test_bypass_paths_must_be_bool(self):
        with pytest.raises(ConfigurationError):
            GenParams(bypass_paths="yes")

    def test_sim_mode_membership(self):
        with pytest.raises(ConfigurationError):
            SystemParams(sim_mode="warp")


class TestDeviceTimingRules:
    def test_sdram_rules(self):
        for bad in (
            dict(t_rcd=0),
            dict(cas_latency=0),
            dict(t_rp=0),
            dict(t_wr=-1),
            dict(internal_banks=3),
            dict(row_words=500),
            dict(refresh_interval=-1),
            dict(t_rfc=0),
        ):
            with pytest.raises(ConfigurationError):
                SDRAMTiming(**bad)

    def test_sram_rules(self):
        with pytest.raises(ConfigurationError):
            SRAMTiming(access_cycles=0)


class TestDocumentRules:
    def test_unknown_top_level_key_rejected(self):
        doc = SystemParams().to_dict()
        doc["turbo"] = True
        with pytest.raises(ConfigurationError):
            SystemParams.from_dict(doc)

    def test_unknown_nested_key_rejected(self):
        doc = SystemParams().to_dict()
        doc["sdram"]["t_magic"] = 1
        with pytest.raises(ConfigurationError):
            SystemParams.from_dict(doc)
        doc = SystemParams().to_dict()
        doc["topology"]["num_dimms"] = 2
        with pytest.raises(ConfigurationError):
            SystemParams.from_dict(doc)

    def test_schema_version_mismatch_rejected(self):
        doc = SystemParams().to_dict()
        doc["schema_version"] = 3
        with pytest.raises(ConfigurationError):
            SystemParams.from_dict(doc)

    def test_non_dict_sub_document_rejected(self):
        doc = SystemParams().to_dict()
        doc["sdram"] = "fast"
        with pytest.raises(ConfigurationError):
            SystemParams.from_dict(doc)

    def test_non_dict_document_rejected(self):
        with pytest.raises(ConfigurationError):
            GenParams.from_dict("prototype")

"""Channel/rank address decode: TopologyDecoder and PVA ``locate()``."""

import pytest

from repro.api import build_system
from repro.config import Topology
from repro.core.decode import BankCoordinates, TopologyDecoder
from repro.errors import ConfigurationError
from repro.params import SystemParams


class TestTopologyDecoder:
    def test_word_interleave_prototype(self):
        decoder = TopologyDecoder(Topology())
        assert decoder.bank_of(0) == 0
        assert decoder.bank_of(17) == 1
        assert decoder.channel_of(17) == 0  # single channel
        coords = decoder.coordinates(37)
        assert coords == BankCoordinates(
            bank=5, channel=0, rank=0, bank_in_rank=5, local_word=2
        )

    def test_channel_interleaved_words(self):
        # Two channels: consecutive word addresses alternate channels.
        decoder = TopologyDecoder(
            Topology(num_channels=2, ranks_per_channel=1, banks_per_rank=8)
        )
        assert [decoder.channel_of(a) for a in range(6)] == [0, 1, 0, 1, 0, 1]

    def test_full_coordinates_with_ranks(self):
        topo = Topology(
            num_channels=2, ranks_per_channel=2, banks_per_rank=4
        )
        decoder = TopologyDecoder(topo)
        for address in range(64):
            coords = decoder.coordinates(address)
            assert coords.bank == address % 16
            assert coords.channel == coords.bank & 1
            assert coords.rank == (coords.bank >> 1) & 1
            assert coords.bank_in_rank == coords.bank >> 2
            assert coords.local_word == address // 16

    def test_block_interleave(self):
        decoder = TopologyDecoder(
            Topology(num_channels=2, banks_per_rank=8), block_words=4
        )
        # Four consecutive words share a bank before the next takes over.
        assert [decoder.bank_of(a) for a in range(0, 16, 4)] == [0, 1, 2, 3]


class TestSystemLocate:
    def test_locate_matches_the_simulators_bank_decode(self):
        params = SystemParams(num_channels=2, ranks_per_channel=2)
        system = build_system("pva-sdram", params)
        coords = system.locate(21)
        assert coords.bank == 21 % 16
        assert coords.channel == coords.bank & 1
        # locate() agrees with where simulation actually routes words.
        assert coords.bank == system.decoder.bank_of(21)

    def test_locate_rejected_under_custom_interleave(self):
        from repro.interleave import InterleaveScheme
        from repro.pva.system import PVAMemorySystem

        params = SystemParams()
        system = PVAMemorySystem(
            params,
            interleave=InterleaveScheme.cache_line(
                params.num_banks, params.cache_line_words
            ),
        )
        with pytest.raises(ConfigurationError):
            system.locate(0)

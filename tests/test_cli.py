"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_kernel(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--kernel", "nope"])

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "12"])

    def test_accepts_resilience_options(self):
        args = build_parser().parse_args(
            [
                "grid",
                "--on-error",
                "collect",
                "--retries",
                "2",
                "--timeout",
                "10",
            ]
        )
        assert args.on_error == "collect"
        assert args.retries == 2
        assert args.timeout == 10.0

    def test_rejects_unknown_on_error_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["grid", "--on-error", "explode"])

    def test_faults_smoke_subcommand_exists(self):
        args = build_parser().parse_args(["faults-smoke", "--timeout", "3"])
        assert args.command == "faults-smoke"
        assert args.timeout == 3.0


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "num_banks" in out
        assert "16" in out

    def test_run_point(self, capsys):
        code = main(
            [
                "run",
                "--kernel",
                "scale",
                "--stride",
                "19",
                "--elements",
                "128",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pva-sdram" in out
        assert "cacheline-serial" in out
        assert "vs best" in out

    def test_run_subset_of_systems(self, capsys):
        code = main(
            [
                "run",
                "--kernel",
                "copy",
                "--stride",
                "4",
                "--elements",
                "64",
                "--system",
                "pva-sdram",
                "--system",
                "gathering-serial",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pva-sdram" in out
        assert "cacheline-serial" not in out

    def test_run_invalid_elements(self, capsys):
        code = main(
            ["run", "--kernel", "copy", "--stride", "1", "--elements", "100"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_figure_9_small(self, capsys):
        assert main(["figure", "9", "--elements", "64"]) == 0
        out = capsys.readouterr().out
        assert "cacheline norm" in out
        assert "tridiag" in out

    def test_ablation_bypass(self, capsys):
        assert main(["ablation", "bypass"]) == 0
        out = capsys.readouterr().out
        assert "saved cycles" in out

    def test_complexity(self, capsys):
        assert main(["complexity"]) == 0
        out = capsys.readouterr().out
        assert "Paper Table 1" in out
        assert "2048" in out

    def test_sweep(self, capsys):
        assert main(
            ["sweep", "--kernel", "scale", "--max-stride", "4",
             "--elements", "64"]
        ) == 0
        out = capsys.readouterr().out
        assert "banks hit" in out
        assert out.count("\n") >= 5  # header + rule + 4 strides

    def test_sweep_invalid_elements(self, capsys):
        assert main(["sweep", "--elements", "65"]) == 2
        assert "error" in capsys.readouterr().err

    def test_faults_smoke_passes(self, capsys):
        """The end-to-end containment harness behind ``python -m repro
        faults-smoke`` reports success."""
        assert main(["faults-smoke", "--timeout", "3"]) == 0
        err = capsys.readouterr().err
        assert "containment checks passed" in err
        assert "FAIL" not in err

    def test_grid_collect_renders_failed_cells(self, capsys):
        """With --on-error collect an injected failure marks its cells
        FAILED while the healthy system's column survives."""
        from repro.faults import install_fault_systems, uninstall_fault_systems

        names = install_fault_systems()
        try:
            code = main(
                [
                    "grid",
                    "--kernel",
                    "copy",
                    "--stride",
                    "1",
                    "--alignment",
                    "aligned",
                    "--system",
                    "pva-sdram",
                    "--system",
                    names["raising"],
                    "--on-error",
                    "collect",
                    "--elements",
                    "64",
                ]
            )
        finally:
            uninstall_fault_systems()
        assert code == 0
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "pva-sdram" in out

    def test_all_artifacts(self, tmp_path, capsys):
        assert main(
            ["all", "--out", str(tmp_path), "--elements", "64"]
        ) == 0
        out = capsys.readouterr().out
        assert "artifacts" in out
        names = {p.name for p in tmp_path.glob("*.txt")}
        assert "figure7.txt" in names
        assert "headline.txt" in names
        assert "ablation_row_policy.txt" in names
        assert len(names) >= 12

"""Supervisor: queue -> engine -> terminal states, recovery, drain."""

import time

import pytest

from repro.engine import CircuitBreaker
from repro.faults import install_fault_systems, uninstall_fault_systems
from repro.service.jobs import JobSpec, JobState
from repro.service.journal import JobJournal
from repro.service.queue import AdmissionQueue
from repro.service.supervisor import Supervisor


def _make(tmp_path, **overrides):
    journal = JobJournal(tmp_path / "journal.jsonl")
    queue = AdmissionQueue(
        max_depth=overrides.pop("max_depth", 16),
        tenant_quota=overrides.pop("tenant_quota", 8),
    )
    fields = dict(
        queue=queue,
        journal=journal,
        cache_dir=tmp_path / "cache",
        engine_jobs=1,  # inline: fast and deterministic for unit tests
        concurrency=1,
        point_timeout=30.0,
        retries=0,
    )
    fields.update(overrides)
    return Supervisor(**fields)


def _run_to_terminal(supervisor, job, timeout=30.0):
    deadline = time.monotonic() + timeout
    while not job.terminal:
        supervisor.dispatch()
        if time.monotonic() >= deadline:
            raise AssertionError(
                f"job {job.id} still {job.state} after {timeout}s"
            )
        time.sleep(0.02)
    return job


def _spec(kind="simulate", payload=None, **fields):
    return JobSpec(
        kind=kind,
        payload=payload
        or {"kernel": "copy", "stride": 1, "elements": 64},
        **fields,
    )


@pytest.fixture
def faults(tmp_path):
    names = install_fault_systems(state_dir=tmp_path / "fault-state")
    yield names
    uninstall_fault_systems()


class TestHappyPath:
    def test_simulate_job_runs_to_done(self, tmp_path):
        supervisor = _make(tmp_path)
        job = supervisor.submit(_spec())
        _run_to_terminal(supervisor, job)
        assert job.state == JobState.DONE
        assert job.result["points"] == 1
        assert job.result["cycles"][0] > 0
        assert job.progress["points_done"] == 1
        # The exit gate journaled the terminal state.
        replay = JobJournal.replay(supervisor.journal.path)
        assert replay.jobs[job.id]["state"] == JobState.DONE

    def test_submit_journals_before_returning(self, tmp_path):
        supervisor = _make(tmp_path)
        job = supervisor.submit(_spec())
        replay = JobJournal.replay(supervisor.journal.path)
        assert job.id in replay.jobs  # WAL: accepted => durable

    def test_second_run_hits_the_shared_cache(self, tmp_path):
        supervisor = _make(tmp_path)
        first = _run_to_terminal(supervisor, supervisor.submit(_spec()))
        second = _run_to_terminal(supervisor, supervisor.submit(_spec()))
        assert second.result["cycles"] == first.result["cycles"]
        assert second.progress["cache_hits"] == 1
        assert supervisor.metrics.cache_hits >= 1

    def test_grid_job_reports_every_point(self, tmp_path):
        supervisor = _make(tmp_path)
        job = supervisor.submit(
            _spec(
                kind="grid",
                payload={
                    "systems": ["pva-sdram"],
                    "kernels": ["copy", "scale"],
                    "strides": [1, 4],
                    "elements": 64,
                },
            )
        )
        _run_to_terminal(supervisor, job)
        assert job.state == JobState.DONE
        assert len(job.result["cycles"]) == 4
        assert all(count > 0 for count in job.result["cycles"])


class TestFailurePaths:
    def test_raising_point_fails_the_job_terminally(
        self, tmp_path, faults
    ):
        supervisor = _make(tmp_path)
        job = supervisor.submit(
            _spec(payload={"system": faults["raising"], "kernel": "copy"})
        )
        _run_to_terminal(supervisor, job)
        assert job.state == JobState.FAILED
        assert "InjectedFault" in job.result["failures"][0]
        assert job.progress["failures"] == 1

    def test_unknown_system_fails_not_crashes(self, tmp_path):
        supervisor = _make(tmp_path)
        job = supervisor.submit(
            _spec(payload={"system": "no-such-system", "kernel": "copy"})
        )
        _run_to_terminal(supervisor, job)
        assert job.state == JobState.FAILED

    def test_deadline_aborts_between_points(self, tmp_path, faults):
        supervisor = _make(tmp_path)
        job = supervisor.submit(
            _spec(
                kind="grid",
                payload={
                    "systems": [faults["slow"]],
                    "kernels": ["copy"],
                    "strides": [1, 2, 4],
                    "elements": 64,
                },
                deadline_seconds=0.3,
            )
        )
        _run_to_terminal(supervisor, job)
        assert job.state == JobState.FAILED
        assert "deadline" in job.error
        # The abort fired between points, not after all three.
        assert job.progress["points_done"] < 3


class TestCancellation:
    def test_cancel_queued_job_is_immediate(self, tmp_path):
        supervisor = _make(tmp_path)
        job = supervisor.submit(_spec())
        supervisor.cancel(job.id)  # no dispatch() ran yet
        assert job.state == JobState.CANCELLED
        replay = JobJournal.replay(supervisor.journal.path)
        assert replay.jobs[job.id]["state"] == JobState.CANCELLED

    def test_cancel_running_job_stops_at_point_boundary(
        self, tmp_path, faults
    ):
        supervisor = _make(tmp_path)
        job = supervisor.submit(
            _spec(
                kind="grid",
                payload={
                    "systems": [faults["slow"]],
                    "kernels": ["copy"],
                    "strides": [1, 2, 4, 8],
                    "elements": 64,
                },
            )
        )
        supervisor.dispatch()
        deadline = time.monotonic() + 10
        while job.state != JobState.RUNNING:
            assert time.monotonic() < deadline
            time.sleep(0.02)
        supervisor.cancel(job.id)
        _run_to_terminal(supervisor, job)
        assert job.state == JobState.CANCELLED
        assert job.progress["points_done"] < 4

    def test_cancel_terminal_job_raises(self, tmp_path):
        from repro.errors import JobStateError

        supervisor = _make(tmp_path)
        job = _run_to_terminal(supervisor, supervisor.submit(_spec()))
        with pytest.raises(JobStateError):
            supervisor.cancel(job.id)

    def test_unknown_job_raises(self, tmp_path):
        from repro.errors import JobNotFoundError

        supervisor = _make(tmp_path)
        with pytest.raises(JobNotFoundError):
            supervisor.get("nope")
        with pytest.raises(JobNotFoundError):
            supervisor.cancel("nope")


class TestRecovery:
    def test_incomplete_jobs_resume_and_reuse_the_cache(self, tmp_path):
        first = _make(tmp_path)
        done = _run_to_terminal(first, first.submit(_spec()))
        # A job that was accepted but never ran — the "crash" leaves
        # only its submit record behind.
        lost = first.submit(
            _spec(payload={"kernel": "copy", "stride": 1, "elements": 64})
        )
        first.journal.close()  # simulate process death (no end record)

        replay = JobJournal.replay(first.journal.path)
        second = _make(tmp_path / "fresh-state", cache_dir=tmp_path / "cache")
        resumed = second.recover(replay)
        assert [job.id for job in resumed] == [lost.id]
        assert second.metrics.journal_replayed == 1
        # The finished job is queryable in its terminal state.
        assert second.get(done.id).state == JobState.DONE
        assert second.get(done.id).result == done.result

        resumed_job = second.get(lost.id)
        assert resumed_job.recovered
        _run_to_terminal(second, resumed_job)
        assert resumed_job.state == JobState.DONE
        # Same spec as `done` => every point replays from the cache.
        assert resumed_job.progress["cache_hits"] == 1

    def test_recovered_cancel_request_is_honoured(self, tmp_path):
        first = _make(tmp_path)
        job = first.submit(_spec())
        first.journal.cancel(job.id)
        first.journal.close()

        replay = JobJournal.replay(first.journal.path)
        second = _make(
            tmp_path / "fresh-state", cache_dir=tmp_path / "cache"
        )
        second.recover(replay)
        resumed = second.get(job.id)
        _run_to_terminal(second, resumed)
        assert resumed.state == JobState.CANCELLED


class TestDrain:
    def test_drain_requeues_stragglers_for_resume(self, tmp_path, faults):
        supervisor = _make(tmp_path)
        job = supervisor.submit(
            _spec(
                kind="grid",
                payload={
                    "systems": [faults["slow"]],
                    "kernels": ["copy"],
                    "strides": [1, 2, 4, 8],
                    "elements": 64,
                },
            )
        )
        supervisor.dispatch()
        deadline = time.monotonic() + 10
        while job.progress["points_done"] < 1:
            assert time.monotonic() < deadline
            time.sleep(0.02)
        summary = supervisor.drain(timeout=0.05, grace=10.0)
        assert summary["interrupted"] == [job.id]
        # Not terminal: the journal's submit record keeps it alive for
        # the next daemon start.
        assert job.state == JobState.QUEUED
        assert JobJournal.replay(
            supervisor.journal.path
        ).incomplete == [job.id]
        # Completed points were cached before the abort.
        assert supervisor.cache.quarantined == 0
        assert len(supervisor.cache) >= 1

    def test_drain_waits_for_fast_jobs(self, tmp_path):
        supervisor = _make(tmp_path)
        job = supervisor.submit(_spec())
        supervisor.dispatch()
        summary = supervisor.drain(timeout=30.0)
        assert job.state == JobState.DONE
        assert summary["interrupted"] == []

    def test_draining_supervisor_rejects_submissions(self, tmp_path):
        from repro.errors import QueueFullError

        supervisor = _make(tmp_path)
        supervisor.drain(timeout=0.01)
        with pytest.raises(QueueFullError):
            supervisor.submit(_spec())
        assert supervisor.metrics.queue_rejected == 1


class TestBreaker:
    def test_open_breaker_forces_inline_execution(self, tmp_path):
        breaker = CircuitBreaker(threshold=1, cooldown_seconds=3600)
        breaker.record_incident()  # trip it
        assert breaker.state == CircuitBreaker.OPEN
        supervisor = _make(tmp_path, engine_jobs=4, breaker=breaker)
        job = _run_to_terminal(supervisor, supervisor.submit(_spec()))
        assert job.state == JobState.DONE
        # Inline execution (jobs=1) folded into the service metrics.
        assert supervisor.metrics.breaker_trips == 1

"""Admission queue: depth bound, tenant quotas, claim semantics."""

import pytest

from repro.errors import (
    ConfigurationError,
    QueueFullError,
    QuotaExceededError,
)
from repro.service.jobs import Job, JobSpec, JobState
from repro.service.queue import AdmissionQueue


def _job(tenant="default"):
    return Job(
        JobSpec(kind="simulate", payload={"kernel": "copy"}, tenant=tenant)
    )


class TestAdmission:
    def test_fifo_claim_order(self):
        queue = AdmissionQueue()
        first, second = _job(), _job()
        queue.submit(first)
        queue.submit(second)
        assert queue.claim_next() is first
        assert queue.claim_next() is second
        assert queue.claim_next() is None

    def test_depth_bound_rejects_fast(self):
        queue = AdmissionQueue(max_depth=2)
        queue.submit(_job("a"))
        queue.submit(_job("b"))
        with pytest.raises(QueueFullError):
            queue.submit(_job("c"))
        assert queue.rejected_full == 1
        assert queue.rejected == 1

    def test_tenant_quota_counts_queued_and_running(self):
        queue = AdmissionQueue(tenant_quota=2)
        queue.submit(_job("alice"))
        second = _job("alice")
        queue.submit(second)
        with pytest.raises(QuotaExceededError):
            queue.submit(_job("alice"))
        assert queue.rejected_quota == 1
        # Another tenant is unaffected.
        queue.submit(_job("bob"))
        # Claiming (job starts running) does NOT free the slot ...
        assert queue.claim_next() is not None
        with pytest.raises(QuotaExceededError):
            queue.submit(_job("alice"))
        # ... releasing (terminal state) does.
        queue.release(second)
        queue.submit(_job("alice"))

    def test_recovered_jobs_bypass_quota_not_depth(self):
        queue = AdmissionQueue(max_depth=3, tenant_quota=1)
        queue.submit(_job("alice"))
        queue.submit(_job("alice"), count_quota=False)
        queue.submit(_job("alice"), count_quota=False)
        with pytest.raises(QueueFullError):
            queue.submit(_job("alice"), count_quota=False)

    def test_admitted_counter(self):
        queue = AdmissionQueue()
        queue.submit(_job())
        queue.submit(_job())
        assert queue.admitted == 2


class TestClaim:
    def test_terminal_jobs_are_skipped(self):
        queue = AdmissionQueue()
        dead, live = _job(), _job()
        queue.submit(dead)
        queue.submit(live)
        dead.mark_terminal(JobState.CANCELLED)
        assert queue.claim_next() is live

    def test_cancel_requested_jobs_are_still_claimed(self):
        # The runner owns turning a cancel request into a terminal
        # state; dropping the job here would lose it silently.
        queue = AdmissionQueue()
        job = _job()
        queue.submit(job)
        job.request_cancel()
        assert queue.claim_next() is job

    def test_remove_drops_a_specific_job(self):
        queue = AdmissionQueue()
        job = _job()
        queue.submit(job)
        assert queue.remove(job) is True
        assert queue.remove(job) is False
        assert queue.depth == 0


class TestValidationAndIntrospection:
    def test_bad_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            AdmissionQueue(max_depth=0)
        with pytest.raises(ConfigurationError):
            AdmissionQueue(tenant_quota=0)

    def test_describe_snapshot(self):
        queue = AdmissionQueue(max_depth=5, tenant_quota=2)
        queue.submit(_job("alice"))
        snapshot = queue.describe()
        assert snapshot["depth"] == 1
        assert snapshot["max_depth"] == 5
        assert snapshot["active_by_tenant"] == {"alice": 1}
        assert snapshot["admitted"] == 1

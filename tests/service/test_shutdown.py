"""Shutdown paths: SIGTERM/SIGINT against a real daemon subprocess.

The invariants under test: a signalled daemon exits 0 with no orphaned
pool processes, the journal is left consistent (no partial records),
interrupted jobs are requeued — not lost, not half-finished — and a
restarted daemon resumes them from the result cache.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service.chaos import _client_for
from repro.service.jobs import JobState
from repro.service.journal import JobJournal

SRC = Path(__file__).resolve().parents[2] / "src"

_SLOW_GRID = {
    "systems": ["fault-slow"],
    "kernels": ["copy"],
    "strides": [1, 2, 4, 8],
    "elements": 64,
}


def _spawn(tmp_path, *, drain_seconds: float) -> subprocess.Popen:
    port_file = tmp_path / "port"
    if port_file.exists():
        port_file.unlink()
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(SRC)
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--port-file",
            str(port_file),
            "--state-dir",
            str(tmp_path / "state"),
            "--jobs",
            "2",
            "--timeout",
            "30",
            "--retries",
            "0",
            "--drain-seconds",
            str(drain_seconds),
            "--install-faults",
            str(tmp_path / "fault-state"),
        ],
        env=environment,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _children_of(pid: int):
    """Live pids whose parent is ``pid`` (pool workers, mostly)."""
    children = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            stat = (entry / "stat").read_text()
        except OSError:
            continue
        ppid = int(stat.rsplit(")", 1)[1].split()[1])
        if ppid == pid:
            children.append(int(entry.name))
    return children


def _assert_all_dead(pids, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        alive = []
        for pid in pids:
            try:
                os.kill(pid, 0)
            except (ProcessLookupError, PermissionError):
                continue
            alive.append(pid)
        if not alive:
            return
        time.sleep(0.1)
    raise AssertionError(f"orphaned processes survived shutdown: {alive}")


def _no_partial_cache_entries(state_dir: Path):
    cache = state_dir / "cache"
    if not cache.exists():
        return
    leftovers = list(cache.glob("*/.tmp-*"))
    assert leftovers == [], f"partial cache writes left behind: {leftovers}"


def _wait_for_progress(client, job_id, minimum=1, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = client.status(job_id)
        if job["progress"]["points_done"] >= minimum:
            return job
        if job["state"] in (JobState.DONE, JobState.FAILED):
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} made no progress in {timeout}s")


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_signal_mid_batch_drains_cleanly_and_resumes(tmp_path, signum):
    daemon = _spawn(tmp_path, drain_seconds=0.2)
    job_id = None
    try:
        client = _client_for(tmp_path / "port")
        job_id = client.submit("grid", _SLOW_GRID)["id"]
        _wait_for_progress(client, job_id)

        workers = _children_of(daemon.pid)
        daemon.send_signal(signum)
        assert daemon.wait(timeout=30) == 0  # clean exit, not a crash
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10)

    # No orphaned pool processes survive the daemon.
    _assert_all_dead(workers)
    # No partial cache entries: every write was atomic.
    _no_partial_cache_entries(tmp_path / "state")
    # The journal is consistent — compacted, fully parseable, and the
    # interrupted job is incomplete (requeued), not lost or torn.
    replay = JobJournal.replay(tmp_path / "state" / "journal.jsonl")
    assert replay.skipped == 0
    assert job_id in replay.jobs
    record = replay.jobs[job_id]
    assert record["state"] == JobState.QUEUED
    assert replay.incomplete == [job_id]

    # A restarted daemon resumes it from the cache to a terminal state.
    daemon = _spawn(tmp_path, drain_seconds=30.0)
    try:
        client = _client_for(tmp_path / "port")
        final = client.wait(job_id, timeout=60.0)
        assert final["state"] == JobState.DONE
        assert final["recovered"] is True
        assert len(final["result"]["cycles"]) == 4
        assert all(count > 0 for count in final["result"]["cycles"])
        # The pre-signal points replayed from the cache.
        assert final["progress"]["cache_hits"] >= 1
    finally:
        daemon.send_signal(signal.SIGTERM)
        try:
            assert daemon.wait(timeout=30) == 0
        except subprocess.TimeoutExpired:
            daemon.kill()
            daemon.wait(timeout=10)


def test_idle_daemon_sigterm_exits_zero_with_closed_journal(tmp_path):
    daemon = _spawn(tmp_path, drain_seconds=5.0)
    try:
        client = _client_for(tmp_path / "port")
        assert client.ready()
        daemon.send_signal(signal.SIGTERM)
        assert daemon.wait(timeout=30) == 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10)
    replay = JobJournal.replay(tmp_path / "state" / "journal.jsonl")
    assert replay.skipped == 0
    assert replay.jobs == {}


def test_keyboard_interrupt_fallback_still_drains(tmp_path, monkeypatch):
    """If signal handlers could not be installed, a raw
    KeyboardInterrupt out of the loop must still drain and close the
    journal (the ``run()`` fallback path)."""
    from repro.service.daemon import ServiceConfig, ServiceDaemon

    daemon = ServiceDaemon(
        ServiceConfig(port=0, state_dir=str(tmp_path / "state"))
    )
    job = daemon.supervisor.submit(
        __import__(
            "repro.service.jobs", fromlist=["JobSpec"]
        ).JobSpec(kind="simulate", payload={"kernel": "copy", "elements": 64})
    )

    async def interrupted(self):
        raise KeyboardInterrupt

    monkeypatch.setattr(ServiceDaemon, "run_async", interrupted)
    assert daemon.run() == 0
    assert daemon.journal.closed
    replay = JobJournal.replay(daemon.config.journal_path)
    assert replay.skipped == 0
    assert replay.incomplete == [job.id]  # queued job survives for resume

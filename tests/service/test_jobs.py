"""Job model: spec validation, point expansion, lifecycle states."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.service.jobs import (
    Job,
    JobSpec,
    JobState,
    TERMINAL_STATES,
    spec_from_payload,
    spec_points,
)


def _spec(**overrides):
    fields = dict(kind="simulate", payload={"kernel": "copy", "stride": 1})
    fields.update(overrides)
    return JobSpec(**fields)


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            _spec(kind="fold-proteins")

    def test_non_dict_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            _spec(payload=["not", "a", "dict"])

    def test_empty_tenant_rejected(self):
        with pytest.raises(ConfigurationError):
            _spec(tenant="")

    def test_non_positive_deadline_rejected(self):
        with pytest.raises(ConfigurationError):
            _spec(deadline_seconds=0)
        with pytest.raises(ConfigurationError):
            _spec(deadline_seconds=-1.0)

    def test_from_payload_defaults(self):
        spec = spec_from_payload({"kind": "grid"})
        assert spec.kind == "grid"
        assert spec.tenant == "default"
        assert spec.deadline_seconds is None

    def test_from_payload_rejects_non_dict(self):
        with pytest.raises(ConfigurationError):
            spec_from_payload("grid")


class TestSpecPoints:
    def test_simulate_is_one_point(self):
        points = spec_points(
            _spec(
                payload={
                    "system": "cacheline-serial",
                    "kernel": "scale",
                    "stride": 19,
                    "elements": 128,
                }
            )
        )
        assert len(points) == 1
        assert points[0].system == "cacheline-serial"
        assert points[0].trace.kernel == "scale"
        assert points[0].trace.stride == 19

    def test_grid_is_the_cross_product(self):
        points = spec_points(
            JobSpec(
                kind="grid",
                payload={
                    "systems": ["pva-sdram", "cacheline-serial"],
                    "kernels": ["copy", "scale", "saxpy"],
                    "strides": [1, 19],
                    "elements": 64,
                },
            )
        )
        assert len(points) == 2 * 3 * 2
        # Deterministic product order: the journal-replayed job must
        # rebuild the exact same index -> point mapping.
        assert points[0].system == "pva-sdram"
        assert points[-1].system == "cacheline-serial"
        assert all(point.trace.elements == 64 for point in points)

    def test_grid_scalar_fields_are_promoted_to_lists(self):
        points = spec_points(
            JobSpec(kind="grid", payload={"kernels": "copy", "strides": 4})
        )
        assert len(points) == 1

    def test_grid_empty_list_rejected(self):
        with pytest.raises(ConfigurationError):
            spec_points(JobSpec(kind="grid", payload={"kernels": []}))

    def test_bench_has_no_point_expansion(self):
        with pytest.raises(ConfigurationError):
            spec_points(JobSpec(kind="bench", payload={}))

    def test_params_document_configures_every_point(self):
        from repro.params import SystemParams

        params = SystemParams(num_banks=8, num_channels=2, sim_mode="soa")
        points = spec_points(
            JobSpec(
                kind="grid",
                payload={
                    "kernels": ["copy", "scale"],
                    "strides": [1, 19],
                    "params": params.to_dict(),
                },
            )
        )
        assert len(points) == 4
        for point in points:
            assert point.params == params
            assert point.params.config_key() == params.config_key()

    def test_params_document_survives_a_json_round_trip(self):
        # The journal stores the payload as JSON; replay must rebuild
        # the identical configuration.
        from repro.params import SystemParams

        params = SystemParams(num_channels=2, row_policy="close")
        payload = json.loads(
            json.dumps({"kernel": "copy", "params": params.to_dict()})
        )
        (point,) = spec_points(_spec(payload=payload))
        assert point.params == params

    def test_bad_params_document_rejected(self):
        with pytest.raises(ConfigurationError):
            spec_points(
                _spec(payload={"kernel": "copy", "params": {"turbo": 1}})
            )


class TestJobLifecycle:
    def test_starts_queued_with_a_short_id(self):
        job = Job(_spec())
        assert job.state == JobState.QUEUED
        assert not job.terminal
        assert len(job.id) == 12

    def test_mark_running_then_terminal(self):
        job = Job(_spec())
        job.mark_running()
        assert job.state == JobState.RUNNING
        assert job.started_at is not None
        job.mark_terminal(JobState.DONE, result={"cycles": [145]})
        assert job.terminal
        assert job.finished_at is not None
        assert job.result == {"cycles": [145]}

    def test_mark_terminal_rejects_non_terminal_states(self):
        job = Job(_spec())
        with pytest.raises(ConfigurationError):
            job.mark_terminal(JobState.RUNNING)

    def test_terminal_states_are_exactly_the_resting_ones(self):
        assert TERMINAL_STATES == {
            JobState.DONE,
            JobState.FAILED,
            JobState.CANCELLED,
        }

    def test_cancel_and_shutdown_are_independent_flags(self):
        job = Job(_spec())
        assert not job.cancel_requested and not job.shutdown_requested
        job.request_cancel()
        assert job.cancel_requested and not job.shutdown_requested
        job.request_shutdown()
        assert job.shutdown_requested

    def test_requeue_resets_to_queued(self):
        job = Job(_spec())
        job.mark_running()
        job.mark_requeued()
        assert job.state == JobState.QUEUED
        assert job.started_at is None
        assert not job.terminal

    def test_deadline_only_ticks_once_started(self):
        job = Job(_spec(deadline_seconds=0.0001))
        assert not job.deadline_expired()  # not started yet
        job.mark_running()
        job.started_at -= 1.0
        assert job.deadline_expired()

    def test_no_deadline_never_expires(self):
        job = Job(_spec())
        job.mark_running()
        job.started_at -= 10_000
        assert not job.deadline_expired()

    def test_describe_is_json_safe(self):
        job = Job(_spec(), recovered=True)
        job.mark_terminal(JobState.FAILED, error="boom")
        snapshot = json.loads(json.dumps(job.describe()))
        assert snapshot["state"] == JobState.FAILED
        assert snapshot["recovered"] is True
        assert snapshot["error"] == "boom"
        assert snapshot["spec"]["kind"] == "simulate"

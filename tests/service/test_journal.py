"""Write-ahead journal: durability, torn-tail tolerance, compaction."""

import json

import pytest

from repro.errors import JournalError
from repro.service.jobs import Job, JobSpec, JobState
from repro.service.journal import (
    JOURNAL_SCHEMA_VERSION,
    JobJournal,
    JournalReplay,
)


def _job(**overrides):
    fields = dict(kind="simulate", payload={"kernel": "copy", "stride": 1})
    fields.update(overrides)
    return Job(JobSpec(**fields))


@pytest.fixture
def journal(tmp_path):
    journal = JobJournal(tmp_path / "journal.jsonl")
    yield journal
    journal.close()


class TestRoundtrip:
    def test_full_lifecycle_folds_back(self, journal):
        job = _job()
        journal.submit(job)
        job.mark_running()
        journal.start(job)
        job.progress["points_done"] = 3
        journal.progress(job)
        job.mark_terminal(JobState.DONE, result={"cycles": [145]})
        journal.end(job)

        replay = JobJournal.replay(journal.path)
        assert replay.skipped == 0
        assert replay.records == 4
        record = replay.jobs[job.id]
        assert record["state"] == JobState.DONE
        assert record["was_running"] is True
        assert record["progress"]["points_done"] == 3
        assert record["result"] == {"cycles": [145]}
        assert record["spec"]["kind"] == "simulate"
        assert replay.incomplete == []

    def test_submit_without_end_is_incomplete(self, journal):
        finished, lost = _job(), _job()
        journal.submit(finished)
        journal.submit(lost)
        finished.mark_terminal(JobState.DONE)
        journal.end(finished)
        replay = JobJournal.replay(journal.path)
        assert replay.incomplete == [lost.id]

    def test_cancel_record_restores_the_request(self, journal):
        job = _job()
        journal.submit(job)
        journal.cancel(job.id)
        replay = JobJournal.replay(journal.path)
        assert replay.jobs[job.id]["cancel_requested"] is True

    def test_missing_file_replays_empty(self, tmp_path):
        replay = JobJournal.replay(tmp_path / "never-written.jsonl")
        assert replay.jobs == {}
        assert replay.incomplete == []


class TestCorruptionTolerance:
    def test_torn_final_line_is_skipped_not_fatal(self, journal):
        job = _job()
        journal.submit(job)
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"schema_version": 1, "type": "end", "jo')
        replay = JobJournal.replay(journal.path)
        assert replay.skipped == 1
        assert replay.jobs[job.id]["state"] == JobState.QUEUED

    def test_wrong_schema_version_is_counted_separately(self, journal):
        job = _job()
        journal.submit(job)
        alien = {
            "schema_version": JOURNAL_SCHEMA_VERSION + 1,
            "type": "end",
            "job_id": job.id,
            "state": JobState.DONE,
        }
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(alien) + "\n")
        replay = JobJournal.replay(journal.path)
        assert replay.version_skipped == 1
        # The alien terminal record was NOT folded in.
        assert replay.jobs[job.id]["state"] == JobState.QUEUED

    def test_record_for_unknown_job_is_skipped(self, journal):
        journal.cancel("never-submitted")
        replay = JobJournal.replay(journal.path)
        assert replay.skipped == 1
        assert replay.jobs == {}

    def test_non_terminal_end_state_is_skipped(self, journal):
        job = _job()
        journal.submit(job)
        journal.record("end", job.id, state="exploded")
        replay = JobJournal.replay(journal.path)
        assert replay.jobs[job.id]["state"] == JobState.QUEUED
        assert replay.skipped == 1

    def test_every_record_is_version_stamped(self, journal):
        journal.submit(_job())
        journal.cancel("x")
        for line in journal.path.read_text().splitlines():
            assert (
                json.loads(line)["schema_version"]
                == JOURNAL_SCHEMA_VERSION
            )


class TestClosedJournal:
    def test_record_after_close_raises(self, journal):
        journal.close()
        assert journal.closed
        with pytest.raises(JournalError):
            journal.submit(_job())

    def test_close_is_idempotent(self, journal):
        journal.close()
        journal.close()


class TestCompaction:
    def test_compact_drops_chatter_keeps_outcomes(self, journal):
        done, live, cancelled = _job(), _job(), _job()
        for job in (done, live, cancelled):
            journal.submit(job)
        done.mark_running()
        journal.start(done)
        for _ in range(10):
            journal.progress(done)
        done.mark_terminal(JobState.DONE, result={"cycles": [1]})
        journal.end(done)
        cancelled.request_cancel()
        journal.cancel(cancelled.id)

        written = journal.compact([done, live, cancelled])
        # submit x3 + end(done) + cancel(cancelled)
        assert written == 5
        assert len(journal.path.read_text().splitlines()) == 5

        replay = JobJournal.replay(journal.path)
        assert replay.jobs[done.id]["state"] == JobState.DONE
        assert replay.jobs[done.id]["result"] == {"cycles": [1]}
        assert replay.jobs[live.id]["state"] == JobState.QUEUED
        assert replay.jobs[cancelled.id]["cancel_requested"] is True
        assert replay.incomplete == [live.id, cancelled.id]

    def test_journal_stays_appendable_after_compact(self, journal):
        job = _job()
        journal.submit(job)
        journal.compact([job])
        late = _job()
        journal.submit(late)
        replay = JobJournal.replay(journal.path)
        assert set(replay.jobs) == {job.id, late.id}

    def test_compact_of_closed_journal_leaves_it_closed(self, journal):
        job = _job()
        journal.submit(job)
        journal.close()
        journal.compact([job])
        assert journal.closed
        assert JobJournal.replay(journal.path).jobs[job.id]


def test_replay_dataclass_defaults():
    replay = JournalReplay()
    assert replay.records == 0
    assert replay.incomplete == []

"""End-to-end daemon tests: real sockets, real supervisor, one process.

The daemon's asyncio loop runs on a background thread; the test body
plays the client role through :class:`ServiceClient` (plus a raw
``http.client`` connection for the malformed-request cases).
"""

import asyncio
import http.client
import json
import threading

import pytest

from repro.errors import (
    JobNotFoundError,
    JobStateError,
    QueueFullError,
    QuotaExceededError,
    ServiceError,
)
from repro.faults import uninstall_fault_systems
from repro.service.client import ServiceClient
from repro.service.daemon import ServiceConfig, ServiceDaemon
from repro.service.jobs import JobState
from repro.service.journal import JobJournal


class _Harness:
    """One in-process daemon on an ephemeral port."""

    def __init__(self, config: ServiceConfig):
        self.daemon = ServiceDaemon(config)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self._main, name="daemon-loop", daemon=True
        )
        self.stopped = False

    def _main(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def start(self) -> "_Harness":
        self.thread.start()
        asyncio.run_coroutine_threadsafe(
            self.daemon.start(), self.loop
        ).result(timeout=15)
        return self

    @property
    def port(self) -> int:
        return self.daemon.server.bound_port

    def client(self, timeout=10.0) -> ServiceClient:
        return ServiceClient(f"http://127.0.0.1:{self.port}", timeout)

    def stop(self) -> dict:
        self.stopped = True
        summary = asyncio.run_coroutine_threadsafe(
            self.daemon.shutdown(), self.loop
        ).result(timeout=60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        return summary


def _config(tmp_path, **overrides) -> ServiceConfig:
    fields = dict(
        port=0,
        state_dir=str(tmp_path / "state"),
        engine_jobs=1,
        point_timeout=30.0,
        retries=0,
        drain_seconds=30.0,
        install_faults=str(tmp_path / "fault-state"),
    )
    fields.update(overrides)
    return ServiceConfig(**fields)


@pytest.fixture
def harness(tmp_path):
    harness = _Harness(_config(tmp_path)).start()
    yield harness
    if not harness.stopped:
        harness.stop()
    uninstall_fault_systems()


def _simulate_payload(**overrides):
    payload = {"kernel": "copy", "stride": 1, "elements": 64}
    payload.update(overrides)
    return payload


_SLOW_GRID = {
    "systems": ["fault-slow"],
    "kernels": ["copy"],
    "strides": [1, 2, 4, 8],
    "elements": 64,
}


class TestEndpoints:
    def test_health_ready_metrics(self, harness):
        client = harness.client()
        health = client.health()
        assert health["status"] == "ok"
        assert health["journal"]["closed"] is False
        assert client.ready() is True
        metrics = client.metrics()
        assert set(metrics) >= {"engine", "queue", "breaker", "journal", "jobs"}
        assert metrics["breaker"]["state"] == "closed"

    def test_submit_runs_to_done(self, harness):
        client = harness.client()
        job = client.submit("simulate", _simulate_payload())
        assert job["state"] in (JobState.QUEUED, JobState.RUNNING)
        final = client.wait(job["id"], timeout=60.0)
        assert final["state"] == JobState.DONE
        assert final["result"]["cycles"][0] > 0
        assert final["progress"]["points_done"] == 1
        assert client.metrics()["engine"]["points"] >= 1

    def test_jobs_listing_contains_submissions(self, harness):
        client = harness.client()
        job = client.submit("simulate", _simulate_payload())
        assert job["id"] in {entry["id"] for entry in client.jobs()}

    def test_unknown_job_is_404(self, harness):
        client = harness.client()
        with pytest.raises(JobNotFoundError):
            client.status("no-such-job")
        with pytest.raises(JobNotFoundError):
            client.cancel("no-such-job")

    def test_cancel_terminal_job_is_409(self, harness):
        client = harness.client()
        job = client.submit("simulate", _simulate_payload())
        client.wait(job["id"], timeout=60.0)
        with pytest.raises(JobStateError):
            client.cancel(job["id"])

    def test_bad_kind_is_400(self, harness):
        client = harness.client()
        with pytest.raises(ServiceError) as excinfo:
            client.submit("fold-proteins", {})
        assert "HTTP 400" in str(excinfo.value)

    def test_cancel_running_job(self, harness):
        client = harness.client()
        job = client.submit("grid", _SLOW_GRID)
        cancelled = client.cancel(job["id"])
        assert cancelled["cancel_requested"] is True
        final = client.wait(job["id"], timeout=60.0)
        assert final["state"] == JobState.CANCELLED


class TestRawHttp:
    def _raw(self, harness, method, path, body=None):
        connection = http.client.HTTPConnection(
            "127.0.0.1", harness.port, timeout=10
        )
        try:
            connection.request(method, path, body=body)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def test_malformed_json_body_is_400(self, harness):
        status, body = self._raw(harness, "POST", "/jobs", b"{nope")
        assert status == 400
        assert b"JSON" in body

    def test_non_object_body_is_400(self, harness):
        status, _ = self._raw(harness, "POST", "/jobs", b'"a string"')
        assert status == 400

    def test_unknown_route_is_404(self, harness):
        status, _ = self._raw(harness, "GET", "/no/such/route")
        assert status == 404

    def test_wrong_method_is_405(self, harness):
        status, _ = self._raw(harness, "POST", "/jobs/abc123")
        assert status == 405

    def test_responses_are_json(self, harness):
        _, body = self._raw(harness, "GET", "/healthz")
        assert isinstance(json.loads(body), dict)


class TestAdmissionControl:
    def test_tenant_quota_maps_to_429(self, tmp_path):
        harness = _Harness(_config(tmp_path, tenant_quota=1)).start()
        try:
            client = harness.client()
            client.submit("grid", _SLOW_GRID, tenant="alice")
            with pytest.raises(QuotaExceededError):
                client.submit(
                    "simulate", _simulate_payload(), tenant="alice"
                )
            # Another tenant still gets in.
            other = client.submit(
                "simulate", _simulate_payload(), tenant="bob"
            )
            assert other["id"]
            assert client.metrics()["engine"]["queue_rejected"] == 1
        finally:
            harness.stop()
            uninstall_fault_systems()

    def test_full_queue_maps_to_429_and_readyz_503(self, tmp_path):
        harness = _Harness(_config(tmp_path, queue_depth=1)).start()
        try:
            client = harness.client()
            first = client.submit("grid", _SLOW_GRID, tenant="a")
            # Wait until the first job leaves the queue for its runner.
            client.wait_ready(timeout=10)
            deadline = 100
            while client.status(first["id"])["state"] == JobState.QUEUED:
                deadline -= 1
                assert deadline > 0
                import time

                time.sleep(0.05)
            client.submit("grid", _SLOW_GRID, tenant="b")  # fills depth 1
            with pytest.raises(QueueFullError):
                client.submit("simulate", _simulate_payload(), tenant="c")
            assert client.ready() is False  # queue full => not ready
        finally:
            harness.stop()
            uninstall_fault_systems()


class TestGracefulShutdown:
    def test_shutdown_drains_and_compacts(self, tmp_path):
        harness = _Harness(_config(tmp_path)).start()
        uninstall = True
        try:
            client = harness.client()
            job = client.submit("simulate", _simulate_payload())
            client.wait(job["id"], timeout=60.0)
            summary = harness.stop()
            assert summary["interrupted"] == []
            daemon_job = harness.daemon.supervisor.get(job["id"])
            assert daemon_job.state == JobState.DONE
            # Journal closed and compacted to the live registry.
            assert harness.daemon.journal.closed
            replay = JobJournal.replay(
                harness.daemon.config.journal_path
            )
            assert replay.skipped == 0
            assert replay.jobs[job["id"]]["state"] == JobState.DONE
            # The socket is gone.
            assert client.ready() is False
        finally:
            if uninstall:
                uninstall_fault_systems()

    def test_draining_daemon_rejects_submissions_with_503(self, tmp_path):
        harness = _Harness(_config(tmp_path)).start()
        try:
            harness.daemon.accepting = False  # what shutdown() sets first
            client = harness.client()
            with pytest.raises(ServiceError) as excinfo:
                client.submit("simulate", _simulate_payload())
            assert "HTTP 503" in str(excinfo.value)
        finally:
            harness.stop()
            uninstall_fault_systems()


class TestRestartRecovery:
    def test_terminal_and_queued_jobs_survive_a_restart(self, tmp_path):
        config = _config(tmp_path)
        harness = _Harness(config).start()
        client = harness.client()
        done = client.submit("simulate", _simulate_payload())
        client.wait(done["id"], timeout=60.0)
        harness.stop()
        uninstall_fault_systems()

        # Second daemon on the same state directory.
        harness = _Harness(_config(tmp_path)).start()
        try:
            client = harness.client()
            replayed = client.status(done["id"])
            assert replayed["state"] == JobState.DONE
            assert replayed["result"]["cycles"][0] > 0
        finally:
            harness.stop()
            uninstall_fault_systems()

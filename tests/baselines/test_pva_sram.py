"""Tests for the PVA-SRAM comparison system (section 6.1)."""

from repro.baselines.pva_sram import make_pva_sram
from repro.params import SRAMTiming, SystemParams
from repro.pva.system import PVAMemorySystem
from repro.types import AccessType, Vector, VectorCommand


def cmd(base, stride, length=32):
    return VectorCommand(
        vector=Vector(base=base, stride=stride, length=length),
        access=AccessType.READ,
    )


class TestPVASRAM:
    def test_is_a_pva_system(self):
        system = make_pva_sram()
        assert isinstance(system, PVAMemorySystem)
        assert system.name == "pva-sram"
        assert not system.banks[0].device.has_rows

    def test_no_activates_ever(self):
        system = make_pva_sram()
        result = system.run([cmd(2048 * i, 19) for i in range(4)])
        assert result.device.activates == 0
        assert result.device.precharges == 0

    def test_never_slower_than_sdram(self):
        """SRAM removes RAS/CAS/precharge; with identical controllers the
        SRAM variant is a lower bound for the SDRAM one."""
        params = SystemParams()
        for stride in (1, 4, 16, 19):
            trace = [cmd(2048 * i, stride) for i in range(6)]
            sdram = PVAMemorySystem(params).run(trace).cycles
            sram = make_pva_sram(params).run(trace).cycles
            assert sram <= sdram

    def test_functional_equivalence(self):
        """Same gather results as the SDRAM system."""
        params = SystemParams()
        sram = make_pva_sram(params)
        sdram = PVAMemorySystem(params)
        v = Vector(base=3, stride=7, length=32)
        for a in v.addresses():
            sram.poke(a, a + 1)
            sdram.poke(a, a + 1)
        trace = [VectorCommand(vector=v, access=AccessType.READ)]
        assert (
            sram.run(trace, capture_data=True).read_lines
            == sdram.run(trace, capture_data=True).read_lines
        )

    def test_custom_access_latency(self):
        slow = make_pva_sram(sram_timing=SRAMTiming(access_cycles=3))
        fast = make_pva_sram()
        trace = [cmd(0, 16)]
        assert slow.run(trace).cycles >= fast.run(trace).cycles

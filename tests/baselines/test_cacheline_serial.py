"""Tests for the cache-line interleaved serial baseline (section 6.1)."""

import pytest

from repro.baselines.cacheline_serial import CacheLineSerialSDRAM
from repro.params import SystemParams
from repro.types import AccessType, Vector, VectorCommand


def cmd(base, stride, length=32, access=AccessType.READ):
    return VectorCommand(
        vector=Vector(base=base, stride=stride, length=length), access=access
    )


@pytest.fixture
def system():
    return CacheLineSerialSDRAM(SystemParams())


class TestFillCost:
    def test_twenty_cycles_per_fill(self, system):
        """2 RAS + 2 CAS + 16 burst = 20 cycles (the paper's accounting)."""
        assert system.fill_cycles == 20

    def test_unit_stride_one_line(self, system):
        """A 32-word unit-stride command touches exactly one 128-byte line
        when aligned."""
        assert system.lines_touched(cmd(0, 1)) == 1
        assert system.run([cmd(0, 1)]).cycles == 20

    def test_unaligned_unit_stride_two_lines(self, system):
        assert system.lines_touched(cmd(5, 1)) == 2

    def test_stride_grows_lines_linearly(self, system):
        """Aligned power-of-two strides touch exactly `stride` lines."""
        for stride in (1, 2, 4, 8, 16):
            assert system.lines_touched(cmd(0, stride)) == stride

    def test_prime_stride_lines(self, system):
        """Stride 19: elements share lines occasionally -> 19 distinct
        lines per 32-element command."""
        assert system.lines_touched(cmd(0, 19)) == 19

    def test_stride_beyond_line_caps_at_length(self, system):
        assert system.lines_touched(cmd(0, 32)) == 32
        assert system.lines_touched(cmd(0, 100)) == 32

    def test_serial_accumulation(self, system):
        trace = [cmd(0, 1), cmd(4096, 4)]
        assert system.run(trace).cycles == 20 * (1 + 4)

    def test_writes_cost_like_reads(self, system):
        read = system.run([cmd(0, 8)]).cycles
        write = system.run([cmd(0, 8, access=AccessType.WRITE)]).cycles
        assert read == write


class TestPerElementVariant:
    def test_per_element_fill_count(self):
        system = CacheLineSerialSDRAM(SystemParams(), fill_per_element=True)
        assert system.lines_touched(cmd(0, 19)) == 32
        assert system.run([cmd(0, 19)]).cycles == 32 * 20

    def test_headline_factor_reconstruction(self):
        """With per-element accounting, a stride-19 command costs 640
        cycles — the paper's 32.8x numerator (see experiments.headline)."""
        system = CacheLineSerialSDRAM(SystemParams(), fill_per_element=True)
        assert system.run([cmd(0, 19)]).cycles == 640


class TestResultFields:
    def test_counts(self, system):
        trace = [cmd(0, 1), cmd(4096, 2, access=AccessType.WRITE)]
        result = system.run(trace)
        assert result.read_commands == 1
        assert result.write_commands == 1
        assert result.elements_read == 32
        assert result.elements_written == 32
        assert result.device.activates == 3  # 1 + 2 line fills
        assert result.bus.data_cycles == 3 * 16

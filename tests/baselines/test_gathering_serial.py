"""Tests for the gathering pipelined serial baseline (section 6.1)."""

import pytest

from repro.baselines.gathering_serial import GatheringSerialSDRAM
from repro.params import SystemParams
from repro.types import AccessType, Vector, VectorCommand


def cmd(base, stride, length=32, access=AccessType.READ):
    return VectorCommand(
        vector=Vector(base=base, stride=stride, length=length), access=access
    )


@pytest.fixture
def system():
    return GatheringSerialSDRAM(SystemParams())


class TestCostModel:
    def test_per_command_cost(self, system):
        """t_rp + t_rcd + CL + 32 serial issues + 16 transfer + 1 command
        = 55 cycles for a full command."""
        assert system.command_cycles(cmd(0, 1)) == 55

    def test_cost_is_stride_independent(self, system):
        """The defining property: gathering works element-at-a-time, so
        stride does not change the cost."""
        costs = {system.command_cycles(cmd(0, s)) for s in (1, 2, 4, 16, 19)}
        assert len(costs) == 1

    def test_short_command_cheaper(self, system):
        assert system.command_cycles(cmd(0, 1, length=8)) == 31

    def test_serial_accumulation(self, system):
        assert system.run([cmd(0, 1), cmd(64, 19)]).cycles == 110

    def test_element_counts(self, system):
        result = system.run([cmd(0, 1), cmd(64, 1, access=AccessType.WRITE)])
        assert result.elements_read == 32
        assert result.elements_written == 32
        assert result.device.activates == 2  # one RAS per command

    def test_beats_cacheline_at_large_stride(self):
        """Cross-baseline shape: gathering wins at stride 16, loses at
        stride 1 (the paper's figure 7 crossover)."""
        from repro.baselines.cacheline_serial import CacheLineSerialSDRAM

        params = SystemParams()
        gather = GatheringSerialSDRAM(params)
        cache = CacheLineSerialSDRAM(params)
        assert gather.run([cmd(0, 1)]).cycles > cache.run([cmd(0, 1)]).cycles
        assert gather.run([cmd(0, 16)]).cycles < cache.run([cmd(0, 16)]).cycles

"""Tests for the alignment-sensitivity study."""

import pytest

from repro.experiments.alignment import alignment_spread, alignment_study
from repro.experiments.grid import run_grid
from repro.kernels import ALIGNMENTS


@pytest.fixture(scope="module")
def grid():
    return run_grid(
        kernels=("copy", "scale"),
        strides=(1, 16),
        alignments=ALIGNMENTS,
        elements=128,
        systems=("pva-sdram",),
    )


class TestSpread:
    def test_spread_at_least_one(self, grid):
        spread, best, worst = alignment_spread(grid, "copy", 16)
        assert spread >= 1.0
        assert best in grid.alignments
        assert worst in grid.alignments

    def test_unit_stride_no_spread(self, grid):
        spread, _, _ = alignment_spread(grid, "copy", 1)
        assert spread == pytest.approx(1.0)

    def test_multi_array_single_bank_stride_spreads(self, grid):
        spread, best, _ = alignment_spread(grid, "copy", 16)
        assert spread > 1.3
        assert best == "bank+1"  # staggering arrays doubles the banks

    def test_single_array_kernel_is_alignment_proof(self, grid):
        spread, _, _ = alignment_spread(grid, "scale", 16)
        assert spread == pytest.approx(1.0)


class TestStudy:
    def test_rows_and_text(self, grid):
        rows, text = alignment_study(grid=grid)
        assert len(rows) == len(grid.kernels) * len(grid.strides)
        assert "banks hit" in text
        assert "best alignment" in text

    def test_parallelism_column(self, grid):
        rows, _ = alignment_study(grid=grid)
        by_point = {(r[0], r[1]): r for r in rows}
        assert by_point[("copy", 1)][2] == 16
        assert by_point[("copy", 16)][2] == 1

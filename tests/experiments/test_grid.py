"""Tests for the experiment grid runner."""

import pytest

from repro.api import available_systems
from repro.experiments.grid import (
    EVAL_KERNELS,
    EVAL_STRIDES,
    run_grid,
    run_point,
)
from repro.kernels import ALIGNMENTS


@pytest.fixture(scope="module")
def small_grid():
    return run_grid(
        kernels=("copy", "scale"),
        strides=(1, 16),
        alignments=ALIGNMENTS[:2],
        elements=128,
    )


class TestGridShape:
    def test_evaluation_constants(self):
        """The full grid matches the paper: 8 patterns x 6 strides x 5
        alignments = 240 points per system."""
        assert len(EVAL_KERNELS) == 8
        assert EVAL_STRIDES == (1, 2, 4, 8, 16, 19)
        assert len(ALIGNMENTS) == 5
        assert len(EVAL_KERNELS) * len(EVAL_STRIDES) * len(ALIGNMENTS) == 240

    def test_all_four_systems_registered(self):
        assert set(available_systems()) == {
            "pva-sdram",
            "pva-sram",
            "cacheline-serial",
            "gathering-serial",
        }

    def test_grid_contains_every_point(self, small_grid):
        assert len(small_grid.cycles) == 2 * 2 * 2
        point = small_grid.point("copy", 1, "aligned")
        assert set(point) == set(available_systems())
        assert all(v > 0 for v in point.values())

    def test_min_max_over_alignments(self, small_grid):
        values = small_grid.over_alignments("copy", 16, "pva-sdram")
        assert small_grid.min_cycles("copy", 16, "pva-sdram") == min(values)
        assert small_grid.max_cycles("copy", 16, "pva-sdram") == max(values)

    def test_normalized_baseline_is_one(self, small_grid):
        assert small_grid.normalized("copy", 1, "pva-sdram") == 1.0

    def test_serial_systems_alignment_free(self, small_grid):
        for system in ("cacheline-serial", "gathering-serial"):
            values = small_grid.over_alignments("scale", 16, system)
            assert len(set(values)) == 1


class TestRunPoint:
    def test_subset_of_systems(self):
        out = run_point(
            "copy",
            stride=4,
            alignment=ALIGNMENTS[0],
            elements=64,
            systems=("pva-sdram", "cacheline-serial"),
        )
        assert set(out) == {"pva-sdram", "cacheline-serial"}

    def test_point_matches_grid(self):
        grid = run_grid(
            kernels=("copy",),
            strides=(4,),
            alignments=ALIGNMENTS[:1],
            elements=64,
        )
        point = run_point(
            "copy", stride=4, alignment=ALIGNMENTS[0], elements=64
        )
        assert point == grid.point("copy", 4, "aligned")

"""Tests for the hardware-complexity accounting (Table 1)."""

from repro.experiments.complexity import (
    PAPER_TABLE1,
    complexity_table,
    estimate_bank_controller,
)
from repro.params import SystemParams


class TestPaperTable1:
    def test_verbatim_counts(self):
        assert PAPER_TABLE1["NAND2"] == 5488
        assert PAPER_TABLE1["D Flip-flop"] == 1039
        assert PAPER_TABLE1["On-chip RAM"] == "2K bytes"


class TestEstimate:
    def test_staging_ram_matches_paper(self):
        """8 transactions x 128-byte line x read+write = the paper's 2 KB
        of on-chip RAM."""
        estimate = estimate_bank_controller(SystemParams())
        assert estimate.staging_ram_bytes == 2048

    def test_pla_terms(self):
        estimate = estimate_bank_controller(SystemParams())
        assert estimate.k1_pla_terms == 16
        assert estimate.full_ki_pla_terms > estimate.k1_pla_terms

    def test_flip_flop_estimate_same_order_as_paper(self):
        """The architectural DFF estimate lands in the same order of
        magnitude as the synthesis count (1039)."""
        estimate = estimate_bank_controller(SystemParams())
        assert 200 <= estimate.flip_flop_estimate <= 5000

    def test_scales_with_banks(self):
        small = estimate_bank_controller(SystemParams(num_banks=4))
        large = estimate_bank_controller(SystemParams(num_banks=16))
        assert large.full_ki_pla_terms > small.full_ki_pla_terms


class TestRendering:
    def test_table_text(self):
        text = complexity_table(SystemParams())
        assert "Paper Table 1" in text
        assert "staging RAM bytes" in text
        assert "2048" in text
        assert "FirstHit PLA scaling" in text

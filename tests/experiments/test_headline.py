"""Tests for the headline-ratio extraction."""

import pytest

from repro.experiments.grid import run_grid
from repro.experiments.headline import headline_ratios
from repro.kernels import ALIGNMENTS


@pytest.fixture(scope="module")
def grid():
    return run_grid(
        kernels=("copy", "scale"),
        strides=(1, 16, 19),
        alignments=ALIGNMENTS[:2],
        elements=256,
    )


class TestHeadline:
    def test_max_speedup_found_at_prime_stride(self, grid):
        ratios = headline_ratios(grid)
        assert ratios.max_speedup_vs_cacheline_at[1] == 19
        assert ratios.max_speedup_vs_cacheline > 10

    def test_gathering_speedup_order_of_three(self, grid):
        ratios = headline_ratios(grid)
        assert 1.5 < ratios.max_speedup_vs_gathering < 5

    def test_unit_stride_band_near_parity(self, grid):
        lo, hi = headline_ratios(grid).unit_stride_band
        assert 0.9 < lo <= hi < 1.25

    def test_worst_sram_gap_within_paper_bound(self, grid):
        assert headline_ratios(grid).worst_sram_gap <= 0.15

    def test_summary_keys(self, grid):
        summary = headline_ratios(grid).summary()
        assert {
            "max_speedup_vs_cacheline",
            "max_speedup_vs_gathering",
            "unit_stride_band_pct",
            "worst_sram_gap_pct",
        } <= set(summary)

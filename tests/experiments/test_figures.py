"""Tests for the figure generators."""

import pytest

from repro.experiments.figures import (
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
)
from repro.experiments.grid import run_grid
from repro.kernels import ALIGNMENTS


@pytest.fixture(scope="module")
def grid():
    return run_grid(
        kernels=("copy", "scale", "vaxpy", "swap"),
        strides=(1, 4, 16, 19),
        alignments=ALIGNMENTS[:3],
        elements=128,
    )


class TestStridePanels:
    def test_figure7_rows(self, grid):
        fig = figure7(grid)
        kernels = {row[0] for row in fig.rows}
        assert kernels == {"copy", "scale"}  # intersection with grid
        strides = {row[1] for row in fig.rows}
        assert strides == {1, 4, 16, 19}

    def test_figure8_rows(self, grid):
        fig = figure8(grid)
        assert {row[0] for row in fig.rows} == {"vaxpy", "swap"}

    def test_min_le_max(self, grid):
        for fig in (figure7(grid), figure8(grid)):
            for row in fig.rows:
                assert row[2] <= row[3]  # pva-sdram min <= max
                assert row[4] <= row[5]  # pva-sram min <= max

    def test_text_renders(self, grid):
        text = figure7(grid).text
        assert "pva-sdram(min)" in text
        assert "copy" in text


class TestFixedStridePanels:
    def test_figure9_strides(self, grid):
        fig = figure9(grid)
        assert {row[0] for row in fig.rows} == {1, 4}

    def test_figure10_strides(self, grid):
        fig = figure10(grid)
        assert {row[0] for row in fig.rows} == {16, 19}

    def test_normalization_annotations(self, grid):
        fig = figure9(grid)
        for row in fig.rows:
            assert row[6].endswith("%")


class TestFigure11:
    def test_rows_cover_stride_by_alignment(self, grid):
        fig = figure11(grid, kernel="vaxpy")
        assert len(fig.rows) == 4 * 3  # strides x alignments

    def test_leftmost_bar_is_100_percent(self, grid):
        fig = figure11(grid, kernel="vaxpy")
        assert fig.rows[0][4] == "100%"

    def test_sram_ratio_column(self, grid):
        fig = figure11(grid, kernel="vaxpy")
        for row in fig.rows:
            ratio = int(row[5].rstrip("%"))
            assert ratio <= 100  # SRAM never slower than SDRAM

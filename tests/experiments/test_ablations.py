"""Tests for the ablation studies."""

import pytest

from repro.experiments.ablations import (
    ablate_bank_scaling,
    ablate_bypass_paths,
    ablate_row_policy,
    ablate_vector_contexts,
)


class TestRowPolicyAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        rows, text = ablate_row_policy(
            kernels=("scale",), strides=(1, 16), elements=128
        )
        return rows

    def test_all_policies_complete(self, rows):
        for row in rows:
            assert all(cycles > 0 for cycles in row[2:])

    def test_paper_policy_not_worse_than_close_at_unit_stride(self, rows):
        by_key = {(r[0], r[1]): r for r in rows}
        kernel, stride, paper, close, open_, history = by_key[("scale", 1)]
        assert paper <= close * 1.05


class TestVectorContextAblation:
    def test_more_contexts_never_hurt_much(self):
        rows, _ = ablate_vector_contexts(
            kernel="scale", strides=(16,), context_counts=(1, 4), elements=128
        )
        (kernel, stride, one_vc, four_vc), = rows
        assert four_vc <= one_vc * 1.05

    def test_row_format(self):
        rows, text = ablate_vector_contexts(
            kernel="copy", strides=(1,), context_counts=(1, 2), elements=64
        )
        assert len(rows) == 1
        assert "1 VC" in text


class TestBypassAblation:
    def test_bypass_saves_latency_on_idle_unit(self):
        rows, _ = ablate_bypass_paths(strides=(1, 7))
        for stride, with_bypass, without, saved in rows:
            assert saved >= 1

    def test_non_power_of_two_exercises_fhc_path(self):
        rows, _ = ablate_bypass_paths(strides=(1, 7))
        by_stride = {r[0]: r for r in rows}
        # The odd stride pays the FHC multiply-add either way.
        assert by_stride[7][1] >= by_stride[1][1]


class TestSubcommandLatencyAblation:
    def test_pipelined_hides_latency(self):
        from repro.experiments.ablations import ablate_subcommand_latency

        rows, text = ablate_subcommand_latency(
            kernel="copy", strides=(19,), latencies=(2, 13), elements=128
        )
        by_key = {(r[0], r[1]): r[2:] for r in rows}
        fast, slow = by_key[(19, "pipelined")]
        assert slow <= fast * 1.1
        s_fast, s_slow = by_key[(19, "single request")]
        assert s_slow > s_fast
        assert "fhc=13" in text


class TestRefreshAblation:
    def test_monotone_tax(self):
        from repro.experiments.ablations import ablate_refresh

        rows, text = ablate_refresh(
            kernel="scale", stride=16, intervals=(0, 400, 100), elements=128
        )
        cycles = [r[1] for r in rows]
        assert cycles == sorted(cycles)
        assert rows[0][0] == "off"
        assert "overhead" in text


class TestBankScalingAblation:
    def test_more_banks_faster_at_prime_stride(self):
        rows, _ = ablate_bank_scaling(
            kernel="copy", stride=19, banks=(4, 16), elements=128
        )
        by_banks = {r[0]: r for r in rows}
        assert by_banks[16][1] <= by_banks[4][1]

    def test_pla_columns_present(self):
        rows, _ = ablate_bank_scaling(banks=(4, 8), elements=64)
        for banks, cycles, k1_terms, ki_terms in rows:
            assert k1_terms == banks
            assert ki_terms > k1_terms

"""Tests for the one-shot artifact generator."""

from repro.experiments.report_all import generate_all


class TestGenerateAll:
    def test_writes_every_artifact(self, tmp_path):
        messages = []
        written = generate_all(
            out_dir=tmp_path, elements=64, progress=messages.append
        )
        assert len(written) >= 12
        expected = {
            "figure7",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
            "table1",
            "headline",
            "ablation_row_policy",
            "ablation_vector_contexts",
            "ablation_bypass",
            "ablation_bank_scaling",
            "alignment_study",
        }
        assert expected <= set(written)
        for path in written.values():
            assert path.exists()
            assert path.read_text().strip()
        assert len(messages) == len(written)

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "artifacts"
        generate_all(out_dir=target, elements=64)
        assert target.is_dir()
        assert (target / "figure7.txt").exists()

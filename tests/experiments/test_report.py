"""Tests for the plain-text report helpers."""

from repro.experiments.report import format_percent, format_table


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(1.0) == "100%"
        assert format_percent(0.5) == "50%"
        assert format_percent(32.78) == "3278%"

    def test_rounds(self):
        assert format_percent(1.064) == "106%"
        assert format_percent(1.066) == "107%"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ("name", "value"), [("a", 1), ("longer", 123456)]
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        # Columns line up: 'value' header over the numbers.
        header_col = lines[0].index("value")
        assert lines[2][header_col] == "1" or lines[2][header_col] == " "

    def test_stringifies_everything(self):
        text = format_table(("a",), [(None,), (3.5,)])
        assert "None" in text
        assert "3.5" in text

    def test_empty_rows(self):
        text = format_table(("x", "y"), [])
        assert "x" in text
        assert len(text.splitlines()) == 2

"""Tests for the matrix-walk workload generators."""

import pytest

from repro.errors import ConfigurationError
from repro.params import SystemParams
from repro.pva.system import PVAMemorySystem
from repro.types import AccessType
from repro.workloads.matrix import (
    MatrixLayout,
    column_walk,
    diagonal_walk,
    matrix_vector_by_diagonals,
    row_walk,
    transpose,
)

PROTO = SystemParams()


@pytest.fixture
def matrix():
    return MatrixLayout(base=0, rows=64, cols=48)


class TestLayout:
    def test_addressing(self, matrix):
        assert matrix.address(0, 0) == 0
        assert matrix.address(1, 0) == 48
        assert matrix.address(2, 5) == 101
        assert matrix.words == 64 * 48

    def test_bounds(self, matrix):
        with pytest.raises(ConfigurationError):
            matrix.address(64, 0)
        with pytest.raises(ConfigurationError):
            matrix.address(0, 48)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MatrixLayout(base=-1, rows=2, cols=2)
        with pytest.raises(ConfigurationError):
            MatrixLayout(base=0, rows=0, cols=2)


class TestWalks:
    def test_row_walk_unit_stride(self, matrix):
        commands = row_walk(matrix, row=3, params=PROTO)
        assert all(c.vector.stride == 1 for c in commands)
        assert sum(c.vector.length for c in commands) == 48
        assert commands[0].vector.base == matrix.address(3, 0)

    def test_column_walk_stride_is_width(self, matrix):
        commands = column_walk(matrix, col=7, params=PROTO)
        assert all(c.vector.stride == 48 for c in commands)
        assert sum(c.vector.length for c in commands) == 64

    def test_diagonal_walk_stride(self, matrix):
        commands = diagonal_walk(matrix, params=PROTO)
        assert all(c.vector.stride == 49 for c in commands)
        assert sum(c.vector.length for c in commands) == 48

    def test_column_walk_gathers_correct_data(self, matrix):
        system = PVAMemorySystem(PROTO)
        for r in range(matrix.rows):
            for c in range(matrix.cols):
                system.poke(matrix.address(r, c), r * 100 + c)
        commands = column_walk(matrix, col=9, params=PROTO)
        result = system.run(commands, capture_data=True)
        column = [v for line in result.read_lines for v in line]
        assert column == [r * 100 + 9 for r in range(matrix.rows)]


class TestTranspose:
    def test_dimension_check(self, matrix):
        bad = MatrixLayout(base=10_000, rows=64, cols=48)
        with pytest.raises(ConfigurationError):
            transpose(matrix, bad, params=PROTO)

    def test_transpose_functional(self):
        source = MatrixLayout(base=0, rows=32, cols=32)
        destination = MatrixLayout(base=1 << 16, rows=32, cols=32)
        system = PVAMemorySystem(PROTO)
        for r in range(32):
            for c in range(32):
                system.poke(source.address(r, c), r * 1000 + c)
        # Writes in the transpose trace carry the gathered data in a real
        # controller; here the trace uses placeholder data, so check the
        # *structure*: reads of row r pair with writes of column r.
        commands = transpose(source, destination, params=PROTO)
        assert len(commands) == 64  # 32 rows x (1 read + 1 write chunk)
        assert commands[0].access is AccessType.READ
        assert commands[1].access is AccessType.WRITE
        assert commands[1].vector.stride == 32
        result = PVAMemorySystem(PROTO).run(commands)
        assert result.commands == 64


class TestMatrixVectorByDiagonals:
    def test_command_pattern_is_vaxpy(self, matrix):
        commands = matrix_vector_by_diagonals(
            matrix, x_base=1 << 17, y_base=1 << 18, diagonals=3, params=PROTO
        )
        # Per diagonal and per chunk: read diag, read x, read y, write y.
        reads = sum(1 for c in commands if c.access is AccessType.READ)
        writes = len(commands) - reads
        assert reads == 3 * writes

    def test_too_many_diagonals(self, matrix):
        with pytest.raises(ConfigurationError):
            matrix_vector_by_diagonals(
                matrix, x_base=0, y_base=0, diagonals=49, params=PROTO
            )

"""Tests for the seeded random trace generator."""

import pytest

from repro.errors import ConfigurationError
from repro.params import SystemParams
from repro.pva.system import PVAMemorySystem
from repro.types import ExplicitCommand, VectorCommand
from repro.workloads.random_traces import RandomTraceConfig, random_trace

PROTO = SystemParams()


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = random_trace(7, PROTO)
        b = random_trace(7, PROTO)
        assert a == b

    def test_different_seeds_differ(self):
        assert random_trace(1, PROTO) != random_trace(2, PROTO)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RandomTraceConfig(commands=0)
        with pytest.raises(ConfigurationError):
            RandomTraceConfig(write_fraction=1.5)
        with pytest.raises(ConfigurationError):
            RandomTraceConfig(explicit_fraction=-0.1)
        with pytest.raises(ConfigurationError):
            RandomTraceConfig(max_stride=0)

    def test_command_count(self):
        trace = random_trace(
            3, PROTO, RandomTraceConfig(commands=17)
        )
        assert len(trace) == 17

    def test_all_reads_when_fraction_zero(self):
        trace = random_trace(
            5, PROTO, RandomTraceConfig(commands=40, write_fraction=0.0)
        )
        assert all(c.access.is_read for c in trace)

    def test_explicit_fraction_one(self):
        trace = random_trace(
            5,
            PROTO,
            RandomTraceConfig(commands=20, explicit_fraction=1.0),
        )
        assert all(isinstance(c, ExplicitCommand) for c in trace)

    def test_variable_lengths(self):
        trace = random_trace(
            11,
            PROTO,
            RandomTraceConfig(commands=60, full_lines=False),
        )
        lengths = {
            c.length if isinstance(c, ExplicitCommand) else c.vector.length
            for c in trace
        }
        assert len(lengths) > 3
        assert max(lengths) <= PROTO.cache_line_words


class TestRunnability:
    def test_mixed_trace_runs_on_pva(self):
        trace = random_trace(
            99,
            PROTO,
            RandomTraceConfig(
                commands=24, explicit_fraction=0.3, full_lines=False
            ),
        )
        result = PVAMemorySystem(PROTO).run(trace, capture_data=True)
        assert result.commands == 24
        assert result.cycles > 0
        reads = sum(1 for c in trace if c.access.is_read)
        assert len(result.read_lines) == reads

    def test_write_commands_carry_data(self):
        trace = random_trace(
            4, PROTO, RandomTraceConfig(commands=50, write_fraction=1.0)
        )
        assert all(c.data is not None for c in trace)

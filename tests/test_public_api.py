"""Public-API surface checks."""

import pathlib

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_matches_pyproject(self):
        pyproject = (
            pathlib.Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
        )
        text = pyproject.read_text()
        assert f'version = "{repro.__version__}"' in text

    def test_quickstart_snippet(self):
        """The README's quickstart must keep working verbatim."""
        from repro import (
            SystemParams,
            build_trace,
            kernel_by_name,
            simulate,
        )

        params = SystemParams()
        trace = build_trace(
            kernel_by_name("copy"), stride=4, params=params, elements=64
        )
        result = simulate(trace, params, system="pva-sdram")
        assert result.cycles > 0
        assert "cycles" in result.summary()

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.baselines
        import repro.bus
        import repro.cache
        import repro.cli
        import repro.core
        import repro.experiments
        import repro.extensions
        import repro.interleave
        import repro.kernels
        import repro.pva
        import repro.sdram
        import repro.sim
        import repro.sram
        import repro.vm
        import repro.workloads

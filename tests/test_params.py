"""Tests for the configuration dataclasses."""

import pytest

from repro.errors import ConfigurationError
from repro.params import (
    SDRAMTiming,
    SRAMTiming,
    SystemParams,
    is_power_of_two,
    log2_exact,
)


class TestHelpers:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(-4)
        assert not is_power_of_two(12)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(16) == 4
        with pytest.raises(ConfigurationError):
            log2_exact(12)


class TestSDRAMTiming:
    def test_paper_defaults(self):
        timing = SDRAMTiming()
        assert timing.t_rcd == 2
        assert timing.cas_latency == 2
        assert timing.internal_banks == 4
        assert timing.row_words == 512

    def test_row_miss_penalty(self):
        assert SDRAMTiming().row_miss_penalty == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SDRAMTiming(t_rcd=0)
        with pytest.raises(ConfigurationError):
            SDRAMTiming(internal_banks=3)
        with pytest.raises(ConfigurationError):
            SDRAMTiming(row_words=500)
        with pytest.raises(ConfigurationError):
            SDRAMTiming(t_wr=-1)


class TestSRAMTiming:
    def test_default(self):
        assert SRAMTiming().access_cycles == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SRAMTiming(access_cycles=0)


class TestSystemParams:
    def test_prototype_defaults(self):
        params = SystemParams()
        assert params.num_banks == 16
        assert params.bank_bits == 4
        assert params.cache_line_words == 32
        assert params.line_bytes == 128
        assert params.max_transactions == 8
        assert params.num_vector_contexts == 4
        assert params.stage_cycles == 16
        assert params.max_vector_length == 32
        assert params.row_policy == "paper"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SystemParams(num_banks=12)
        with pytest.raises(ConfigurationError):
            SystemParams(cache_line_words=33)
        with pytest.raises(ConfigurationError):
            SystemParams(max_transactions=0)
        with pytest.raises(ConfigurationError):
            SystemParams(max_transactions=9)  # 3-bit transaction id
        with pytest.raises(ConfigurationError):
            SystemParams(num_vector_contexts=0)
        with pytest.raises(ConfigurationError):
            SystemParams(request_fifo_depth=4)  # < max_transactions
        with pytest.raises(ConfigurationError):
            SystemParams(fhc_latency=0)
        with pytest.raises(ConfigurationError):
            SystemParams(bus_turnaround=-1)
        with pytest.raises(ConfigurationError):
            SystemParams(issue_interval=-1)

    def test_issue_interval_defaults_to_infinitely_fast_cpu(self):
        assert SystemParams().issue_interval == 0

    def test_refresh_validation(self):
        with pytest.raises(ConfigurationError):
            SDRAMTiming(refresh_interval=-1)
        with pytest.raises(ConfigurationError):
            SDRAMTiming(t_rfc=0)

    def test_with_banks(self):
        params = SystemParams().with_banks(8)
        assert params.num_banks == 8
        assert params.cache_line_words == 32  # everything else preserved

    def test_describe(self):
        description = SystemParams().describe()
        assert description["num_banks"] == 16
        assert description["stage_cycles"] == 16
        assert description["t_rcd"] == 2

    def test_describe_covers_every_config_knob(self):
        """The summary is derived from the canonical to_dict() — the
        knobs it historically omitted must all be present."""
        description = SystemParams().describe()
        for key, value in {
            "row_policy": "paper",
            "bypass_paths": True,
            "bus_turnaround": 1,
            "issue_interval": 0,
            "t_wr": 1,
            "refresh_interval": 0,
            "t_rfc": 8,
            "num_channels": 1,
            "ranks_per_channel": 1,
            "banks_per_rank": 16,
            "sram_access_cycles": 1,
            "channel_stage_cycles": 16,
        }.items():
            assert description[key] == value, key

    def test_describe_distinguishes_formerly_invisible_variants(self):
        base = SystemParams()
        for variant in (
            SystemParams(row_policy="close"),
            SystemParams(bypass_paths=False),
            SystemParams(bus_turnaround=2),
            SystemParams(issue_interval=7),
        ):
            assert variant.describe() != base.describe()

    def test_topology_validation(self):
        with pytest.raises(ConfigurationError):
            SystemParams(num_channels=3)
        with pytest.raises(ConfigurationError):
            SystemParams(ranks_per_channel=0)
        with pytest.raises(ConfigurationError):
            # 32 channel/rank ways cannot fit in 16 banks.
            SystemParams(num_banks=16, num_channels=32)
        with pytest.raises(ConfigurationError):
            # 8 channels cannot split an 8-word line's 4 stage cycles.
            SystemParams(cache_line_words=8, num_banks=8, num_channels=8)

    def test_channel_stage_cycles(self):
        assert SystemParams().channel_stage_cycles == 16
        assert SystemParams(num_channels=2).channel_stage_cycles == 8
        assert SystemParams(num_channels=4).channel_stage_cycles == 4

    def test_topology_property(self):
        topo = SystemParams(num_channels=2, ranks_per_channel=2).topology
        assert topo.num_channels == 2
        assert topo.ranks_per_channel == 2
        assert topo.banks_per_rank == 4
        assert topo.total_banks == 16


class TestSimMode:
    """The validated sim_mode ladder and its deprecated boolean aliases."""

    def test_default_resolves_to_precompute(self):
        params = SystemParams()
        assert params.sim_mode == "precompute"
        # The deprecated alias fields are always folded away.
        assert params.time_skip is None
        assert params.precompute is None

    def test_mode_ladder_implies_aspects(self):
        assert SystemParams(sim_mode="tick").uses_time_skip is False
        assert SystemParams(sim_mode="tick").uses_precompute is False
        assert SystemParams(sim_mode="skip").uses_time_skip is True
        assert SystemParams(sim_mode="skip").uses_precompute is False
        pre = SystemParams(sim_mode="precompute")
        assert pre.uses_time_skip is True
        assert pre.uses_precompute is True
        soa = SystemParams(sim_mode="soa")
        assert soa.uses_time_skip is True
        assert soa.uses_precompute is True
        assert soa.sim_mode == "soa"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemParams(sim_mode="warp")

    def test_legacy_booleans_warn_and_map_onto_the_ladder(self):
        cases = {
            (False, False): "tick",
            (False, True): "tick",
            (True, False): "skip",
            (True, True): "precompute",
            (False, None): "tick",
            (True, None): "precompute",
            (None, False): "skip",
            (None, True): "precompute",
        }
        for (time_skip, precompute), expected in cases.items():
            with pytest.deprecated_call():
                params = SystemParams(
                    time_skip=time_skip, precompute=precompute
                )
            assert params.sim_mode == expected, (time_skip, precompute)
            assert params.time_skip is None
            assert params.precompute is None

    def test_boolean_alias_plus_sim_mode_is_a_contradiction(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError):
                SystemParams(sim_mode="precompute", time_skip=False)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError):
                SystemParams(sim_mode="soa", precompute=False)

    def test_legacy_equals_modern_construction(self):
        with pytest.deprecated_call():
            legacy = SystemParams(time_skip=True, precompute=False)
        assert legacy == SystemParams(sim_mode="skip")
        assert hash(legacy) == hash(SystemParams(sim_mode="skip"))

    def test_replace_round_trip_is_stable(self):
        from dataclasses import replace

        for mode in ("tick", "skip", "precompute", "soa", "window"):
            params = SystemParams(sim_mode=mode)
            again = replace(params, num_banks=8)
            assert again.sim_mode == mode
            # ... and switching modes via replace() needs no aliases.
            assert replace(params, sim_mode="tick").sim_mode == "tick"

    def test_hashable_and_equal(self):
        a = SystemParams(sim_mode="soa")
        b = SystemParams(sim_mode="soa")
        assert a == b
        assert hash(a) == hash(b)
        assert a != SystemParams(sim_mode="precompute")

    def test_env_override_forces_mode(self, monkeypatch):
        from repro.params import ENV_SIM_MODE

        monkeypatch.setenv(ENV_SIM_MODE, "soa")
        params = SystemParams(sim_mode="tick")
        assert params.sim_mode == "soa"
        assert params.uses_time_skip is True
        assert params.uses_precompute is True
        monkeypatch.setenv(ENV_SIM_MODE, "auto")
        assert SystemParams(sim_mode="tick").sim_mode == "tick"
        monkeypatch.setenv(ENV_SIM_MODE, "hyperdrive")
        with pytest.raises(ConfigurationError):
            SystemParams()

    def test_describe_reports_mode(self):
        assert SystemParams(sim_mode="soa").describe()["sim_mode"] == "soa"

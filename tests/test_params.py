"""Tests for the configuration dataclasses."""

import pytest

from repro.errors import ConfigurationError
from repro.params import (
    SDRAMTiming,
    SRAMTiming,
    SystemParams,
    is_power_of_two,
    log2_exact,
)


class TestHelpers:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(-4)
        assert not is_power_of_two(12)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(16) == 4
        with pytest.raises(ConfigurationError):
            log2_exact(12)


class TestSDRAMTiming:
    def test_paper_defaults(self):
        timing = SDRAMTiming()
        assert timing.t_rcd == 2
        assert timing.cas_latency == 2
        assert timing.internal_banks == 4
        assert timing.row_words == 512

    def test_row_miss_penalty(self):
        assert SDRAMTiming().row_miss_penalty == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SDRAMTiming(t_rcd=0)
        with pytest.raises(ConfigurationError):
            SDRAMTiming(internal_banks=3)
        with pytest.raises(ConfigurationError):
            SDRAMTiming(row_words=500)
        with pytest.raises(ConfigurationError):
            SDRAMTiming(t_wr=-1)


class TestSRAMTiming:
    def test_default(self):
        assert SRAMTiming().access_cycles == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SRAMTiming(access_cycles=0)


class TestSystemParams:
    def test_prototype_defaults(self):
        params = SystemParams()
        assert params.num_banks == 16
        assert params.bank_bits == 4
        assert params.cache_line_words == 32
        assert params.line_bytes == 128
        assert params.max_transactions == 8
        assert params.num_vector_contexts == 4
        assert params.stage_cycles == 16
        assert params.max_vector_length == 32
        assert params.row_policy == "paper"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SystemParams(num_banks=12)
        with pytest.raises(ConfigurationError):
            SystemParams(cache_line_words=33)
        with pytest.raises(ConfigurationError):
            SystemParams(max_transactions=0)
        with pytest.raises(ConfigurationError):
            SystemParams(max_transactions=9)  # 3-bit transaction id
        with pytest.raises(ConfigurationError):
            SystemParams(num_vector_contexts=0)
        with pytest.raises(ConfigurationError):
            SystemParams(request_fifo_depth=4)  # < max_transactions
        with pytest.raises(ConfigurationError):
            SystemParams(fhc_latency=0)
        with pytest.raises(ConfigurationError):
            SystemParams(bus_turnaround=-1)
        with pytest.raises(ConfigurationError):
            SystemParams(issue_interval=-1)

    def test_issue_interval_defaults_to_infinitely_fast_cpu(self):
        assert SystemParams().issue_interval == 0

    def test_refresh_validation(self):
        with pytest.raises(ConfigurationError):
            SDRAMTiming(refresh_interval=-1)
        with pytest.raises(ConfigurationError):
            SDRAMTiming(t_rfc=0)

    def test_with_banks(self):
        params = SystemParams().with_banks(8)
        assert params.num_banks == 8
        assert params.cache_line_words == 32  # everything else preserved

    def test_describe(self):
        description = SystemParams().describe()
        assert description["num_banks"] == 16
        assert description["stage_cycles"] == 16
        assert description["t_rcd"] == 2


class TestSimMode:
    """The validated sim_mode ladder and its legacy boolean aliases."""

    def test_default_resolves_to_precompute(self):
        params = SystemParams()
        assert params.sim_mode == "precompute"
        assert params.time_skip is True
        assert params.precompute is True

    def test_mode_ladder_implies_aspects(self):
        assert SystemParams(sim_mode="tick").time_skip is False
        assert SystemParams(sim_mode="tick").precompute is False
        assert SystemParams(sim_mode="skip").time_skip is True
        assert SystemParams(sim_mode="skip").precompute is False
        soa = SystemParams(sim_mode="soa")
        assert soa.time_skip is True
        assert soa.precompute is True
        assert soa.sim_mode == "soa"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemParams(sim_mode="warp")

    def test_legacy_booleans_still_resolve_a_label(self):
        assert SystemParams(time_skip=False, precompute=False).sim_mode == "tick"
        assert SystemParams(time_skip=True, precompute=False).sim_mode == "skip"
        assert (
            SystemParams(time_skip=False, precompute=True).sim_mode
            == "precompute"
        )

    def test_explicit_boolean_overrides_mode_aspect(self):
        # Back-compat: replace(params, time_skip=False) on a precompute
        # config drops to the tick loop but keeps the schedule tables.
        params = SystemParams(sim_mode="precompute", time_skip=False)
        assert params.time_skip is False
        assert params.precompute is True
        assert params.sim_mode == "precompute"

    def test_soa_requires_precompute(self):
        with pytest.raises(ConfigurationError):
            SystemParams(sim_mode="soa", precompute=False)

    def test_replace_round_trip_is_stable(self):
        from dataclasses import replace

        for mode in ("tick", "skip", "precompute", "soa"):
            params = SystemParams(sim_mode=mode)
            again = replace(params, num_banks=8)
            assert again.sim_mode == mode

    def test_hashable_and_equal(self):
        a = SystemParams(sim_mode="soa")
        b = SystemParams(sim_mode="soa")
        assert a == b
        assert hash(a) == hash(b)
        assert a != SystemParams(sim_mode="precompute")

    def test_env_override_forces_mode(self, monkeypatch):
        from repro.params import ENV_SIM_MODE

        monkeypatch.setenv(ENV_SIM_MODE, "soa")
        params = SystemParams(sim_mode="tick")
        assert params.sim_mode == "soa"
        assert params.time_skip is True
        assert params.precompute is True
        monkeypatch.setenv(ENV_SIM_MODE, "auto")
        assert SystemParams(sim_mode="tick").sim_mode == "tick"
        monkeypatch.setenv(ENV_SIM_MODE, "hyperdrive")
        with pytest.raises(ConfigurationError):
            SystemParams()

    def test_describe_reports_mode(self):
        assert SystemParams(sim_mode="soa").describe()["sim_mode"] == "soa"

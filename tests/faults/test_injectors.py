"""Unit tests for the deterministic fault injectors."""

import pytest

from repro.api import available_systems, build_system, unregister_system
from repro.errors import (
    ConfigurationError,
    ReproError,
    SimulationTimeout,
)
from repro.faults import (
    FAULT_SYSTEM_NAMES,
    CycleBurnerSystem,
    InjectedFault,
    RaisingSystem,
    TransientFaultSystem,
    WorkerKillerSystem,
    install_fault_systems,
    uninstall_fault_systems,
)
from repro.kernels import build_trace, kernel_by_name
from repro.params import SystemParams


@pytest.fixture
def trace():
    return build_trace(
        kernel_by_name("copy"), stride=1, params=SystemParams(), elements=64
    )


def _healthy(params=None):
    return build_system("pva-sdram", params or SystemParams())


class TestRaisingSystem:
    def test_raises_on_designated_command(self, trace):
        system = RaisingSystem(_healthy(), fail_on_command=0)
        with pytest.raises(InjectedFault):
            system.run(trace)

    def test_fault_is_a_repro_error(self, trace):
        with pytest.raises(ReproError):
            RaisingSystem(_healthy()).run(trace)

    def test_short_traces_run_clean(self, trace):
        system = RaisingSystem(_healthy(), fail_on_command=len(trace))
        reference = _healthy().run(trace).cycles
        assert system.run(trace).cycles == reference


class TestTransientFaultSystem:
    def test_fails_once_then_heals(self, tmp_path, trace):
        marker = tmp_path / "attempted"
        reference = _healthy().run(trace).cycles
        system = TransientFaultSystem(_healthy(), marker=marker)
        with pytest.raises(InjectedFault):
            system.run(trace)
        assert marker.exists()
        assert system.run(trace).cycles == reference
        # a fresh instance sharing the marker also sees the healed state
        other = TransientFaultSystem(_healthy(), marker=marker)
        assert other.run(trace).cycles == reference


class TestCycleBurnerSystem:
    def test_contained_by_watchdog(self, trace):
        with pytest.raises(SimulationTimeout):
            CycleBurnerSystem().run(trace)


class TestWorkerKillerSystem:
    def test_claimed_marker_delegates_to_inner(self, tmp_path, trace):
        """Only the marker's claimant dies; later attempts run clean.
        (The kill path itself is exercised through the engine pool in
        tests/engine/test_resilience.py — inline it would kill pytest.)
        """
        marker = tmp_path / "fired"
        marker.write_text("already fired")
        system = WorkerKillerSystem(_healthy(), marker=marker)
        assert system.run(trace).cycles == _healthy().run(trace).cycles


class TestRegistry:
    def test_install_and_uninstall(self, tmp_path):
        names = install_fault_systems(state_dir=tmp_path)
        try:
            assert set(names) == {
                "raising",
                "burner",
                "killer",
                "slow",
                "transient",
                "killer-once",
            }
            for name in names.values():
                assert name in available_systems()
        finally:
            uninstall_fault_systems()
        for name in FAULT_SYSTEM_NAMES.values():
            assert name not in available_systems()

    def test_install_without_state_dir_skips_stateful_injectors(self):
        names = install_fault_systems()
        try:
            assert "transient" not in names
            assert "killer-once" not in names
            assert "raising" in names
        finally:
            uninstall_fault_systems()

    def test_unregister_unknown_raises_unless_missing_ok(self):
        with pytest.raises(ConfigurationError):
            unregister_system("no-such-system")
        unregister_system("no-such-system", missing_ok=True)

"""The tick-vs-skip benchmark harness (``python -m repro bench``)."""

from __future__ import annotations

import json

import pytest

from repro.bench import HEADLINE_STRIDE, format_bench, run_bench
from repro.cli import main
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def quick_report():
    """One tiny benchmark run shared by the assertions below."""
    return run_bench(
        elements=64, repeats=1, quick=True, systems=("pva-sdram",)
    )


class TestRunBench:
    def test_report_shape(self, quick_report):
        report = quick_report
        assert report["stride"] == HEADLINE_STRIDE
        assert report["quick"] is True
        entry = report["systems"]["pva-sdram"]
        for field in (
            "simulated_cycles",
            "tick_seconds",
            "skip_seconds",
            "tick_cycles_per_second",
            "skip_cycles_per_second",
            "speedup",
        ):
            assert field in entry, field
        assert entry["simulated_cycles"] > 0
        assert entry["tick_seconds"] > 0
        assert entry["skip_seconds"] > 0
        assert report["grid"]["tick_seconds"] > 0
        assert report["speedup"] > 0

    def test_report_carries_attribution(self, quick_report):
        entry = quick_report["systems"]["pva-sdram"]
        attribution = entry["attribution"]
        assert "front-end" in attribution
        assert any(name.startswith("bank-") for name in attribution)
        for buckets in attribution.values():
            total = buckets["busy"] + buckets["stalled"] + buckets["idle"]
            assert total == entry["simulated_cycles"]

    def test_report_is_json_serializable(self, quick_report):
        parsed = json.loads(json.dumps(quick_report))
        assert parsed["systems"]["pva-sdram"]["simulated_cycles"] > 0

    def test_format_renders_every_system(self, quick_report):
        text = format_bench(quick_report)
        assert "pva-sdram" in text
        assert "speedup" in text

    def test_unknown_system_rejected(self):
        with pytest.raises(ConfigurationError):
            run_bench(elements=16, quick=True, systems=("no-such-system",))

    def test_soa_section_shape_and_cross_checks(self, quick_report):
        entry = quick_report["soa"]
        assert entry["system"] == "pva-sdram"
        # The run itself is the cross-check: run_bench raises unless the
        # SoA backend reproduced the tick loop's cycles and ledger.
        dense = quick_report["systems"]["pva-sdram"]
        assert entry["simulated_cycles"] == dense["simulated_cycles"]
        assert entry["attribution"] == dense["attribution"]
        for buckets in entry["attribution"].values():
            total = buckets["busy"] + buckets["stalled"] + buckets["idle"]
            assert total == entry["simulated_cycles"]
        assert entry["soa_seconds"] > 0
        assert entry["soa_cycles_per_second"] > 0
        assert entry["baseline_recorded_cycles_per_second"] == 38600.0
        assert (
            entry["baseline_measured_cycles_per_second"]
            == dense["skip_cycles_per_second"]
        )
        assert entry["speedup_vs_recorded_baseline"] > 0
        assert entry["speedup_vs_measured_precompute"] > 0

    def test_precompute_section_surfaces_measured_baseline(self, quick_report):
        entry = quick_report["precompute"]
        assert (
            entry["measured_incremental_cycles_per_second"]
            == entry["incremental_cycles_per_second"]
        )
        assert entry["baseline_tick_cycles_per_second"] == 18099.8

    def test_report_header_records_canonical_config(self, quick_report):
        from repro.params import SystemParams

        config = quick_report["config"]
        assert config["topology"] == {
            "num_channels": 1,
            "ranks_per_channel": 1,
            "banks_per_rank": 16,
        }
        assert quick_report["config_key"] == (
            SystemParams.from_dict(config).config_key()
        )

    def test_env_overrides_suspended_during_bench(self, monkeypatch):
        # A forced global mode must not leak into the benchmark's
        # backend matrix (each section times what it claims to time).
        from repro.params import ENV_SIM_MODE
        from repro.sim.events import ENV_TOGGLE

        monkeypatch.setenv(ENV_SIM_MODE, "tick")
        monkeypatch.setenv(ENV_TOGGLE, "0")
        report = run_bench(
            elements=64, repeats=1, quick=True, systems=("pva-sdram",)
        )
        assert report["soa"]["soa_cycles_per_second"] > 0
        # The overrides are restored afterwards.
        import os

        assert os.environ[ENV_SIM_MODE] == "tick"
        assert os.environ[ENV_TOGGLE] == "0"

    def test_format_renders_soa_and_baselines(self, quick_report):
        text = format_bench(quick_report)
        assert "SoA bank automaton" in text
        assert "recorded" in text
        assert "measured" in text

    def test_window_section_shape_and_cross_checks(self, quick_report):
        entry = quick_report["window"]
        assert entry["system"] == "pva-sdram"
        # The run itself is the cross-check: run_bench raises unless the
        # window backend reproduced the tick loop's cycles and ledger.
        dense = quick_report["systems"]["pva-sdram"]
        assert entry["simulated_cycles"] == dense["simulated_cycles"]
        assert entry["attribution"] == dense["attribution"]
        for buckets in entry["attribution"].values():
            total = buckets["busy"] + buckets["stalled"] + buckets["idle"]
            assert total == entry["simulated_cycles"]
        assert entry["window_seconds"] > 0
        assert entry["window_cycles_per_second"] > 0
        assert entry["baseline_recorded_soa_cycles_per_second"] == 66195.1
        soa = quick_report["soa"]
        assert (
            entry["baseline_measured_soa_cycles_per_second"]
            == soa["soa_cycles_per_second"]
        )
        assert entry["speedup_vs_recorded_soa"] > 0
        assert entry["speedup_vs_measured_soa"] > 0

    def test_format_renders_window(self, quick_report):
        text = format_bench(quick_report)
        assert "closed-form window backend" in text
        assert "vs measured SoA" in text

    def test_history_record_shape(self, quick_report):
        from repro.bench import history_record

        record = history_record(quick_report)
        assert record["quick"] is True
        assert record["elements"] == 64
        assert record["stride"] == HEADLINE_STRIDE
        assert record["config_key"] == quick_report["config_key"]
        for field in (
            "tick_cycles_per_second",
            "skip_cycles_per_second",
            "precompute_cycles_per_second",
            "soa_cycles_per_second",
            "window_cycles_per_second",
            "window_speedup_vs_measured_soa",
        ):
            assert record[field] > 0, field
        # One JSONL line, not a nested report.
        assert "\n" not in json.dumps(record)


class TestBenchCLI:
    def test_quick_bench_writes_report_and_history(self, tmp_path, capsys):
        out = tmp_path / "BENCH_sim.json"
        history = tmp_path / "BENCH_history.jsonl"
        code = main(
            [
                "bench",
                "--quick",
                "--elements",
                "64",
                "--repeats",
                "1",
                "--system",
                "pva-sdram",
                "--out",
                str(out),
                "--history",
                str(history),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["systems"]["pva-sdram"]["simulated_cycles"] > 0
        lines = history.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["config_key"] == report["config_key"]
        assert record["date"]
        assert "speedup" in capsys.readouterr().out

    def test_history_suppressed_without_report(self, tmp_path, monkeypatch):
        # --out '' means "test invocation": neither the report nor the
        # history line may touch the tracked files in the cwd.
        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "bench",
                "--quick",
                "--elements",
                "64",
                "--repeats",
                "1",
                "--system",
                "pva-sdram",
                "--out",
                "",
            ]
        )
        assert code == 0
        assert list(tmp_path.iterdir()) == []

    def test_min_speedup_gate_fails_cleanly(self, tmp_path):
        code = main(
            [
                "bench",
                "--quick",
                "--elements",
                "64",
                "--repeats",
                "1",
                "--system",
                "pva-sdram",
                "--out",
                "",
                "--min-speedup",
                "1000",
            ]
        )
        assert code == 1

    def test_min_soa_speedup_gate_fails_cleanly(self):
        code = main(
            [
                "bench",
                "--quick",
                "--elements",
                "64",
                "--repeats",
                "1",
                "--system",
                "pva-sdram",
                "--out",
                "",
                "--min-soa-speedup",
                "1000",
            ]
        )
        assert code == 1

    def test_min_soa_speedup_requires_soa_section(self):
        # Without pva-sdram in the workload there is no SoA section to
        # gate on; the gate fails loudly instead of passing vacuously.
        code = main(
            [
                "bench",
                "--quick",
                "--elements",
                "64",
                "--repeats",
                "1",
                "--system",
                "cacheline-serial",
                "--out",
                "",
                "--min-soa-speedup",
                "0.1",
            ]
        )
        assert code == 1

    def test_min_window_speedup_gate_fails_cleanly(self):
        code = main(
            [
                "bench",
                "--quick",
                "--elements",
                "64",
                "--repeats",
                "1",
                "--system",
                "pva-sdram",
                "--out",
                "",
                "--min-window-speedup",
                "1000",
            ]
        )
        assert code == 1

    def test_min_window_speedup_requires_window_section(self):
        code = main(
            [
                "bench",
                "--quick",
                "--elements",
                "64",
                "--repeats",
                "1",
                "--system",
                "cacheline-serial",
                "--out",
                "",
                "--min-window-speedup",
                "0.1",
            ]
        )
        assert code == 1

    def test_profile_writes_per_section_summaries(self, tmp_path):
        out = tmp_path / "report.json"
        prof = tmp_path / "prof"
        code = main(
            [
                "bench",
                "--quick",
                "--elements",
                "64",
                "--repeats",
                "1",
                "--system",
                "pva-sdram",
                "--out",
                str(out),
                "--history",
                "",
                "--profile",
                str(prof),
            ]
        )
        assert code == 0
        names = {p.name for p in prof.iterdir()}
        for section in ("tick", "skip", "soa", "window"):
            assert f"{section}-pva-sdram.txt" in names, section
        text = (prof / "window-pva-sdram.txt").read_text()
        assert "cumulative" in text

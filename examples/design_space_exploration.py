#!/usr/bin/env python3
"""Design-space exploration: the knobs a memory-controller architect
would turn, swept with the library's parametric simulator.

Covers the trade-offs chapter 5 discusses: bank count (parallelism vs
FirstHit PLA cost), vector-context window depth, row-management policy,
and the bypass paths.

Run:  python examples/design_space_exploration.py
"""

from dataclasses import replace

from repro import SystemParams, build_trace, kernel_by_name
from repro.pva import PVAMemorySystem
from repro.core.pla import pla_product_terms
from repro.experiments.ablations import ablate_bypass_paths


def sweep_banks() -> None:
    print("== Bank count: parallelism vs PLA area (stride 19, copy) ==")
    print(
        f"{'banks':>6} {'cycles':>8} {'K1 PLA terms':>13} "
        f"{'full-Ki PLA terms':>18}"
    )
    for banks in (4, 8, 16, 32):
        params = SystemParams(num_banks=banks)
        trace = build_trace(
            kernel_by_name("copy"), stride=19, params=params, elements=512
        )
        cycles = PVAMemorySystem(params).run(trace).cycles
        print(
            f"{banks:>6} {cycles:>8} "
            f"{pla_product_terms(banks, 'k1'):>13} "
            f"{pla_product_terms(banks, 'full_ki'):>18}"
        )
    print()


def sweep_vector_contexts() -> None:
    print("== Vector contexts: reordering window depth (vaxpy) ==")
    print(f"{'stride':>6}" + "".join(f"{n:>8}VC" for n in (1, 2, 4, 8)))
    base = SystemParams()
    for stride in (1, 8, 16, 19):
        row = [f"{stride:>6}"]
        for contexts in (1, 2, 4, 8):
            params = replace(base, num_vector_contexts=contexts)
            trace = build_trace(
                kernel_by_name("vaxpy"),
                stride=stride,
                params=params,
                elements=512,
            )
            row.append(f"{PVAMemorySystem(params).run(trace).cycles:>10}")
        print("".join(row))
    print()


def sweep_row_policy() -> None:
    print("== Row-management policy (scale) ==")
    policies = ("paper", "close", "open", "history")
    print(f"{'stride':>6}" + "".join(f"{p:>10}" for p in policies))
    base = SystemParams()
    for stride in (1, 8, 16, 19):
        row = [f"{stride:>6}"]
        for policy in policies:
            params = replace(base, row_policy=policy)
            trace = build_trace(
                kernel_by_name("scale"),
                stride=stride,
                params=params,
                elements=512,
            )
            row.append(f"{PVAMemorySystem(params).run(trace).cycles:>10}")
        print("".join(row))
    print()


def sweep_bypass() -> None:
    print("== Bypass paths: single-request latency into an idle unit ==")
    rows, text = ablate_bypass_paths(strides=(1, 2, 7, 8, 19))
    print(text)
    print()


def pareto_frontier() -> None:
    """The driver behind ``python -m repro explore``: sweep GenParams
    axes, prune with analytic lower bounds, report cycles vs. the
    Table-1 complexity score."""
    from repro.explore import SweepSpec, format_explore, run_explore

    print("== Pareto frontier: simulated cycles vs hardware complexity ==")
    spec = SweepSpec(
        axes={
            "num_banks": [4, 8, 16],
            "num_channels": [1, 2],
            "num_vector_contexts": [1, 4],
        },
        kernel="saxpy",
        stride=19,
        elements=256,
    )
    print(format_explore(run_explore(spec)))
    print()


def main() -> None:
    sweep_banks()
    sweep_vector_contexts()
    sweep_row_policy()
    sweep_bypass()
    pareto_frontier()
    print(
        "Observations: closed-page ('close') collapses at single-bank\n"
        "strides; the ManageRow heuristic matches the best policy\n"
        "everywhere; four vector contexts saturate the 8-transaction bus;\n"
        "and doubling banks doubles prime-stride throughput until the\n"
        "vector bus, not the DRAM, is the bottleneck."
    )


if __name__ == "__main__":
    main()

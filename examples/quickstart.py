#!/usr/bin/env python3
"""Quickstart: run a strided kernel through the PVA unit and the paper's
baseline memory systems.

This is the five-minute tour: build the prototype configuration (16 banks
of word-interleaved SDRAM behind a split-transaction vector bus), generate
the command trace of a BLAS ``copy`` over strided vectors, and compare
cycle counts across the four memory systems of the paper's evaluation.

Run:  python examples/quickstart.py
"""

from repro import (
    SystemParams,
    build_trace,
    kernel_by_name,
)
from repro.baselines import (
    CacheLineSerialSDRAM,
    GatheringSerialSDRAM,
    make_pva_sram,
)
from repro.pva import PVAMemorySystem


def main() -> None:
    params = SystemParams()  # the paper's prototype (section 5.1)
    print("Prototype configuration:")
    for key, value in params.describe().items():
        print(f"  {key:>20} = {value}")
    print()

    kernel = kernel_by_name("copy")
    header = (
        f"{'stride':>6} {'PVA-SDRAM':>10} {'PVA-SRAM':>9} "
        f"{'cacheline':>10} {'gathering':>10} {'PVA speedup':>12}"
    )
    print(header)
    print("-" * len(header))
    for stride in (1, 2, 4, 8, 16, 19):
        trace = build_trace(kernel, stride=stride, params=params)
        pva = PVAMemorySystem(params).run(trace)
        sram = make_pva_sram(params).run(trace)
        cacheline = CacheLineSerialSDRAM(params).run(trace)
        gathering = GatheringSerialSDRAM(params).run(trace)
        print(
            f"{stride:>6} {pva.cycles:>10} {sram.cycles:>9} "
            f"{cacheline.cycles:>10} {gathering.cycles:>10} "
            f"{cacheline.cycles / pva.cycles:>11.1f}x"
        )
    print()
    print(
        "Note the paper's story in the last column: parity at unit stride,\n"
        "growing wins as the stride rises, and the largest win at the\n"
        "prime stride 19, where the PVA drives all 16 banks in parallel\n"
        "while the conventional system fetches a mostly-wasted cache line\n"
        "per element group."
    )


if __name__ == "__main__":
    main()

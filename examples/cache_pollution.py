#!/usr/bin/env python3
"""Chapter 1's motivation, end to end: what a strided loop costs with a
classical cache hierarchy versus a vector-aware memory controller.

The script pushes the scalar access stream of ``for i: use x[i*S]``
through a 256 KB set-associative L2 (write-back, write-allocate), runs
the resulting line-fill traffic on the conventional memory system, and
compares against the same loop expressed as gathered vector commands on
the PVA — reporting bus traffic, cache utilization and cycles.

Run:  python examples/cache_pollution.py
"""

from repro import (
    AccessType,
    SystemParams,
    Vector,
    VectorCommand,
)
from repro.baselines import CacheLineSerialSDRAM
from repro.pva import PVAMemorySystem
from repro.cache.frontend import CacheFrontEnd

LENGTH = 1024


def main() -> None:
    params = SystemParams()
    print(
        f"strided loop over {LENGTH} elements; L2 line = "
        f"{params.line_bytes} bytes\n"
    )
    header = (
        f"{'stride':>6} {'cached words':>13} {'useful words':>13} "
        f"{'L2 util':>8} {'conv cycles':>12} {'PVA cycles':>11} {'win':>6}"
    )
    print(header)
    print("-" * len(header))
    for stride in (1, 2, 4, 8, 16, 19, 32):
        frontend = CacheFrontEnd(params)
        cached_commands = frontend.feed(
            CacheFrontEnd.strided_loop(0, stride, LENGTH)
        )
        cached_words = frontend.traffic_words(cached_commands)
        utilization = frontend.cache.stats.utilization(
            params.cache_line_words
        )
        conventional = CacheLineSerialSDRAM(params).run(cached_commands)

        vector = Vector(base=0, stride=stride, length=LENGTH)
        gathered = [
            VectorCommand(vector=piece, access=AccessType.READ)
            for piece in vector.split(params.cache_line_words)
        ]
        pva = PVAMemorySystem(params).run(gathered)

        print(
            f"{stride:>6} {cached_words:>13} {LENGTH:>13} "
            f"{utilization * 100:>7.0f}% {conventional.cycles:>12} "
            f"{pva.cycles:>11} {conventional.cycles / pva.cycles:>5.1f}x"
        )
    print(
        "\nTwo separate losses stack up for the cached path as stride\n"
        "grows: the bus moves up to 32x more words than the loop uses,\n"
        "and the cache keeps none of them useful (utilization ~ 1/stride).\n"
        "The PVA moves exactly the useful words and compacts them into\n"
        "dense lines — that is the whole paper in one table."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Impulse-style shadow address spaces (section 3.2): how a processor
with no vector instructions at all still benefits from the PVA.

The Impulse memory controller lets software map a *shadow* region whose
dense addresses alias a strided view of real memory.  The CPU then just
line-fills the shadow region — ordinary cache behaviour — and each fill
arrives at the controller as one base-stride vector command for the PVA
to gather.

The demo builds a row-major matrix, configures one shadow region per
column of interest, and reads columns as if they were dense arrays —
checking the data and comparing cycles against the conventional path.

Run:  python examples/impulse_shadow_space.py
"""

from repro import SystemParams
from repro.baselines import CacheLineSerialSDRAM
from repro.pva import PVAMemorySystem
from repro.cache.frontend import CacheFrontEnd
from repro.extensions import ShadowRegion, ShadowSpace

ROWS, COLS = 256, 96


def main() -> None:
    params = SystemParams()
    system = PVAMemorySystem(params)

    # A row-major matrix at physical word 0.
    for r in range(ROWS):
        for c in range(COLS):
            system.poke(r * COLS + c, r * 1000 + c)

    # Configure shadow regions: column c appears as a dense vector at
    # shadow base c * ROWS.  (In Impulse the OS/compiler would set this
    # up; shadow addresses here live in their own namespace.)
    space = ShadowSpace()
    for column in (3, 17, 64):
        space.configure(
            ShadowRegion(
                shadow_base=column * ROWS,
                target_base=column,
                stride=COLS,
                length=ROWS,
            )
        )

    total_cycles = 0
    for column in (3, 17, 64):
        commands = space.fill_commands(column * ROWS, ROWS, params)
        result = system.run(commands, capture_data=True)
        dense = [v for line in result.read_lines for v in line]
        assert dense == [r * 1000 + column for r in range(ROWS)], (
            "shadow view returned wrong column data"
        )
        total_cycles += result.cycles
        print(
            f"column {column:>3}: {len(commands)} shadow line fills, "
            f"{result.cycles} cycles, data verified"
        )

    # The conventional path: the CPU's strided column loop filtered
    # through an L2, hitting the line-fill memory system.
    conventional_cycles = 0
    for column in (3, 17, 64):
        frontend = CacheFrontEnd(params)
        fills = frontend.feed(
            CacheFrontEnd.strided_loop(column, COLS, ROWS)
        )
        conventional_cycles += CacheLineSerialSDRAM(params).run(fills).cycles

    print(
        f"\nshadow-space path: {total_cycles} cycles; conventional "
        f"cached path: {conventional_cycles} cycles "
        f"({conventional_cycles / total_cycles:.1f}x)."
    )
    print(
        "The CPU-side code is identical in both cases — dense loads.\n"
        "The win comes entirely from the controller gathering the strided\n"
        "backing data instead of hauling whole lines per element."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The paper's motivating workload: walking a row-major matrix by column.

A row-major ``R x C`` matrix walked down a column is a base-stride vector
with stride ``C``: the access pattern that wrecks cache-line-fill memory
systems (one 128-byte line fetched per useful 4-byte element) and that
the PVA's scatter/gather turns back into dense lines.

The example:
  1. stores a matrix into the simulated memory,
  2. gathers one column through the PVA unit and checks the data,
  3. compares column-walk bandwidth across memory systems for several
     matrix widths — including a power-of-two width (the worst case, all
     elements in one bank) and a prime width (the best case).

Run:  python examples/matrix_column_walk.py
"""

from repro import (
    AccessType,
    SystemParams,
    Vector,
    VectorCommand,
)
from repro.baselines import CacheLineSerialSDRAM, GatheringSerialSDRAM
from repro.pva import PVAMemorySystem

ROWS = 256


def store_matrix(system: PVAMemorySystem, base: int, rows: int, cols: int):
    """Row-major matrix with recognizable element values."""
    for r in range(rows):
        for c in range(cols):
            system.poke(base + r * cols + c, r * 1000 + c)


def column_trace(base: int, rows: int, cols: int, column: int, params):
    """The command trace a column walk generates: one gathered line per
    32 column elements."""
    vector = Vector(base=base + column, stride=cols, length=rows)
    return [
        VectorCommand(vector=piece, access=AccessType.READ)
        for piece in vector.split(params.cache_line_words)
    ]


def main() -> None:
    params = SystemParams()

    # --- 1+2: functional column gather -------------------------------
    cols = 48
    system = PVAMemorySystem(params)
    store_matrix(system, base=0, rows=ROWS, cols=cols)
    trace = column_trace(0, ROWS, cols, column=5, params=params)
    result = system.run(trace, capture_data=True)
    gathered = [v for line in result.read_lines for v in line]
    expected = [r * 1000 + 5 for r in range(ROWS)]
    assert gathered == expected, "column gather returned wrong data!"
    print(
        f"Gathered column 5 of a {ROWS}x{cols} matrix: "
        f"{len(gathered)} elements in {result.cycles} cycles "
        f"({result.cycles / ROWS:.2f} cycles/element).\n"
    )

    # --- 3: bandwidth comparison across matrix widths ----------------
    print(
        f"{'matrix width':>12} {'PVA':>8} {'cacheline':>10} "
        f"{'gathering':>10}   winner"
    )
    for cols in (32, 33, 37, 48, 64, 67):
        trace = column_trace(0, ROWS, cols, column=0, params=params)
        pva = PVAMemorySystem(params).run(trace).cycles
        cache = CacheLineSerialSDRAM(params).run(trace).cycles
        gather = GatheringSerialSDRAM(params).run(trace).cycles
        best = min(pva, cache, gather)
        winner = {pva: "PVA", cache: "cacheline", gather: "gathering"}[best]
        note = ""
        if cols % params.num_banks == 0:
            note = "  (width divisible by bank count: PVA's hardest case)"
        print(
            f"{cols:>12} {pva:>8} {cache:>10} {gather:>10}   "
            f"{winner}{note}"
        )
    print(
        "\nOdd/prime widths give the PVA full 16-bank parallelism; padding\n"
        "a power-of-two-width matrix by one column is the classic fix, and\n"
        "these numbers show exactly why."
    )


if __name__ == "__main__":
    main()

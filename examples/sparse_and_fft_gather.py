#!/usr/bin/env python3
"""Chapter-7 extensions: vector-indirect gather (sparse matrix-vector
style) and FFT bit-reversal reordering.

Sparse codes access ``x[col[j]]`` — addresses known only at run time.  The
paper's two-phase scheme loads the indirection vector with an ordinary
unit-stride command, then broadcasts its contents so each bank controller
bit-masks out its own elements.  FFT bit-reversal is the other famous
cache-hostile pattern; the memory controller generates the reversed
addresses itself.

Run:  python examples/sparse_and_fft_gather.py
"""

import random

from repro import SystemParams
from repro.pva import PVAMemorySystem
from repro.extensions import (
    bit_reversal_gather,
    bit_reverse,
    indirect_gather,
    load_indirection_vector,
)

LINE = 32


def sparse_row_gather() -> None:
    """Gather the nonzeros of one CSR row through the PVA unit."""
    params = SystemParams()
    system = PVAMemorySystem(params)
    rng = random.Random(2000)

    # A dense source vector x and one sparse row with 32 nonzeros.
    x_base = 0
    for i in range(1 << 14):
        system.poke(x_base + i, 5 * i + 1)
    col_indices = sorted(rng.sample(range(1 << 14), LINE))
    col_base = 1 << 15
    for slot, col in enumerate(col_indices):
        system.poke(col_base + slot, x_base + col)

    # Phase (i): load the indirection vector (unit-stride read).
    phase1 = system.run(
        [load_indirection_vector(col_base, LINE)], capture_data=True
    )
    addresses = phase1.read_lines[0]

    # Phase (ii): broadcast it and gather the actual elements.
    phase2 = system.run([indirect_gather(addresses)], capture_data=True)
    gathered = phase2.read_lines[0]
    assert gathered == tuple(5 * (a - x_base) + 1 for a in addresses)
    print(
        f"sparse gather: {LINE} random nonzeros in "
        f"{phase1.cycles + phase2.cycles} cycles "
        f"(load indices {phase1.cycles}, gather {phase2.cycles})"
    )


def fft_bit_reversal() -> None:
    """Reorder a 1024-point dataset into bit-reversed order, one cache
    line per command."""
    params = SystemParams()
    system = PVAMemorySystem(params)
    bits = 10
    points = 1 << bits
    base = 0
    for i in range(points):
        system.poke(base + i, 9000 + i)

    trace = [
        bit_reversal_gather(base, bits, start=start, count=LINE)
        for start in range(0, points, LINE)
    ]
    result = system.run(trace, capture_data=True)
    reordered = [v for line in result.read_lines for v in line]
    assert reordered == [9000 + bit_reverse(i, bits) for i in range(points)]
    print(
        f"bit-reversal:  {points}-point reorder in {result.cycles} cycles "
        f"({result.cycles / points:.2f} cycles/element, "
        f"{len(trace)} commands)"
    )


def main() -> None:
    sparse_row_gather()
    fft_bit_reversal()
    print(
        "\nBoth patterns ride the same staging/broadcast machinery as\n"
        "base-stride vectors; only the per-bank element determination\n"
        "changes (bit-mask snooping instead of the FirstHit closed form)."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""SplitVector and super-pages (section 4.3.2).

Parallel vector access needs physically contiguous vectors, so the memory
controller splits each application vector at super-page boundaries using
a fast lower-bound computation (invert-add-shift) instead of a division.

This example maps a virtually contiguous array onto scattered physical
frames, splits a long strided vector with both the fast and the exact
algorithm, and runs the resulting physically-addressed commands through
the PVA unit — verifying the gathered data survives the translation.

Run:  python examples/superpage_splitting.py
"""

from repro import (
    AccessType,
    MMCTLB,
    PageMapping,
    SystemParams,
    Vector,
    VectorCommand,
)
from repro.pva import PVAMemorySystem
from repro.core.split import exact_split_vector, split_vector

PAGE_WORDS = 1 << 12  # a 16 KB super-page of 4-byte words


def build_scattered_tlb(virtual_pages: int) -> MMCTLB:
    """Map virtual pages 0..n-1 onto shuffled physical frames."""
    tlb = MMCTLB()
    frame_order = list(reversed(range(virtual_pages)))  # deliberately odd
    for vpage, pframe in enumerate(frame_order):
        tlb.map(
            PageMapping(
                virtual_base=vpage * PAGE_WORDS,
                physical_base=pframe * PAGE_WORDS,
                page_words=PAGE_WORDS,
            )
        )
    return tlb


def main() -> None:
    params = SystemParams()
    tlb = build_scattered_tlb(virtual_pages=8)
    vector = Vector(base=100, stride=19, length=1024)

    fast = split_vector(vector, tlb)
    exact = exact_split_vector(vector, tlb)
    print(
        f"application vector {vector} spans "
        f"{vector.span_words} words over {PAGE_WORDS}-word super-pages"
    )
    print(
        f"fast split:  {len(fast)} sub-vectors "
        f"(lengths {[p.length for p in fast][:6]}...)"
    )
    print(
        f"exact split: {len(exact)} sub-vectors "
        f"(lengths {[p.length for p in exact][:6]}...)"
    )
    print(
        f"TLB lookups made by the controller: {tlb.lookups} "
        "(one per issued sub-vector)\n"
    )

    # Run the physically-addressed pieces through the PVA unit.  Values
    # are stored at *physical* addresses via the same translation.
    system = PVAMemorySystem(params)
    for element, vaddr in enumerate(vector.addresses()):
        paddr, _ = tlb.lookup(vaddr)
        system.poke(paddr, 7_000_000 + element)

    commands = []
    for piece in fast:
        for line_piece in piece.split(params.cache_line_words):
            commands.append(
                VectorCommand(vector=line_piece, access=AccessType.READ)
            )
    result = system.run(commands, capture_data=True)
    gathered = [v for line in result.read_lines for v in line]
    assert gathered == [7_000_000 + e for e in range(vector.length)], (
        "translated gather returned wrong data"
    )
    print(
        f"gathered all {vector.length} elements across page boundaries in "
        f"{result.cycles} cycles ({len(commands)} bus commands)."
    )
    print(
        "\nThe fast splitter issues a few more sub-vectors than the exact\n"
        "divider, but never lets one cross a page — and it replaces the\n"
        "stride division with a shift, which is what makes it viable in\n"
        "controller hardware."
    )


if __name__ == "__main__":
    main()

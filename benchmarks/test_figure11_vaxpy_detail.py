"""Figure 11: the vaxpy stride x alignment detail — PVA-SDRAM bars
normalized to the leftmost bar, and PVA-SRAM normalized to the
corresponding SDRAM bar.  The key claim: SDRAM within ~15% of SRAM."""

from benchmarks.conftest import run_once
from repro.experiments.figures import figure11
from repro.experiments.grid import run_grid


def test_figure11(benchmark, write_artifact):
    def build():
        grid = run_grid(
            kernels=("vaxpy",),
            systems=("pva-sdram", "pva-sram"),
        )
        return grid, figure11(grid, kernel="vaxpy")

    grid, fig = run_once(benchmark, build)
    write_artifact("figure11.txt", fig.text)

    worst_gap = 0.0
    for (kernel, stride, alignment), point in grid.cycles.items():
        gap = point["pva-sdram"] / point["pva-sram"] - 1
        worst_gap = max(worst_gap, gap)
        # Paper: "equivalent to that of SRAM or in the worst case at most
        # 15% slower".
        assert gap <= 0.15, (stride, alignment, gap)
        # Our SRAM model shares the controller exactly, so it is a strict
        # lower bound (the paper's SRAM-slower anomaly was an artifact).
        assert gap >= 0.0
    # Alignment sensitivity concentrates at low-parallelism strides.
    spread16 = grid.max_cycles("vaxpy", 16, "pva-sdram") / grid.min_cycles(
        "vaxpy", 16, "pva-sdram"
    )
    spread1 = grid.max_cycles("vaxpy", 1, "pva-sdram") / grid.min_cycles(
        "vaxpy", 1, "pva-sdram"
    )
    assert spread16 > spread1

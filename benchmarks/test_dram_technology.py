"""Extension experiment: the PVA across DRAM generations (chapter 2's
technology survey as a sweep).

Runs the scale kernel on each timing preset at a bank-bound stride (16,
where the part's latencies matter) and a bus-bound one (19, where the
scheduling hides them) — showing that the PVA's heuristics deliver the
'SDRAM at SRAM-like efficiency' story across the whole technology range,
not just the Micron part the paper synthesized against."""

import dataclasses

from benchmarks.conftest import run_once
from repro.experiments.report import format_table
from repro.kernels import build_trace, kernel_by_name
from repro.params import SystemParams
from repro.pva import PVAMemorySystem
from repro.sdram.presets import PRESETS


def test_dram_technology_sweep(benchmark, write_artifact):
    base = SystemParams()

    def build():
        rows = []
        for name in ("fpm", "edo", "pc100-sdram", "ddr-class"):
            params = dataclasses.replace(base, sdram=PRESETS[name])
            cycles = {}
            for stride in (1, 16, 19):
                trace = build_trace(
                    kernel_by_name("scale"),
                    stride=stride,
                    params=params,
                    elements=512,
                )
                cycles[stride] = PVAMemorySystem(params).run(trace).cycles
            rows.append((name, cycles[1], cycles[16], cycles[19]))
        return rows

    rows = run_once(benchmark, build)
    write_artifact(
        "dram_technology.txt",
        format_table(
            ("part", "stride 1", "stride 16 (bank-bound)", "stride 19"),
            rows,
        ),
    )

    by_part = {r[0]: r for r in rows}
    # Bank-bound stride orders the generations.
    assert (
        by_part["fpm"][2]
        >= by_part["edo"][2]
        >= by_part["pc100-sdram"][2]
        >= by_part["ddr-class"][2]
    )
    # Bus-bound strides are technology-insensitive (within 15%).
    stride19 = [r[3] for r in rows]
    assert max(stride19) <= min(stride19) * 1.15

"""Ablation: subcommand-generation latency — PVA (<=5 cycles) vs
CVMS-class hardware (15 cycles for non-power-of-two strides, section 3.1).
Shows that under pipelined load the latency hides completely, while a
single request into an idle unit pays it in full."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import ablate_subcommand_latency


def test_subcommand_latency_ablation(benchmark, write_artifact):
    rows, text = run_once(
        benchmark,
        lambda: ablate_subcommand_latency(
            kernel="copy", strides=(8, 19), latencies=(2, 5, 13),
            elements=1024,
        ),
    )
    write_artifact("ablation_subcommand_latency.txt", text)

    by_key = {(r[0], r[1]): r[2:] for r in rows}
    for stride in (8, 19):
        fast, paper, cvms = by_key[(stride, "pipelined")]
        # Pipelined: the FHC latency hides behind scheduler activity.
        assert cvms <= paper * 1.05, (stride, paper, cvms)
        s_fast, s_paper, s_cvms = by_key[(stride, "single request")]
        if stride == 19:  # non-power-of-two: the latency is exposed
            assert s_cvms > s_paper > s_fast
        else:  # power of two: the FHP path never touches the FHC
            assert s_fast == s_paper == s_cvms

"""Extension experiment: alignment sensitivity across the whole grid
(generalizing figure 11 beyond vaxpy)."""

from benchmarks.conftest import run_once
from repro.experiments.alignment import alignment_study


def test_alignment_study(benchmark, write_artifact):
    rows, text = run_once(benchmark, lambda: alignment_study(elements=512))
    write_artifact("alignment_study.txt", text)

    by_point = {(r[0], r[1]): r for r in rows}
    for (kernel, stride), row in by_point.items():
        spread = float(row[3].rstrip("x"))
        parallelism = row[2]
        if parallelism >= 4:
            # High parallelism: alignment moves things by a few percent
            # at most (paper: "differ only by a few percent").
            assert spread <= 1.06, (kernel, stride, spread)
    # And the low-parallelism strides of multi-array kernels show real
    # spread somewhere in the grid.
    max_spread = max(float(r[3].rstrip("x")) for r in rows)
    assert max_spread > 1.5

"""Figure 8: comparative performance with varying stride (continuation) —
scale2, swap, tridiag, vaxpy."""

from benchmarks.conftest import run_once
from repro.experiments.figures import figure8
from repro.experiments.grid import FIGURE8_KERNELS, run_grid


def test_figure8(benchmark, write_artifact):
    def build():
        grid = run_grid(kernels=FIGURE8_KERNELS)
        return grid, figure8(grid)

    grid, fig = run_once(benchmark, build)
    write_artifact("figure8.txt", fig.text)

    for kernel in FIGURE8_KERNELS:
        # PVA beats the serial gathering system at every stride.
        for stride in grid.strides:
            assert grid.min_cycles(
                kernel, stride, "gathering-serial"
            ) > grid.min_cycles(kernel, stride, "pva-sdram")
        # Stride 16 (single-bank) is the PVA's worst stride at the worst
        # alignment.
        worst16 = grid.max_cycles(kernel, 16, "pva-sdram")
        for stride in (1, 2, 4, 8, 19):
            assert worst16 >= grid.max_cycles(kernel, stride, "pva-sdram")

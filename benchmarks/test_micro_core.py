"""Micro-benchmarks of the library's hot paths (true wall-clock
measurements, multiple rounds): the FirstHit closed forms, PLA lookups,
and the cycle-level simulator's throughput in simulated cycles/second.

These guard against performance regressions in the Python implementation
itself — the quantity that bounds how large an experiment grid stays
practical."""

from repro.core.decode import decompose_stride
from repro.core.firsthit import first_hit
from repro.core.pla import K1PLA
from repro.kernels import build_trace, kernel_by_name
from repro.params import SystemParams
from repro.pva import PVAMemorySystem
from repro.types import Vector

PROTO = SystemParams()
PLA = K1PLA(16)


def test_decompose_stride_speed(benchmark):
    def run():
        total = 0
        for stride in range(1, 65):
            total += decompose_stride(stride, 16).delta
        return total

    assert benchmark(run) > 0


def test_first_hit_speed(benchmark):
    vector = Vector(base=21, stride=19, length=32)

    def run():
        hits = 0
        for bank in range(16):
            if first_hit(vector, bank, 16) is not None:
                hits += 1
        return hits

    assert benchmark(run) == 16


def test_pla_lookup_speed(benchmark):
    def run():
        total = 0
        for stride in range(1, 33):
            for distance in range(16):
                k = PLA.first_hit_index(stride, distance)
                if k is not None:
                    total += k
        return total

    assert benchmark(run) > 0


def test_simulator_throughput(benchmark):
    """Simulated cycles per wall-clock second for a full kernel run."""
    trace = build_trace(
        kernel_by_name("copy"), stride=1, params=PROTO, elements=256
    )

    def run():
        return PVAMemorySystem(PROTO).run(trace).cycles

    cycles = benchmark(run)
    assert cycles > 0

"""Ablation: vector-context window depth (DESIGN.md item 3).

The prototype carries four VCs; this sweep shows what the reordering
window buys at each stride class."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import ablate_vector_contexts


def test_vector_context_ablation(benchmark, write_artifact):
    rows, text = run_once(
        benchmark,
        lambda: ablate_vector_contexts(
            kernel="vaxpy",
            strides=(1, 8, 16, 19),
            context_counts=(1, 2, 4, 8),
            elements=1024,
        ),
    )
    write_artifact("ablation_vector_contexts.txt", text)

    for kernel, stride, one, two, four, eight in rows:
        # Deeper windows never hurt materially...
        assert four <= one * 1.05, (stride, one, four)
        # ...and 8 contexts add little over the prototype's 4 (the bus
        # limits outstanding work).
        assert eight >= four * 0.9, (stride, four, eight)

"""Model validation: the cycle-level simulators versus the closed-form
models of `repro.analysis` across the evaluation grid.

Three families of checks:
* serial baselines match their analytic formulas *exactly*;
* the PVA never beats its lower bounds (bus occupancy, busiest bank);
* at full-parallelism strides the PVA sits within 10% of the bus bound
  (the simulator leaves nothing meaningful on the table)."""

from benchmarks.conftest import run_once
from repro.analysis.model import (
    bus_bound_cycles,
    cacheline_serial_cycles,
    gathering_serial_cycles,
    pva_lower_bound,
)
from repro.baselines.cacheline_serial import CacheLineSerialSDRAM
from repro.baselines.gathering_serial import GatheringSerialSDRAM
from repro.experiments.report import format_table
from repro.kernels import build_trace, kernel_by_name
from repro.params import SystemParams
from repro.pva import PVAMemorySystem


def test_model_validation(benchmark, write_artifact):
    params = SystemParams()

    def build():
        rows = []
        for kernel in ("copy", "saxpy", "scale", "swap", "tridiag", "vaxpy"):
            for stride in (1, 2, 4, 8, 16, 19):
                trace = build_trace(
                    kernel_by_name(kernel),
                    stride=stride,
                    params=params,
                    elements=512,
                )
                pva = PVAMemorySystem(params).run(trace).cycles
                bound = pva_lower_bound(trace, params)
                serial = CacheLineSerialSDRAM(params).run(trace).cycles
                gather = GatheringSerialSDRAM(params).run(trace).cycles
                rows.append(
                    (
                        kernel,
                        stride,
                        bound,
                        pva,
                        f"{pva / bound:.2f}",
                        serial == cacheline_serial_cycles(trace, params),
                        gather == gathering_serial_cycles(trace, params),
                    )
                )
        return rows

    rows = run_once(benchmark, build)
    write_artifact(
        "model_validation.txt",
        format_table(
            (
                "kernel",
                "stride",
                "lower bound",
                "pva cycles",
                "pva/bound",
                "cacheline==formula",
                "gathering==formula",
            ),
            rows,
        ),
    )

    for kernel, stride, bound, pva, ratio, serial_ok, gather_ok in rows:
        assert serial_ok and gather_ok, (kernel, stride)
        assert pva >= bound, (kernel, stride, pva, bound)
        if stride in (1, 19):  # full parallelism: bus-bound
            assert pva <= bound * 1.10, (kernel, stride, pva, bound)

"""Ablation: row-management policy (DESIGN.md item 1).

Compares the prototype's ManageRow heuristic against closed-page,
open-page and an Alpha-21174-style history predictor across the strides
that stress row behaviour."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import ablate_row_policy


def test_row_policy_ablation(benchmark, write_artifact):
    rows, text = run_once(
        benchmark,
        lambda: ablate_row_policy(
            kernels=("copy", "scale", "vaxpy"),
            strides=(1, 8, 16, 19),
            elements=1024,
        ),
    )
    write_artifact("ablation_row_policy.txt", text)

    by_key = {(r[0], r[1]): r[2:] for r in rows}
    for (kernel, stride), (paper, close, open_, history) in by_key.items():
        # The paper policy is never far off the best alternative.
        best = min(close, open_, history)
        assert paper <= best * 1.15, (kernel, stride, paper, best)

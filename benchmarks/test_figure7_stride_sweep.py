"""Figure 7: comparative performance with varying stride — copy, copy2,
saxpy, scale on all four memory systems (1024-element vectors, strides
{1, 2, 4, 8, 16, 19}, min/max over the five relative alignments)."""

from benchmarks.conftest import run_once
from repro.experiments.figures import figure7
from repro.experiments.grid import FIGURE7_KERNELS, run_grid


def test_figure7(benchmark, write_artifact):
    def build():
        grid = run_grid(kernels=FIGURE7_KERNELS)
        return grid, figure7(grid)

    grid, fig = run_once(benchmark, build)
    write_artifact("figure7.txt", fig.text)

    # Shape invariants of section 6.3 on the full-size data.
    for kernel in FIGURE7_KERNELS:
        # Unit-stride parity with the cache-line system (100-109%).
        parity = grid.normalized(kernel, 1, "cacheline-serial")
        assert 0.95 <= parity <= 1.2, (kernel, parity)
        # Prime stride: PVA recovers to unit-stride speed.
        t1 = grid.min_cycles(kernel, 1, "pva-sdram")
        t19 = grid.min_cycles(kernel, 19, "pva-sdram")
        assert abs(t19 - t1) / t1 < 0.1, (kernel, t1, t19)
        # The cache-line system degrades monotonically with stride.
        ratios = [
            grid.normalized(kernel, s, "cacheline-serial")
            for s in grid.strides
        ]
        assert ratios == sorted(ratios), (kernel, ratios)

"""Table 1: hardware complexity.  Gate-level synthesis is out of scope for
a Python reproduction; this benchmark regenerates the substitution
described in DESIGN.md — the paper's counts verbatim next to architectural
storage/PLA-term estimates derived from the same system parameters — and
checks the quantitative anchors (2 KB staging RAM; PLA scaling laws of
section 4.3.1)."""

from benchmarks.conftest import run_once
from repro.core.pla import pla_product_terms
from repro.experiments.complexity import (
    complexity_table,
    estimate_bank_controller,
)
from repro.params import SystemParams


def test_table1(benchmark, write_artifact):
    text = run_once(benchmark, lambda: complexity_table(SystemParams()))
    write_artifact("table1.txt", text)

    estimate = estimate_bank_controller(SystemParams())
    # The one directly comparable number: the prototype's 2 KB of on-chip
    # RAM equals 8 transactions x 128 B x (read + write staging).
    assert estimate.staging_ram_bytes == 2048
    # Section 4.3.1 scaling: full-Ki PLA ~ quadratic, K1 PLA ~ linear.
    assert pla_product_terms(32, "k1") == 2 * pla_product_terms(16, "k1")
    quad_ratio = pla_product_terms(32, "full_ki") / pla_product_terms(
        16, "full_ki"
    )
    assert 3.0 < quad_ratio < 5.0

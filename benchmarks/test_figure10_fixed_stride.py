"""Figure 10: comparative performance of all kernels at fixed strides 8,
16 and 19 (continuation of figure 9)."""

from benchmarks.conftest import run_once
from repro.experiments.figures import figure10
from repro.experiments.grid import EVAL_KERNELS, run_grid


def test_figure10(benchmark, write_artifact):
    def build():
        grid = run_grid(strides=(8, 16, 19))
        return grid, figure10(grid)

    grid, fig = run_once(benchmark, build)
    write_artifact("figure10.txt", fig.text)

    # Paper: at stride 16 the cache-line system runs at 638-1112% of the
    # PVA; scale (single-array, alignment-proof) must land in a band
    # around that, and stride 19 must be the extreme for every kernel.
    scale16 = grid.normalized("scale", 16, "cacheline-serial")
    assert 5.0 <= scale16 <= 13.0, scale16
    for kernel in EVAL_KERNELS:
        ratio19 = grid.normalized(kernel, 19, "cacheline-serial")
        assert ratio19 > 15.0, (kernel, ratio19)
        assert ratio19 > grid.normalized(kernel, 16, "cacheline-serial")
        assert ratio19 > grid.normalized(kernel, 8, "cacheline-serial")

"""Ablation: bank count scaling (DESIGN.md item 5, section 4.3.1).

Sweeps M over {4, 8, 16, 32}: prime-stride performance scales with the
available parallelism while the full-Ki PLA cost grows quadratically —
the trade-off that motivates the K1-PLA design for large systems."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import ablate_bank_scaling


def test_bank_scaling_ablation(benchmark, write_artifact):
    rows, text = run_once(
        benchmark,
        lambda: ablate_bank_scaling(
            kernel="scale", stride=8, banks=(4, 8, 16, 32), elements=1024
        ),
    )
    write_artifact("ablation_bank_scaling.txt", text)

    by_banks = {r[0]: r for r in rows}
    # Performance: stride 8 fits in one bank of a 4-bank system but in
    # two banks of a 16-bank one — more banks must help markedly.
    assert by_banks[16][1] < by_banks[4][1]
    assert by_banks[32][1] <= by_banks[16][1]
    # PLA cost: K1 design linear, full-Ki design superlinear.
    assert by_banks[32][2] == 2 * by_banks[16][2]
    assert by_banks[32][3] > 3 * by_banks[16][3]

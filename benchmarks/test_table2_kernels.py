"""Table 2: the kernel definitions, regenerated from the kernel registry
together with the command pattern each one drives per cache-line block."""

from benchmarks.conftest import run_once
from repro.experiments.report import format_table
from repro.kernels.kernels import KERNELS


def test_table2(benchmark, write_artifact):
    def build():
        rows = []
        for name in (
            "copy",
            "saxpy",
            "scale",
            "swap",
            "tridiag",
            "vaxpy",
            "copy2",
            "scale2",
        ):
            kernel = KERNELS[name]
            pattern = " ".join(
                f"{a.access.value[0].upper()}:{a.array}"
                f"{'[i-1]' if a.offset_elements else ''}"
                for a in kernel.pattern
            )
            rows.append(
                (
                    name,
                    kernel.description,
                    pattern,
                    kernel.unroll,
                )
            )
        return format_table(
            ("kernel", "loop body", "commands per block", "unroll"), rows
        )

    text = run_once(benchmark, build)
    write_artifact("table2.txt", text)

    # Table 2 integrity: the six paper kernels plus the two unrolled
    # variants used in figures 7-10.
    assert len(KERNELS) == 8
    assert KERNELS["tridiag"].description.startswith("x[i] = z[i]")

"""The abstract's headline claims: "up to 32.8 times faster than a
conventional memory system and 3.3 times faster than a pipelined vector
unit, without hurting normal cache line fill performance".

Measured with the honest line-fill accounting (one 20-cycle fill per
distinct line) the conventional-system ceiling lands near 20x; the bench
also reports the per-element-fill variant, under which a stride-19
command costs 32 x 20 = 640 cycles and the paper's 32.8x reappears.  See
EXPERIMENTS.md for the discussion.
"""

from benchmarks.conftest import run_once
from repro.baselines.cacheline_serial import CacheLineSerialSDRAM
from repro.experiments.grid import run_grid
from repro.experiments.headline import headline_ratios
from repro.experiments.report import format_table
from repro.kernels import build_trace, kernel_by_name
from repro.params import SystemParams
from repro.pva import PVAMemorySystem


def test_headline(benchmark, write_artifact):
    def build():
        grid = run_grid(kernels=("copy", "scale", "swap"))
        ratios = headline_ratios(grid)

        # The paper's own accounting variant: per-element fills.
        params = SystemParams()
        trace = build_trace(kernel_by_name("scale"), stride=19, params=params)
        pva = PVAMemorySystem(params).run(trace).cycles
        paper_style = (
            CacheLineSerialSDRAM(params, fill_per_element=True)
            .run(trace)
            .cycles
        )
        return grid, ratios, paper_style / pva

    grid, ratios, paper_style_speedup = run_once(benchmark, build)

    summary = ratios.summary()
    rows = [
        ("paper claim", "measured"),
    ]
    text = format_table(
        ("quantity", "paper", "measured (honest)", "measured (per-element fills)"),
        [
            (
                "max speedup vs conventional",
                "32.8x",
                f"{summary['max_speedup_vs_cacheline']}x at {summary['at']}",
                f"{paper_style_speedup:.1f}x (scale, stride 19)",
            ),
            (
                "max speedup vs pipelined vector unit",
                "3.3x",
                f"{summary['max_speedup_vs_gathering']}x at "
                f"{summary['gathering_at']}",
                "-",
            ),
            (
                "unit-stride cache-line fill cost",
                "100-109%",
                f"{summary['unit_stride_band_pct'][0]}-"
                f"{summary['unit_stride_band_pct'][1]}%",
                "-",
            ),
            (
                "worst SDRAM-vs-SRAM gap",
                "<= ~15%",
                f"{summary['worst_sram_gap_pct']}%",
                "-",
            ),
        ],
    )
    write_artifact("headline.txt", text)

    assert ratios.max_speedup_vs_cacheline > 15
    assert paper_style_speedup > 25  # the 32.8x-accounting variant
    assert 2.3 < ratios.max_speedup_vs_gathering < 4.0
    lo, hi = ratios.unit_stride_band
    assert 0.95 <= lo <= hi <= 1.2
    assert ratios.worst_sram_gap <= 0.15

"""Extension experiment: a dense stride sweep (1..32) beyond the paper's
six sample points, on the alignment-proof ``scale`` kernel.

This fills in the curve the paper samples: the PVA's cost is a step
function of ``2**s`` (the trailing-zero count of the stride mod M), flat
at the bus bound for every odd stride and climbing only at the
power-of-two cliffs — while the conventional system's cost climbs with
the raw stride."""

from benchmarks.conftest import run_once
from repro.baselines.cacheline_serial import CacheLineSerialSDRAM
from repro.core.decode import decompose_stride
from repro.experiments.report import format_table
from repro.kernels import build_trace, kernel_by_name
from repro.params import SystemParams
from repro.pva import PVAMemorySystem


def test_extended_stride_sweep(benchmark, write_artifact):
    params = SystemParams()

    def build():
        rows = []
        for stride in range(1, 33):
            trace = build_trace(
                kernel_by_name("scale"),
                stride=stride,
                params=params,
                elements=512,
            )
            pva = PVAMemorySystem(params).run(trace).cycles
            serial = CacheLineSerialSDRAM(params).run(trace).cycles
            rows.append(
                (
                    stride,
                    decompose_stride(stride, params.num_banks).banks_hit,
                    pva,
                    serial,
                    f"{serial / pva:.1f}x",
                )
            )
        return rows

    rows = run_once(benchmark, build)
    write_artifact(
        "extended_stride_sweep.txt",
        format_table(
            ("stride", "banks hit", "pva cycles", "cacheline cycles", "speedup"),
            rows,
        ),
    )

    by_stride = {r[0]: r for r in rows}
    # Equal parallelism class => equal PVA cost: all odd strides match.
    odd_cycles = {by_stride[s][2] for s in range(1, 33, 2)}
    assert len(odd_cycles) == 1
    # The cliffs: cost non-decreasing as parallelism halves.
    assert by_stride[16][2] >= by_stride[8][2] >= by_stride[4][2]
    assert by_stride[4][2] >= by_stride[2][2] >= by_stride[1][2]
    # Stride 32 ( == 2M ) hits a single bank like stride 16.
    assert by_stride[32][1] == 1
    # The conventional system instead tracks the raw stride.
    assert by_stride[31][3] > by_stride[16][3] > by_stride[4][3]

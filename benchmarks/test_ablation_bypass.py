"""Ablation: the bypass paths of section 5.2.3 (DESIGN.md item 2).

"In the case where a single request is issued to an idle bank controller
the bypass paths significantly help in reducing latency" — measured as
the latency of one isolated vector read, power-of-two and
non-power-of-two strides."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import ablate_bypass_paths


def test_bypass_ablation(benchmark, write_artifact):
    rows, text = run_once(
        benchmark, lambda: ablate_bypass_paths(strides=(1, 2, 7, 8, 19))
    )
    write_artifact("ablation_bypass.txt", text)

    for stride, with_bypass, without, saved in rows:
        assert saved >= 1, (stride, saved)
        assert with_bypass < without

"""Extension experiment: sensitivity of the PVA's advantage to processor
issue rate.

Section 6.2: "in general it is safe to assume that the faster the
processor consumes data, the closer it is to the peak conditions
described here".  This sweep quantifies that: throttling the front end's
command issue rate shrinks the PVA's win over the conventional system,
converging toward latency-bound parity."""

from dataclasses import replace

from benchmarks.conftest import run_once
from repro.baselines.cacheline_serial import CacheLineSerialSDRAM
from repro.experiments.report import format_table
from repro.kernels import build_trace, kernel_by_name
from repro.params import SystemParams
from repro.pva import PVAMemorySystem


def test_cpu_rate_sensitivity(benchmark, write_artifact):
    base = SystemParams()
    trace = build_trace(
        kernel_by_name("copy"), stride=19, params=base, elements=512
    )
    serial = CacheLineSerialSDRAM(base).run(trace).cycles

    def build():
        rows = []
        for interval in (0, 5, 10, 20, 40, 80):
            params = replace(base, issue_interval=interval)
            pva = PVAMemorySystem(params).run(trace).cycles
            rows.append(
                (
                    interval if interval else "infinitely fast",
                    pva,
                    serial,
                    f"{serial / pva:.1f}x",
                )
            )
        return rows

    rows = run_once(benchmark, build)
    write_artifact(
        "cpu_rate_sensitivity.txt",
        format_table(
            (
                "issue interval (cycles)",
                "pva cycles",
                "cacheline-serial cycles",
                "pva advantage",
            ),
            rows,
        ),
    )

    speedups = [float(r[3].rstrip("x")) for r in rows]
    # The advantage shrinks monotonically as the CPU slows down...
    assert speedups == sorted(speedups, reverse=True)
    # ...but the PVA never becomes slower than the serial system here.
    assert speedups[-1] >= 1.0

"""Engine acceptance at full evaluation size: the Figure-7 grid through
``jobs=4`` must be identical to the serial path, and a warm re-run must
replay from the result cache at a large speedup (>= 5x)."""

import time

from benchmarks.conftest import run_once
from repro.engine import EngineHooks, ExperimentEngine
from repro.experiments.grid import FIGURE7_KERNELS, run_grid


class _Capture(EngineHooks):
    def __init__(self):
        self.summaries = []

    def batch_complete(self, metrics):
        self.summaries.append(metrics.summary())


def test_figure7_grid_parallel_parity_and_cache(benchmark, tmp_path):
    def serial():
        return run_grid(
            kernels=FIGURE7_KERNELS, engine=ExperimentEngine(jobs=1)
        )

    baseline = run_once(benchmark, serial)

    hooks = _Capture()
    cold_engine = ExperimentEngine(jobs=4, cache_dir=tmp_path, hooks=hooks)
    cold_start = time.perf_counter()
    cold = run_grid(kernels=FIGURE7_KERNELS, engine=cold_engine)
    cold_elapsed = time.perf_counter() - cold_start

    # Parallel execution is byte-identical to the serial path.
    assert cold == baseline
    assert hooks.summaries[-1]["simulated"] > 0
    assert hooks.summaries[-1]["cache_hit_rate"] == 0.0
    assert hooks.summaries[-1]["points_per_second"] > 0

    warm_engine = ExperimentEngine(jobs=4, cache_dir=tmp_path, hooks=hooks)
    warm_start = time.perf_counter()
    warm = run_grid(kernels=FIGURE7_KERNELS, engine=warm_engine)
    warm_elapsed = time.perf_counter() - warm_start

    # The warm run replays every point from the cache, much faster.
    assert warm == baseline
    assert hooks.summaries[-1]["simulated"] == 0
    assert hooks.summaries[-1]["cache_hit_rate"] == 1.0
    assert cold_elapsed / warm_elapsed >= 5.0, (cold_elapsed, warm_elapsed)

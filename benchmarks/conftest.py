"""Shared benchmark infrastructure.

Each benchmark regenerates one of the paper's tables or figures at the
full evaluation size (1024-element application vectors), asserts the
reproduction-shape invariants, and writes the series to
``results/<name>.txt`` so the numbers used in EXPERIMENTS.md are
regenerable artifacts.

pytest-benchmark is used in pedantic single-round mode: the quantity being
measured is the simulator's wall-clock for a full experiment, and the
interesting output is the simulated-cycle series, not a timing
distribution.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_artifact(results_dir):
    def _write(name: str, text: str) -> pathlib.Path:
        path = results_dir / name
        path.write_text(text + "\n")
        return path

    return _write


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its
    result (full-grid simulations are too heavy for repeated rounds)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

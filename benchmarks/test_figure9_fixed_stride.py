"""Figure 9: comparative performance of all kernels at fixed strides 1
and 4, annotated with execution time normalized to the minimum PVA-SDRAM
time per access pattern."""

from benchmarks.conftest import run_once
from repro.experiments.figures import figure9
from repro.experiments.grid import EVAL_KERNELS, run_grid


def test_figure9(benchmark, write_artifact):
    def build():
        grid = run_grid(strides=(1, 4))
        return grid, figure9(grid)

    grid, fig = run_once(benchmark, build)
    write_artifact("figure9.txt", fig.text)

    for kernel in EVAL_KERNELS:
        # Paper: unit-stride cache-line serial between 100% and 109% of
        # PVA minimum (quoted for copy/scale/copy2/scale2/swap/vaxpy).
        # tridiag's x[i-1] read is one word off line alignment, so each
        # of its commands spans two lines in the serial system — the
        # paper pointedly omits tridiag from the 100-109% list.
        parity = grid.normalized(kernel, 1, "cacheline-serial")
        upper = 1.45 if kernel == "tridiag" else 1.2
        assert 0.95 <= parity <= upper, (kernel, parity)
        # Paper: stride 4 between 307% and 408% (honest accounting may
        # widen slightly).
        stride4 = grid.normalized(kernel, 4, "cacheline-serial")
        assert 2.5 <= stride4 <= 5.0, (kernel, stride4)

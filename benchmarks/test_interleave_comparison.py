"""Extension experiment: interleaving schemes under the PVA (section 3.3).

Hsu and Smith found cache-line interleaving superior to low-order (word)
interleaving for vector machines *without* access ordering, and the paper
conjectures "low-order interleaving may perform better when used along
with access ordering and scheduling techniques".  With the PVA this
becomes measurable: the same controller over word-interleaved and
cache-line-interleaved placements of the same banks."""

from benchmarks.conftest import run_once
from repro.experiments.report import format_table
from repro.interleave.schemes import InterleaveScheme
from repro.kernels import build_trace, kernel_by_name
from repro.params import SystemParams
from repro.pva import PVAMemorySystem


def test_interleave_comparison(benchmark, write_artifact):
    params = SystemParams()
    scheme = InterleaveScheme.cache_line(
        params.num_banks, params.cache_line_words
    )

    def build():
        rows = []
        for stride in (1, 2, 4, 8, 16, 19, 32):
            trace = build_trace(
                kernel_by_name("scale"),
                stride=stride,
                params=params,
                elements=512,
            )
            word = PVAMemorySystem(params).run(trace).cycles
            line = PVAMemorySystem(params, interleave=scheme).run(trace).cycles
            rows.append(
                (stride, word, line, f"{line / word:.2f}x")
            )
        return rows

    rows = run_once(benchmark, build)
    write_artifact(
        "interleave_comparison.txt",
        format_table(
            (
                "stride",
                "word-interleaved PVA",
                "line-interleaved PVA",
                "line/word",
            ),
            rows,
        ),
    )

    by_stride = {r[0]: r for r in rows}
    # The paper's conjecture: with access scheduling, word interleave is
    # at least as good as line interleave at small strides...
    assert by_stride[1][2] >= by_stride[1][1]
    # ...while line interleave wins exactly where the word-interleaved
    # system collapses to one bank (stride == M = 16: line interleave
    # spreads consecutive elements across lines and therefore banks).
    assert by_stride[16][2] < by_stride[16][1]

"""Ablation: SDRAM auto-refresh tax (section 2.2) versus refresh period.
The paper's evaluation ignores refresh; this quantifies what that
simplification is worth on a bank-bound workload (scale at stride 16,
where the single busy bank cannot hide the refresh windows)."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import ablate_refresh


def test_refresh_ablation(benchmark, write_artifact):
    rows, text = run_once(
        benchmark,
        lambda: ablate_refresh(
            kernel="scale", stride=16, intervals=(0, 780, 200, 100, 50),
            elements=1024,
        ),
    )
    write_artifact("ablation_refresh.txt", text)

    by_interval = {r[0]: r[1] for r in rows}
    baseline = by_interval["off"]
    # Realistic refresh costs at most a few percent even on the PVA's
    # worst (single-bank) stride.
    assert by_interval[780] <= baseline * 1.05
    # The tax grows monotonically as the period shrinks.
    assert baseline <= by_interval[780] <= by_interval[200]
    assert by_interval[200] <= by_interval[100] <= by_interval[50]

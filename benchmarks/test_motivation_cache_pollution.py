"""Extension experiment: chapter 1's motivation, quantified.

For a strided loop of 1024 elements, compare the cached scalar path
(line fills through an L2) against the PVA's gathered path on three
axes: bus traffic in words, L2 utilization, and end-to-end cycles."""

from benchmarks.conftest import run_once
from repro.baselines.cacheline_serial import CacheLineSerialSDRAM
from repro.cache.frontend import CacheFrontEnd
from repro.experiments.report import format_table
from repro.params import SystemParams
from repro.pva import PVAMemorySystem
from repro.types import AccessType, Vector, VectorCommand


def test_motivation_cache_pollution(benchmark, write_artifact):
    params = SystemParams()
    length = 1024

    def build():
        rows = []
        for stride in (1, 2, 4, 8, 16, 19, 32):
            frontend = CacheFrontEnd(params)
            cached = frontend.feed(
                CacheFrontEnd.strided_loop(0, stride, length)
            )
            cached_traffic = frontend.traffic_words(cached)
            utilization = frontend.cache.stats.utilization(
                params.cache_line_words
            )
            conventional = CacheLineSerialSDRAM(params).run(cached).cycles
            vector = Vector(base=0, stride=stride, length=length)
            gathered = [
                VectorCommand(vector=piece, access=AccessType.READ)
                for piece in vector.split(params.cache_line_words)
            ]
            pva = PVAMemorySystem(params).run(gathered).cycles
            rows.append(
                (
                    stride,
                    cached_traffic,
                    length,
                    f"{utilization * 100:.0f}%",
                    conventional,
                    pva,
                    f"{conventional / pva:.1f}x",
                )
            )
        return rows

    rows = run_once(benchmark, build)
    write_artifact(
        "motivation_cache_pollution.txt",
        format_table(
            (
                "stride",
                "cached traffic (words)",
                "PVA traffic (words)",
                "L2 utilization",
                "conventional cycles",
                "PVA cycles",
                "speedup",
            ),
            rows,
        ),
    )

    by_stride = {r[0]: r for r in rows}
    # Unit stride: both paths move the same words; parity.
    assert by_stride[1][1] == length
    # Stride 32: the cached path moves 32x the useful data.
    assert by_stride[32][1] == 32 * length
    # Utilization collapses as 1/stride (power-of-two strides exact).
    assert by_stride[1][3] == "100%"
    assert by_stride[32][3] == "3%"

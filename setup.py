"""Setuptools shim so editable installs work on toolchains without the
``wheel`` package (pyproject metadata remains the source of truth)."""

from setuptools import setup

setup()

"""Deterministic fault injectors.

Each injector is a :class:`~repro.sim.runner.MemorySystem` (or a wrapper
around one) that misbehaves in exactly one, reproducible way:

* :class:`RaisingSystem` — raises :class:`InjectedFault` when the trace
  reaches its designated command;
* :class:`TransientFaultSystem` — fails the *first* execution only,
  succeeding on every later attempt (attempt state lives in a marker
  file, so it survives the process boundary to pool workers and retried
  submissions);
* :class:`CycleBurnerSystem` — ignores its trace and burns simulated
  cycles until the simulation watchdog trips
  (:class:`~repro.errors.SimulationTimeout`);
* :class:`WorkerKillerSystem` — hard-kills the executing process with
  ``os._exit``, simulating an OOM-killed or segfaulted pool worker;
* :class:`SlowSystem` — wraps a healthy system behind a fixed
  wall-clock delay, giving shutdown/drain tests a run that is
  reliably *in flight* when a signal lands;
* :class:`CacheCorruptor` — vandalizes a :class:`ResultCache` directory
  with torn, garbage, and stray entries.

None of these are imported by the simulator proper — they exist to
*prove* the engine's resilience layer contains them.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.engine.cache import ResultCache
from repro.errors import ReproError
from repro.params import SystemParams
from repro.sim.runner import Watchdog
from repro.sim.stats import RunResult

__all__ = [
    "InjectedFault",
    "RaisingSystem",
    "TransientFaultSystem",
    "CycleBurnerSystem",
    "WorkerKillerSystem",
    "SlowSystem",
    "CacheCorruptor",
]


class InjectedFault(ReproError):
    """The deliberate failure raised by the fault-injection harness."""


def _claim_marker(marker: Union[str, Path]) -> bool:
    """Atomically create ``marker``; True if this call created it.

    ``O_CREAT | O_EXCL`` makes the first-attempt check race-free across
    pool workers on any platform with a shared filesystem.
    """
    try:
        fd = os.open(str(marker), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


class RaisingSystem:
    """Wrap a memory system; raise :class:`InjectedFault` on the Nth
    command of every trace (0-based; traces shorter than N run clean)."""

    def __init__(self, inner, fail_on_command: int = 0, message: str = ""):
        self.inner = inner
        self.name = inner.name
        self.fail_on_command = fail_on_command
        self.message = message or (
            f"injected fault at command {fail_on_command}"
        )

    def poke(self, address: int, value: int) -> None:
        self.inner.poke(address, value)

    def peek(self, address: int) -> int:
        return self.inner.peek(address)

    def run(
        self, commands: Sequence, capture_data: bool = False
    ) -> RunResult:
        if len(commands) > self.fail_on_command:
            raise InjectedFault(self.message)
        return self.inner.run(commands, capture_data=capture_data)


class TransientFaultSystem:
    """Wrap a memory system; fail the first execution, then heal.

    The first ``run`` call that claims the marker file raises
    :class:`InjectedFault`; every later call (any process) runs the
    wrapped system normally.  This is the canonical transient fault the
    engine's retry policy must absorb without user-visible failure.
    """

    def __init__(self, inner, marker: Union[str, Path], message: str = ""):
        self.inner = inner
        self.name = inner.name
        self.marker = Path(marker)
        self.message = message or "injected transient fault (first attempt)"

    def poke(self, address: int, value: int) -> None:
        self.inner.poke(address, value)

    def peek(self, address: int) -> int:
        return self.inner.peek(address)

    def run(
        self, commands: Sequence, capture_data: bool = False
    ) -> RunResult:
        if _claim_marker(self.marker):
            raise InjectedFault(self.message)
        return self.inner.run(commands, capture_data=capture_data)


class CycleBurnerSystem:
    """A memory system that never finishes: it spins the simulated
    clock without retiring commands until the watchdog contains it.

    With the default :class:`~repro.sim.runner.SimulationLimits` the
    containment is the cycle budget (``4096 x len(trace)`` ticks, a few
    milliseconds of host time) — the infinite loop is *bounded by
    construction*, which is what lets the test suite enforce wall-clock
    limits on containment tests.
    """

    def __init__(
        self,
        params: Optional[SystemParams] = None,
        name: str = "cycle-burner",
    ):
        self.params = params or SystemParams()
        self.name = name

    def run(
        self, commands: Sequence, capture_data: bool = False
    ) -> RunResult:
        watchdog = Watchdog(len(commands), system=self.name)
        cycle = 0
        while True:  # SimulationTimeout is the only exit
            watchdog.check(cycle)
            cycle += 1


class WorkerKillerSystem:
    """Hard-kill the executing process via ``os._exit``.

    With a ``marker`` path the kill fires only for the claimant of the
    marker (kill-once: a retried or rescheduled attempt survives);
    without one, every execution dies.  ``os._exit`` skips all cleanup,
    faithfully modelling an OOM kill or segfault: the pool worker
    vanishes and the task's result never arrives.

    Never run this inline — it takes the caller down with it.  The
    engine's per-point timeout is the recovery path.
    """

    def __init__(
        self,
        inner=None,
        marker: Optional[Union[str, Path]] = None,
        exit_code: int = 17,
        name: str = "worker-killer",
    ):
        self.inner = inner
        self.name = inner.name if inner is not None else name
        self.marker = Path(marker) if marker is not None else None
        self.exit_code = exit_code

    def run(
        self, commands: Sequence, capture_data: bool = False
    ) -> RunResult:
        if self.marker is None or _claim_marker(self.marker):
            os._exit(self.exit_code)
        if self.inner is None:
            raise InjectedFault(
                "worker-killer survived its kill but wraps no system"
            )
        return self.inner.run(commands, capture_data=capture_data)


class SlowSystem:
    """Wrap a memory system behind a fixed host-side delay.

    Simulation results are untouched — the wrapper just sleeps before
    delegating, so a test can guarantee a point is mid-flight when a
    drain, cancel, or signal arrives.  The sleep is interruptible at
    1/10-second granularity to keep teardown snappy.
    """

    def __init__(self, inner, seconds: float = 1.0):
        self.inner = inner
        self.name = inner.name
        self.seconds = float(seconds)

    def poke(self, address: int, value: int) -> None:
        self.inner.poke(address, value)

    def peek(self, address: int) -> int:
        return self.inner.peek(address)

    def run(
        self, commands: Sequence, capture_data: bool = False
    ) -> RunResult:
        import time

        remaining = self.seconds
        while remaining > 0:
            step = min(0.1, remaining)
            time.sleep(step)
            remaining -= step
        return self.inner.run(commands, capture_data=capture_data)


class CacheCorruptor:
    """Vandalize a result-cache directory in reproducible ways.

    Every method returns the path(s) it wrote, so tests can assert the
    cache's reaction entry by entry.
    """

    def __init__(self, cache: Union[ResultCache, str, Path]):
        self.cache = (
            cache if isinstance(cache, ResultCache) else ResultCache(cache)
        )

    def torn_entry(self, key: str) -> Path:
        """A write that died mid-flight: truncated JSON."""
        path = self.cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"cycles": 12', encoding="utf-8")
        return path

    def garbage_entry(self, key: str) -> Path:
        """Valid JSON, nonsense document (negative cycle count)."""
        path = self.cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"cycles": -7}', encoding="utf-8")
        return path

    def non_dict_entry(self, key: str) -> Path:
        """Valid JSON of the wrong shape entirely."""
        path = self.cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('[1, 2, 3]', encoding="utf-8")
        return path

    def strays(self) -> list:
        """Non-entry droppings maintenance paths must ignore: an
        orphaned atomic-write temp file, a note, and a mismatched
        fan-out name."""
        fan = self.cache.root / "ab"
        fan.mkdir(parents=True, exist_ok=True)
        paths = [
            fan / ".tmp-orphaned.json",
            self.cache.root / "README",
            fan / "zz-wrong-fanout.json",
        ]
        for path in paths:
            path.write_text("not a cache entry", encoding="utf-8")
        return paths

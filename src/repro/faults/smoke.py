"""End-to-end containment proof: ``python -m repro faults-smoke``.

Runs one engine batch over a worker pool with three live faults injected
— a raising point, a watchdog-tripping cycle burner, and a hard-killed
worker — alongside healthy points, then checks that

1. every healthy point returns exactly the cycle count an inline
   (``jobs=1``) engine computes for it;
2. ``BatchResult.failures`` reports exactly the injected failures, with
   the expected kinds;
3. a transient fault (fails once, then heals) is absorbed by a
   single-retry policy with no user-visible failure.

Exit code 0 means the resilience layer contained everything.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path
from typing import Callable, List, Tuple

from repro.engine import (
    ExperimentEngine,
    ExperimentPoint,
    KernelTraceSpec,
    RetryPolicy,
)
from repro.faults import install_fault_systems, uninstall_fault_systems

__all__ = ["run_faults_smoke"]


def _healthy_points(elements: int) -> List[ExperimentPoint]:
    return [
        ExperimentPoint(
            system=system,
            trace=KernelTraceSpec(
                kernel=kernel, stride=stride, elements=elements
            ),
        )
        for kernel, stride in (("copy", 1), ("scale", 19))
        for system in ("pva-sdram", "cacheline-serial")
    ]


def _fault_point(system: str, elements: int) -> ExperimentPoint:
    return ExperimentPoint(
        system=system,
        trace=KernelTraceSpec(kernel="copy", stride=1, elements=elements),
    )


def run_faults_smoke(
    jobs: int = 2,
    timeout: float = 5.0,
    elements: int = 64,
    emit: Callable[[str], None] = None,
) -> int:
    """Run the containment smoke; return a process exit code."""
    emit = emit if emit is not None else lambda line: print(
        line, file=sys.stderr
    )
    checks: List[Tuple[str, bool]] = []

    def check(label: str, passed: bool) -> None:
        checks.append((label, passed))
        emit(f"[faults-smoke] {'ok  ' if passed else 'FAIL'} {label}")

    with tempfile.TemporaryDirectory(prefix="repro-faults-") as state:
        names = install_fault_systems(state_dir=Path(state))
        try:
            healthy = _healthy_points(elements)
            faulty = [
                _fault_point(names["raising"], elements),
                _fault_point(names["burner"], elements),
                _fault_point(names["killer"], elements),
            ]
            batch_points = healthy + faulty

            reference = ExperimentEngine(jobs=1).run(healthy)

            engine = ExperimentEngine(
                jobs=jobs,
                on_error="collect",
                timeout=timeout,
                degrade_after=99,  # never run the killer inline
            )
            emit(
                f"[faults-smoke] running {len(batch_points)} points "
                f"({len(faulty)} faulty) at jobs={jobs}, "
                f"timeout={timeout}s ..."
            )
            batch = engine.run(batch_points)

            check(
                "healthy points match the inline reference",
                list(batch[: len(healthy)]) == list(reference),
            )
            check(
                f"exactly {len(faulty)} failures reported",
                len(batch.failures) == len(faulty),
            )
            kinds = {
                failure.point.system: (failure.kind, failure.error_type)
                for failure in batch.failures
            }
            check(
                "raising point contained as InjectedFault",
                kinds.get(names["raising"])
                == ("exception", "InjectedFault"),
            )
            check(
                "cycle burner contained by the simulation watchdog",
                kinds.get(names["burner"])
                == ("exception", "SimulationTimeout"),
            )
            check(
                "killed worker recovered via the per-point timeout",
                kinds.get(names["killer"], ("", ""))[0] == "timeout",
            )
            check(
                "timeout metric recorded the lost worker",
                engine.metrics.timeouts >= 1,
            )

            retry_engine = ExperimentEngine(
                jobs=jobs,
                on_error="collect",
                retry=RetryPolicy(retries=1, backoff_seconds=0.01),
                timeout=timeout,
            )
            retry_batch = retry_engine.run(
                [_fault_point(names["transient"], elements)] + healthy
            )
            check(
                "transient fault absorbed by one retry",
                retry_batch.ok and retry_engine.metrics.retries == 1,
            )
        finally:
            uninstall_fault_systems()

    failed = [label for label, passed in checks if not passed]
    emit(
        f"[faults-smoke] {len(checks) - len(failed)}/{len(checks)} "
        "containment checks passed"
    )
    return 1 if failed else 0

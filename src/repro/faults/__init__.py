"""Deterministic fault injection for the experiment engine.

The resilience claims of :mod:`repro.engine` are only worth what can be
demonstrated, so this package provides **injectors** — memory systems
that fail in exactly one reproducible way (raise, hang, die, corrupt) —
plus registry plumbing to expose them to the engine under ``fault-*``
system names, and the end-to-end smoke harness behind
``python -m repro faults-smoke``.

Quick start::

    from repro import faults
    from repro.engine import ExperimentEngine, ExperimentPoint, KernelTraceSpec

    names = faults.install_fault_systems(state_dir=tmpdir)
    engine = ExperimentEngine(jobs=4, on_error="collect", timeout=5.0)
    batch = engine.run([
        ExperimentPoint("pva-sdram", KernelTraceSpec("copy", stride=1)),
        ExperimentPoint(names["raising"], KernelTraceSpec("copy", stride=1)),
    ])
    assert batch.cycles[0] is not None and batch.failures[0].index == 1
    faults.uninstall_fault_systems()

The injectors are plain classes too — wrap any system directly when a
test does not need the registry.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

from repro.api import build_system, register_system, unregister_system
from repro.faults.injectors import (
    CacheCorruptor,
    CycleBurnerSystem,
    InjectedFault,
    RaisingSystem,
    SlowSystem,
    TransientFaultSystem,
    WorkerKillerSystem,
)

__all__ = [
    "InjectedFault",
    "RaisingSystem",
    "TransientFaultSystem",
    "CycleBurnerSystem",
    "WorkerKillerSystem",
    "SlowSystem",
    "CacheCorruptor",
    "FAULT_SYSTEM_NAMES",
    "install_fault_systems",
    "uninstall_fault_systems",
]

#: Registry names claimed by :func:`install_fault_systems`, by role.
FAULT_SYSTEM_NAMES: Dict[str, str] = {
    "raising": "fault-raising",
    "transient": "fault-transient",
    "burner": "fault-burner",
    "killer": "fault-killer",
    "killer-once": "fault-killer-once",
    "slow": "fault-slow",
}


def install_fault_systems(
    base: str = "pva-sdram",
    *,
    state_dir: Optional[Union[str, Path]] = None,
    fail_on_command: int = 0,
) -> Dict[str, str]:
    """Register the injectors as engine-runnable systems.

    ``base`` names the healthy system the wrappers delegate to.  The
    ``transient`` and ``killer-once`` injectors need ``state_dir`` for
    their cross-process marker files; without it only the stateless
    injectors are registered.  Registration uses ``overwrite=True`` so
    repeated installs (e.g. per test) simply re-point the names.

    Returns the role -> system-name mapping actually registered.
    """
    names = {}

    def _register(role: str, factory, description: str) -> None:
        name = FAULT_SYSTEM_NAMES[role]
        register_system(
            name, factory, description=description, overwrite=True
        )
        names[role] = name

    _register(
        "raising",
        lambda p: RaisingSystem(
            build_system(base, p), fail_on_command=fail_on_command
        ),
        f"injector: raises InjectedFault on command {fail_on_command}",
    )
    _register(
        "burner",
        lambda p: CycleBurnerSystem(p),
        "injector: burns cycles until the simulation watchdog trips",
    )
    _register(
        "killer",
        lambda p: WorkerKillerSystem(),
        "injector: kills the executing process on every run",
    )
    _register(
        "slow",
        lambda p: SlowSystem(build_system(base, p), seconds=1.0),
        "injector: delays each run by one wall-clock second",
    )
    if state_dir is not None:
        state = Path(state_dir)
        state.mkdir(parents=True, exist_ok=True)
        transient_marker = state / "transient.attempted"
        killer_marker = state / "killer.fired"
        _register(
            "transient",
            lambda p: TransientFaultSystem(
                build_system(base, p), marker=transient_marker
            ),
            "injector: fails the first attempt, then heals",
        )
        _register(
            "killer-once",
            lambda p: WorkerKillerSystem(
                build_system(base, p), marker=killer_marker
            ),
            "injector: kills the first executing process, then heals",
        )
    return names


def uninstall_fault_systems() -> None:
    """Remove every ``fault-*`` name from the system registry (names
    not currently registered are ignored)."""
    for name in FAULT_SYSTEM_NAMES.values():
        unregister_system(name, missing_ok=True)

"""The simulation-as-a-service daemon: ``python -m repro serve``.

Wires the service stack together — admission queue, write-ahead
journal, supervisor with warm engine pools, HTTP API — and owns the
two lifecycle edges the rest of the package exists for:

* **startup recovery**: replay the journal, re-register terminal jobs,
  re-enqueue incomplete ones (they resume point-by-point against the
  shared result cache), then compact the journal so it stays bounded;
* **graceful shutdown** on SIGTERM/SIGINT: stop admitting
  (``/readyz`` flips to 503, submissions get 503), drain running jobs
  within the configured budget, requeue any stragglers at a point
  boundary, compact + close the journal, and exit 0.  A SIGKILL skips
  all of this — which is exactly what the journal is for.

HTTP API (all JSON)::

    POST   /jobs        submit {kind, payload, tenant?, deadline_seconds?}
                        -> 201 {job} | 429 (queue full / quota) | 503
    GET    /jobs        -> {jobs: [...]}
    GET    /jobs/<id>   -> {job}       | 404
    DELETE /jobs/<id>   -> {job}       | 404 | 409 (already terminal)
    GET    /healthz     liveness: 200 once serving
    GET    /readyz      readiness: 200 accepting | 503 draining/full
    GET    /metrics     engine + service counters, queue/breaker state
"""

from __future__ import annotations

import asyncio
import signal
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.engine import CircuitBreaker
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    JobNotFoundError,
    JobStateError,
    ReproError,
)
from repro.service.http import HttpServer, Request, Response
from repro.service.jobs import spec_from_payload
from repro.service.journal import JobJournal
from repro.service.queue import AdmissionQueue
from repro.service.supervisor import Supervisor

__all__ = ["ServiceConfig", "ServiceDaemon", "serve"]

#: How often the scheduler loop matches queued jobs to free runners.
_DISPATCH_SECONDS = 0.05


@dataclass
class ServiceConfig:
    """Everything ``python -m repro serve`` can set."""

    host: str = "127.0.0.1"
    port: int = 8642
    #: Write the actually-bound port here once listening (lets tests
    #: and the chaos harness use ``port=0`` without a race).
    port_file: Optional[str] = None
    state_dir: str = ".repro-service"
    engine_jobs: int = 2
    concurrency: int = 1
    queue_depth: int = 64
    tenant_quota: int = 8
    point_timeout: Optional[float] = 60.0
    retries: int = 1
    drain_seconds: float = 30.0
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    #: Register the repro.faults injector systems inside the daemon
    #: (chaos testing only); value is their marker-state directory.
    install_faults: Optional[str] = None

    @property
    def cache_dir(self) -> Path:
        return Path(self.state_dir) / "cache"

    @property
    def journal_path(self) -> Path:
        return Path(self.state_dir) / "journal.jsonl"


class ServiceDaemon:
    """One service instance; drive with :meth:`run` (blocking) or the
    async :meth:`start` / :meth:`shutdown` pair (tests, embedding)."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        Path(self.config.state_dir).mkdir(parents=True, exist_ok=True)
        self.journal = JobJournal(self.config.journal_path)
        self.queue = AdmissionQueue(
            max_depth=self.config.queue_depth,
            tenant_quota=self.config.tenant_quota,
        )
        self.supervisor = Supervisor(
            queue=self.queue,
            journal=self.journal,
            cache_dir=self.config.cache_dir,
            engine_jobs=self.config.engine_jobs,
            concurrency=self.config.concurrency,
            point_timeout=self.config.point_timeout,
            retries=self.config.retries,
            breaker=CircuitBreaker(
                threshold=self.config.breaker_threshold,
                cooldown_seconds=self.config.breaker_cooldown,
            ),
        )
        self.server = HttpServer(
            self.handle, host=self.config.host, port=self.config.port
        )
        self.accepting = False
        self.resumed_jobs = 0
        self._dispatch_task: Optional[asyncio.Task] = None
        self._shutdown_event: Optional[asyncio.Event] = None

    # -------------------------------------------------------- lifecycle

    def recover(self) -> int:
        """Replay + compact the journal; returns resumed-job count."""
        replay = JobJournal.replay(self.config.journal_path)
        resumed = self.supervisor.recover(replay)
        self.resumed_jobs = len(resumed)
        self.supervisor.metrics.journal_replayed = self.resumed_jobs
        # Compaction drops the historical chatter; the registry now
        # holds everything live.
        self.journal.compact(self.supervisor.registry.values())
        return self.resumed_jobs

    async def start(self) -> None:
        if self.config.install_faults:
            from repro.faults import install_fault_systems

            install_fault_systems(state_dir=self.config.install_faults)
        self.recover()
        await self.server.start()
        if self.config.port_file:
            Path(self.config.port_file).write_text(
                str(self.server.bound_port), encoding="utf-8"
            )
        self.accepting = True
        self._dispatch_task = asyncio.ensure_future(self._dispatch_loop())

    async def _dispatch_loop(self) -> None:
        while True:
            self.supervisor.dispatch()
            await asyncio.sleep(_DISPATCH_SECONDS)

    async def shutdown(self) -> dict:
        """Graceful stop; always leaves a consistent journal."""
        self.accepting = False
        await self.server.stop()
        if self._dispatch_task is not None:
            self._dispatch_task.cancel()
            try:
                await self._dispatch_task
            except asyncio.CancelledError:
                pass
            self._dispatch_task = None
        summary = await asyncio.get_event_loop().run_in_executor(
            None,
            lambda: self.supervisor.drain(
                timeout=self.config.drain_seconds
            ),
        )
        try:
            self.journal.compact(self.supervisor.registry.values())
        except ReproError:
            pass  # the uncompacted journal is still replayable
        self.journal.close()
        return summary

    def request_stop(self) -> None:
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def run_async(self) -> dict:
        """Serve until SIGTERM/SIGINT, then drain and return."""
        self._shutdown_event = asyncio.Event()
        loop = asyncio.get_event_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_stop)
            except (NotImplementedError, RuntimeError):
                signal.signal(
                    signum, lambda *_args: self.request_stop()
                )
        await self.start()
        print(
            f"[serve] listening on http://{self.config.host}:"
            f"{self.server.bound_port} "
            f"(state: {self.config.state_dir}, "
            f"resumed {self.resumed_jobs} job(s))",
            file=sys.stderr,
            flush=True,
        )
        await self._shutdown_event.wait()
        print("[serve] shutting down: draining jobs ...", file=sys.stderr)
        summary = await self.shutdown()
        print(
            f"[serve] drained {summary['drained']} job(s), "
            f"requeued {len(summary['interrupted'])}, "
            f"{summary['queued_left']} left queued",
            file=sys.stderr,
            flush=True,
        )
        return summary

    def run(self) -> int:
        """Blocking entry point for the CLI."""
        try:
            asyncio.run(self.run_async())
        except KeyboardInterrupt:
            # Signal handler installation failed (exotic platform) and
            # the interrupt surfaced directly: drain synchronously so
            # ^C still exits with a consistent journal and no orphans.
            self.supervisor.drain(timeout=self.config.drain_seconds)
            try:
                self.journal.compact(self.supervisor.registry.values())
            except ReproError:
                pass
            self.journal.close()
        return 0

    # ---------------------------------------------------------- routing

    def handle(self, request: Request) -> Response:
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            return self._healthz()
        if path == "/readyz" and method == "GET":
            return self._readyz()
        if path == "/metrics" and method == "GET":
            return self._metrics()
        if path == "/jobs" and method == "POST":
            return self._submit(request)
        if path == "/jobs" and method == "GET":
            return Response(
                200,
                {
                    "jobs": [
                        job.describe()
                        for job in self.supervisor.registry.values()
                    ]
                },
            )
        if path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            if method == "GET":
                return self._status(job_id)
            if method == "DELETE":
                return self._cancel(job_id)
            return Response(405, {"error": f"{method} not allowed"})
        return Response(404, {"error": f"no route {method} {path}"})

    def _submit(self, request: Request) -> Response:
        if not self.accepting:
            return Response(503, {"error": "service is shutting down"})
        try:
            document = request.json()
        except (ValueError, UnicodeDecodeError):
            return Response(400, {"error": "body must be valid JSON"})
        if not isinstance(document, dict):
            return Response(400, {"error": "body must be a JSON object"})
        try:
            spec = spec_from_payload(document)
            job = self.supervisor.submit(spec)
        except AdmissionError as error:
            return Response(
                429,
                {
                    "error": str(error),
                    "kind": type(error).__name__,
                    "retry_after_seconds": 1.0,
                },
            )
        except ConfigurationError as error:
            return Response(400, {"error": str(error)})
        return Response(201, {"job": job.describe()})

    def _status(self, job_id: str) -> Response:
        try:
            job = self.supervisor.get(job_id)
        except JobNotFoundError as error:
            return Response(404, {"error": str(error)})
        return Response(200, {"job": job.describe()})

    def _cancel(self, job_id: str) -> Response:
        try:
            job = self.supervisor.cancel(job_id)
        except JobNotFoundError as error:
            return Response(404, {"error": str(error)})
        except JobStateError as error:
            return Response(409, {"error": str(error)})
        return Response(200, {"job": job.describe()})

    def _healthz(self) -> Response:
        journal = self.journal.describe()
        healthy = not journal["closed"]
        return Response(
            200 if healthy else 503,
            {
                "status": "ok" if healthy else "failing",
                "journal": journal,
                "queue": self.queue.describe(),
                "supervisor": self.supervisor.describe(),
            },
        )

    def _readyz(self) -> Response:
        queue_full = self.queue.depth >= self.queue.max_depth
        ready = self.accepting and not queue_full
        reasons = []
        if not self.accepting:
            reasons.append("draining")
        if queue_full:
            reasons.append("queue full")
        return Response(
            200 if ready else 503,
            {
                "ready": ready,
                "reasons": reasons,
                "queue_depth": self.queue.depth,
                "breaker": self.supervisor.breaker.describe(),
            },
        )

    def _metrics(self) -> Response:
        metrics = self.supervisor.metrics
        metrics.queue_rejected = self.queue.rejected
        metrics.breaker_trips = self.supervisor.breaker.trips
        if self.supervisor.cache is not None:
            metrics.cache_quarantined = self.supervisor.cache.quarantined
        return Response(
            200,
            {
                "engine": metrics.summary(),
                "queue": self.queue.describe(),
                "breaker": self.supervisor.breaker.describe(),
                "journal": self.journal.describe(),
                "jobs": {
                    "registered": len(self.supervisor.registry),
                    "running": self.supervisor.running,
                    "resumed": self.resumed_jobs,
                },
            },
        )


def serve(config: ServiceConfig) -> int:
    """CLI entry: run one daemon to completion."""
    return ServiceDaemon(config).run()

"""Write-ahead job journal: the daemon's crash-recovery backbone.

Every job transition is appended to a JSONL file *before* it is acted
on: ``submit`` when a job is admitted, ``start`` when it begins
executing, ``progress`` as points land, ``cancel`` when cancellation is
requested, and ``end`` when it reaches a terminal state.  A daemon that
is SIGKILLed mid-batch therefore loses nothing durable: on restart,
:func:`JobJournal.replay` folds the log back into per-job records —
jobs with a ``submit`` but no ``end`` are *incomplete* and get
re-enqueued, and their already-computed grid points replay from the
content-addressed :class:`~repro.engine.cache.ResultCache` instead of
being re-simulated.

Robustness properties:

* each record is one line, written with a single ``write`` call and
  flushed; ``submit``/``end``/``cancel`` records are additionally
  fsynced, so the accepted-jobs set survives power loss;
* every record is stamped with :data:`JOURNAL_SCHEMA_VERSION` (the
  same convention as the result cache's ``schema_version``): replay
  skips — and counts — records from other versions rather than
  misreading them;
* a torn final line (the SIGKILL landed mid-write) is skipped and
  counted, never fatal;
* :meth:`JobJournal.compact` rewrites the log atomically (temp file +
  ``os.replace``) keeping only live records, so the journal stays
  bounded across restarts.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

from repro.errors import JournalError
from repro.service.jobs import TERMINAL_STATES, JobState

__all__ = ["JOURNAL_SCHEMA_VERSION", "JobJournal", "JournalReplay"]

#: Stamped into every record; bump when record semantics change so an
#: old daemon never misreads a new journal (and vice versa).
JOURNAL_SCHEMA_VERSION = 1

#: Record types that must hit the platter before the daemon proceeds.
_DURABLE_TYPES = frozenset(("submit", "end", "cancel"))


@dataclass
class JournalReplay:
    """The folded state of one journal file."""

    #: job_id -> folded record: {"spec": dict, "state": str,
    #: "error": str|None, "result": dict|None, "cancel_requested": bool,
    #: "was_running": bool}
    jobs: Dict[str, Dict] = field(default_factory=dict)
    #: Lines that could not be parsed (torn tail, corruption).
    skipped: int = 0
    #: Records from a different schema version.
    version_skipped: int = 0
    #: Total records successfully folded.
    records: int = 0

    @property
    def incomplete(self) -> List[str]:
        """Job ids with a ``submit`` but no terminal ``end`` — the jobs
        a restarted daemon must resume (in submission order)."""
        return [
            job_id
            for job_id, record in self.jobs.items()
            if record["state"] not in TERMINAL_STATES
        ]


class JobJournal:
    """Append-only JSONL journal with atomic compaction."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(
                self.path, "a", encoding="utf-8", buffering=1
            )
        except OSError as error:
            raise JournalError(
                f"cannot open job journal {self.path}: {error}"
            ) from error
        self.records_written = 0
        # Supervisor worker threads and the asyncio thread both append.
        self._lock = threading.Lock()

    # ----------------------------------------------------------- write

    def record(self, record_type: str, job_id: str, **fields) -> None:
        """Append one record; durable types are fsynced."""
        if self._handle.closed:
            raise JournalError(
                f"journal {self.path} is closed; record {record_type!r} "
                "for job {job_id} was not written"
            )
        document = {
            "schema_version": JOURNAL_SCHEMA_VERSION,
            "type": record_type,
            "job_id": job_id,
        }
        document.update(fields)
        line = json.dumps(document, sort_keys=True) + "\n"
        try:
            with self._lock:
                self._handle.write(line)
                self._handle.flush()
                if record_type in _DURABLE_TYPES:
                    os.fsync(self._handle.fileno())
        except OSError as error:
            raise JournalError(
                f"cannot append to job journal {self.path}: {error}"
            ) from error
        self.records_written += 1

    def submit(self, job) -> None:
        self.record("submit", job.id, spec=job.spec.describe())

    def start(self, job) -> None:
        self.record("start", job.id)

    def progress(self, job) -> None:
        self.record("progress", job.id, progress=dict(job.progress))

    def cancel(self, job_id: str) -> None:
        self.record("cancel", job_id)

    def end(self, job) -> None:
        self.record(
            "end",
            job.id,
            state=job.state,
            error=job.error,
            result=job.result,
        )

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            try:
                os.fsync(self._handle.fileno())
            except OSError:
                pass
            self._handle.close()

    @property
    def closed(self) -> bool:
        return self._handle.closed

    # ---------------------------------------------------------- replay

    @classmethod
    def replay(cls, path: Union[str, Path]) -> JournalReplay:
        """Fold a journal file into per-job records.

        Unparsable lines and wrong-version records are skipped and
        counted; a missing file replays to an empty state.  Never
        raises on content — the journal is the recovery path, so it
        must be readable after any crash.
        """
        replay = JournalReplay()
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return replay
        except OSError as error:
            raise JournalError(
                f"cannot read job journal {path}: {error}"
            ) from error
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                document = json.loads(line)
            except (json.JSONDecodeError, UnicodeDecodeError):
                replay.skipped += 1
                continue
            if not isinstance(document, dict):
                replay.skipped += 1
                continue
            if document.get("schema_version") != JOURNAL_SCHEMA_VERSION:
                replay.version_skipped += 1
                continue
            job_id = document.get("job_id")
            record_type = document.get("type")
            if not isinstance(job_id, str) or not record_type:
                replay.skipped += 1
                continue
            replay.records += 1
            record = replay.jobs.get(job_id)
            if record_type == "submit":
                replay.jobs[job_id] = {
                    "spec": document.get("spec", {}),
                    "state": JobState.QUEUED,
                    "error": None,
                    "result": None,
                    "progress": {},
                    "cancel_requested": False,
                    "was_running": False,
                }
                continue
            if record is None:
                # A non-submit record for an unknown job (compacted
                # away or torn submit): count it, nothing to fold onto.
                replay.skipped += 1
                continue
            if record_type == "start":
                record["was_running"] = True
            elif record_type == "progress":
                progress = document.get("progress")
                if isinstance(progress, dict):
                    record["progress"] = progress
            elif record_type == "cancel":
                record["cancel_requested"] = True
            elif record_type == "end":
                state = document.get("state")
                if state in TERMINAL_STATES:
                    record["state"] = state
                    record["error"] = document.get("error")
                    record["result"] = document.get("result")
                else:
                    replay.skipped += 1
        return replay

    # --------------------------------------------------------- compact

    def compact(self, jobs) -> int:
        """Atomically rewrite the journal from live job state.

        Keeps one ``submit`` (+ ``end`` for terminal jobs, ``cancel``
        for pending cancels) per known job, dropping the historical
        progress chatter.  Returns the number of records written.
        Called at startup after replay and at graceful shutdown, so the
        journal's size is bounded by the job registry, not by uptime.
        """
        fd, temp_name = tempfile.mkstemp(
            dir=str(self.path.parent),
            prefix=f".{self.path.name}.",
            suffix=".compact",
        )
        written = 0
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for job in jobs:
                    records = [
                        {
                            "schema_version": JOURNAL_SCHEMA_VERSION,
                            "type": "submit",
                            "job_id": job.id,
                            "spec": job.spec.describe(),
                        }
                    ]
                    if job.cancel_requested and not job.terminal:
                        records.append(
                            {
                                "schema_version": JOURNAL_SCHEMA_VERSION,
                                "type": "cancel",
                                "job_id": job.id,
                            }
                        )
                    if job.terminal:
                        records.append(
                            {
                                "schema_version": JOURNAL_SCHEMA_VERSION,
                                "type": "end",
                                "job_id": job.id,
                                "state": job.state,
                                "error": job.error,
                                "result": job.result,
                            }
                        )
                    for document in records:
                        handle.write(
                            json.dumps(document, sort_keys=True) + "\n"
                        )
                        written += 1
                handle.flush()
                os.fsync(handle.fileno())
            # Swap the live handle over to the compacted file.
            was_closed = self._handle.closed
            if not was_closed:
                self._handle.close()
            os.replace(temp_name, self.path)
            self._handle = open(
                self.path, "a", encoding="utf-8", buffering=1
            )
            if was_closed:
                self._handle.close()
        except OSError as error:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise JournalError(
                f"cannot compact job journal {self.path}: {error}"
            ) from error
        return written

    def describe(self) -> Dict:
        return {
            "path": str(self.path),
            "schema_version": JOURNAL_SCHEMA_VERSION,
            "records_written": self.records_written,
            "closed": self._handle.closed,
        }

"""The job supervisor: queue -> warm engine pools -> terminal states.

One :class:`Supervisor` owns the job registry, the admission queue, the
write-ahead journal, a shared content-addressed result cache, and a
small thread pool of job runners.  Each job executes on its own
:class:`~repro.engine.ExperimentEngine` (the process pool inside it
does the simulating), with:

* **streaming progress** — an :class:`~repro.engine.EngineHooks`
  adapter folds per-point outcomes into the job's ``progress`` dict and
  the journal as they land, so clients polling ``GET /jobs/<id>`` watch
  the batch advance;
* **cooperative cancellation and deadlines** — the engine's ``abort``
  callback polls the job's cancel event and wall-clock budget between
  point completions; completed points are already cached, so nothing is
  wasted;
* **a circuit breaker** (:class:`~repro.engine.CircuitBreaker`) —
  repeated pool incidents (lost workers, timeouts, in-batch
  degradation) trip the service to inline execution, where the
  simulation watchdog is the containment layer, and a half-open probe
  restores pool execution once batches behave again;
* **full-jitter retries** — queued jobs that fail together back off on
  desynchronized schedules instead of storming the pool in lockstep.

Every path out of :meth:`_run_job` ends with a journal ``end`` record
and a quota release: an accepted job cannot leave the system without a
terminal state.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional

from repro.engine import (
    CircuitBreaker,
    EngineHooks,
    EngineMetrics,
    ExperimentEngine,
    ResultCache,
    RetryPolicy,
)
from repro.errors import (
    BatchAbortedError,
    JobNotFoundError,
    JobStateError,
    QueueFullError,
    ReproError,
)
from repro.service.jobs import (
    Job,
    JobSpec,
    JobState,
    spec_from_payload,
    spec_points,
)
from repro.service.journal import JobJournal, JournalReplay
from repro.service.queue import AdmissionQueue

__all__ = ["Supervisor"]

#: EngineMetrics fields folded from per-job engines into the service
#: totals (component_cycles is merged structurally).
_NUMERIC_METRIC_FIELDS = (
    "points_total",
    "points_done",
    "cache_hits",
    "simulated",
    "coalesced",
    "elapsed_seconds",
    "failures",
    "retries",
    "timeouts",
    "degraded",
    "simulated_cycles",
    "sim_seconds",
    "aborted",
)


class _JobProgressHooks(EngineHooks):
    """Stream engine outcomes into the job record and the journal."""

    def __init__(self, job: Job, journal: JobJournal):
        self.job = job
        self.journal = journal
        self.cycles: Dict[int, Optional[int]] = {}

    def point_done(self, outcome, metrics):
        progress = self.job.progress
        progress["points_done"] += 1
        if outcome.cached:
            progress["cache_hits"] += 1
        self.cycles[outcome.index] = outcome.cycles
        try:
            self.journal.progress(self.job)
        except ReproError:
            # Progress records are advisory; losing one must not fail
            # the batch (the cache still holds the computed point).
            pass

    def point_failed(self, failure, metrics):
        self.job.progress["failures"] += 1


class Supervisor:
    """Runs admitted jobs to terminal states; survives its own pools."""

    def __init__(
        self,
        *,
        queue: AdmissionQueue,
        journal: JobJournal,
        cache_dir=None,
        engine_jobs: int = 2,
        concurrency: int = 1,
        point_timeout: Optional[float] = 60.0,
        retries: int = 1,
        breaker: Optional[CircuitBreaker] = None,
        on_job_end: Optional[Callable[[Job], None]] = None,
    ):
        self.queue = queue
        self.journal = journal
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.engine_jobs = max(1, int(engine_jobs))
        self.concurrency = max(1, int(concurrency))
        self.point_timeout = point_timeout
        self.retry = RetryPolicy(
            retries=max(0, int(retries)),
            backoff_seconds=0.05 if retries else 0.0,
            jitter=True,  # desynchronize retry storms across queued jobs
        )
        self.breaker = breaker or CircuitBreaker()
        self.on_job_end = on_job_end
        self.registry: Dict[str, Job] = {}
        self.metrics = EngineMetrics(jobs=self.engine_jobs)
        self._executor = ThreadPoolExecutor(
            max_workers=self.concurrency,
            thread_name_prefix="repro-job",
        )
        self._lock = threading.Lock()
        self._running: Dict[str, object] = {}  #: job_id -> Future
        self._draining = False

    # ------------------------------------------------------ submission

    def submit(self, spec: JobSpec) -> Job:
        """Admit one job: quota/depth checks, then WAL, then queue.

        The journal record is written before the caller learns the job
        id, so an accepted job survives any later crash.  Raises an
        :class:`~repro.errors.AdmissionError` subclass on rejection
        (counted in ``metrics.queue_rejected``).
        """
        if self._draining:
            self.metrics.queue_rejected += 1
            raise QueueFullError("service is shutting down")
        job = Job(spec)
        try:
            self.queue.submit(job)
        except ReproError:
            self.metrics.queue_rejected += 1
            raise
        self.journal.submit(job)
        self.registry[job.id] = job
        return job

    def recover(self, replay: JournalReplay) -> List[Job]:
        """Re-enqueue the journal's incomplete jobs after a restart.

        Terminal jobs are re-registered in their final states (so
        clients can still query them); incomplete ones are re-queued
        with ``recovered=True`` and bypass the tenant quota — the
        daemon already accepted them once.
        """
        resumed = []
        for job_id, record in replay.jobs.items():
            try:
                spec = spec_from_payload(record["spec"])
            except ReproError:
                continue  # unreadable spec: cannot be re-run
            job = Job(spec, job_id=job_id, recovered=True)
            if record["state"] in (
                JobState.DONE,
                JobState.FAILED,
                JobState.CANCELLED,
            ):
                job.mark_terminal(
                    record["state"],
                    error=record.get("error"),
                    result=record.get("result"),
                )
                self.registry[job.id] = job
                continue
            if record.get("cancel_requested"):
                job.request_cancel()
            self.queue.submit(job, count_quota=False)
            self.registry[job.id] = job
            self.metrics.journal_replayed += 1
            resumed.append(job)
        return resumed

    # ------------------------------------------------------ scheduling

    def dispatch(self) -> int:
        """Start queued jobs while runner slots are free; returns the
        number started.  Called by the daemon's scheduler loop."""
        started = 0
        with self._lock:
            if self._draining:
                return 0
            while len(self._running) < self.concurrency:
                job = self.queue.claim_next()
                if job is None:
                    break
                future = self._executor.submit(self._run_job, job)
                self._running[job.id] = future
                future.add_done_callback(
                    lambda _f, job_id=job.id: self._running.pop(
                        job_id, None
                    )
                )
                started += 1
        return started

    @property
    def running(self) -> int:
        return len(self._running)

    def get(self, job_id: str) -> Job:
        try:
            return self.registry[job_id]
        except KeyError:
            raise JobNotFoundError(f"no job {job_id!r}") from None

    def cancel(self, job_id: str) -> Job:
        """Request cancellation; queued jobs die immediately, running
        ones stop at the next point boundary."""
        job = self.get(job_id)
        if job.terminal:
            raise JobStateError(
                f"job {job_id} already {job.state}; nothing to cancel"
            )
        self.journal.cancel(job.id)
        job.request_cancel()
        if job.state == JobState.QUEUED and self.queue.remove(job):
            self._finish(job, JobState.CANCELLED, "cancelled while queued")
        return job

    # -------------------------------------------------------- execution

    def _finish(
        self,
        job: Job,
        state: str,
        error: Optional[str] = None,
        result: Optional[Dict] = None,
    ) -> None:
        """The single exit gate: terminal state + journal + quota."""
        job.mark_terminal(state, error=error, result=result)
        try:
            self.journal.end(job)
        finally:
            self.queue.release(job)
        if self.on_job_end is not None:
            self.on_job_end(job)

    def _run_job(self, job: Job) -> None:
        try:
            if job.cancel_requested:
                self._finish(
                    job, JobState.CANCELLED, "cancelled before start"
                )
                return
            job.mark_running()
            self.journal.start(job)
            if job.spec.kind == "bench":
                self._run_bench_job(job)
            else:
                self._run_points_job(job)
        except Exception as error:  # the terminal-state guarantee:
            # no exception may leave a job undecided.
            if not job.terminal:
                self._finish(
                    job,
                    JobState.FAILED,
                    f"{type(error).__name__}: {error}",
                )

    def _run_points_job(self, job: Job) -> None:
        points = spec_points(job.spec)
        job.progress["points_total"] = len(points)
        hooks = _JobProgressHooks(job, self.journal)
        use_pool = self.engine_jobs > 1 and self.breaker.allow()
        engine = ExperimentEngine(
            jobs=self.engine_jobs if use_pool else 1,
            hooks=hooks,
            on_error="collect",
            retry=self.retry,
            timeout=self.point_timeout,
        )
        if self.cache is not None:
            engine.cache = self.cache  # one shared cache, all jobs
        pool_incident = False
        try:
            batch = engine.run(
                points,
                abort=lambda: job.cancel_requested
                or job.shutdown_requested
                or job.deadline_expired(),
            )
        except BatchAbortedError:
            if job.cancel_requested:
                self._finish(
                    job, JobState.CANCELLED, "cancelled mid-batch"
                )
            elif job.shutdown_requested:
                # Graceful shutdown: not terminal — the journal keeps
                # the submit record live and the completed points are
                # cached, so the restarted daemon resumes cheaply.
                job.mark_requeued()
            else:
                self._finish(
                    job,
                    JobState.FAILED,
                    f"deadline of {job.spec.deadline_seconds}s exceeded",
                )
            return
        except Exception:
            pool_incident = use_pool
            raise
        finally:
            if use_pool:
                pool_incident = (
                    pool_incident
                    or engine.metrics.timeouts > 0
                    or engine.metrics.degraded > 0
                )
                if pool_incident:
                    self.breaker.record_incident()
                else:
                    self.breaker.record_success()
            self._fold_metrics(engine.metrics)
        cycles = [
            hooks.cycles.get(index) for index in range(len(points))
        ]
        result = {
            "cycles": cycles,
            "points": len(points),
            "cache_hits": engine.metrics.cache_hits,
            "simulated": engine.metrics.simulated,
            "failures": [
                failure.describe() for failure in batch.failures
            ]
            if hasattr(batch, "failures")
            else [],
        }
        if getattr(batch, "failures", ()):
            self._finish(
                job,
                JobState.FAILED,
                f"{len(batch.failures)} of {len(points)} point(s) "
                "failed terminally",
                result=result,
            )
        else:
            self._finish(job, JobState.DONE, result=result)

    def _run_bench_job(self, job: Job) -> None:
        from repro.bench import run_bench

        payload = job.spec.payload
        report = run_bench(
            elements=int(payload.get("elements", 256)),
            repeats=int(payload.get("repeats", 1)),
            quick=bool(payload.get("quick", True)),
            systems=payload.get("systems"),
        )
        self._finish(
            job,
            JobState.DONE,
            result={
                "speedup": report.get("speedup"),
                "systems": {
                    name: {
                        "simulated_cycles": entry.get("simulated_cycles"),
                        "speedup": entry.get("speedup"),
                    }
                    for name, entry in report.get("systems", {}).items()
                },
            },
        )

    def _fold_metrics(self, source: EngineMetrics) -> None:
        """Accumulate one job engine's metrics into the service totals."""
        with self._lock:
            for name in _NUMERIC_METRIC_FIELDS:
                setattr(
                    self.metrics,
                    name,
                    getattr(self.metrics, name) + getattr(source, name),
                )
            for name, buckets in source.component_cycles.items():
                entry = self.metrics.component_cycles.setdefault(
                    name, {"busy": 0, "stalled": 0, "idle": 0}
                )
                for bucket in ("busy", "stalled", "idle"):
                    entry[bucket] += buckets.get(bucket, 0)
            self.metrics.breaker_trips = self.breaker.trips
            self.metrics.queue_rejected = self.queue.rejected
            if self.cache is not None:
                self.metrics.cache_quarantined = self.cache.quarantined

    # --------------------------------------------------------- shutdown

    def drain(self, timeout: float = 30.0, grace: float = 5.0) -> Dict:
        """Graceful shutdown: stop dispatching, let running jobs finish
        within ``timeout``, then cancel-request stragglers and give
        them ``grace`` to stop at a point boundary.

        Queued jobs stay queued — their journal ``submit`` records make
        them resume on the next start.  Returns a summary dict.
        """
        import time as _time

        self._draining = True
        deadline = _time.monotonic() + max(0.0, timeout)
        futures = dict(self._running)
        for future in futures.values():
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                break
            try:
                future.result(timeout=remaining)
            except Exception:
                pass  # _run_job never lets job failures escape anyway
        interrupted = []
        if self._running:
            # Still running past the drain budget: abort at the next
            # point boundary and requeue (completed points are already
            # cached, so the restarted daemon recomputes nothing).
            for job_id in list(self._running):
                job = self.registry.get(job_id)
                if job is not None and not job.terminal:
                    job.request_shutdown()
                    interrupted.append(job_id)
            for future in dict(self._running).values():
                try:
                    future.result(timeout=grace)
                except Exception:
                    pass
        self._executor.shutdown(wait=False)
        return {
            "drained": len(futures) - len(interrupted),
            "interrupted": interrupted,
            "queued_left": self.queue.depth,
        }

    def describe(self) -> Dict:
        return {
            "running": self.running,
            "concurrency": self.concurrency,
            "engine_jobs": self.engine_jobs,
            "draining": self._draining,
            "breaker": self.breaker.describe(),
            "queue": self.queue.describe(),
            "jobs": len(self.registry),
        }

"""Thin blocking HTTP client for the service daemon.

Backs ``python -m repro submit/status/cancel`` and the test/chaos
harnesses.  Uses only :mod:`http.client`, maps the daemon's error
statuses back onto the library's exception hierarchy (429 ->
:class:`~repro.errors.QueueFullError`/:class:`~repro.errors.QuotaExceededError`,
404 -> :class:`~repro.errors.JobNotFoundError`, 409 ->
:class:`~repro.errors.JobStateError`), and keeps every call on a
bounded socket timeout so a wedged daemon cannot hang a client.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, List, Optional
from urllib.parse import urlsplit

from repro.errors import (
    JobNotFoundError,
    JobStateError,
    QueueFullError,
    QuotaExceededError,
    ServiceError,
)
from repro.service.jobs import TERMINAL_STATES

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talk to one daemon at ``url`` (default local port 8642)."""

    def __init__(
        self,
        url: str = "http://127.0.0.1:8642",
        timeout: float = 10.0,
    ):
        parts = urlsplit(url if "//" in url else f"//{url}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 8642
        self.timeout = timeout

    # ------------------------------------------------------- transport

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict] = None,
    ) -> Dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = (
                json.dumps(body).encode("utf-8")
                if body is not None
                else None
            )
            headers = {"Content-Type": "application/json"}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                document = json.loads(raw.decode("utf-8")) if raw else {}
            except (json.JSONDecodeError, UnicodeDecodeError):
                document = {"error": raw[:200].decode("latin-1")}
            return self._check(response.status, document)
        except (ConnectionError, OSError) as error:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: "
                f"{error}"
            ) from error
        finally:
            connection.close()

    @staticmethod
    def _check(status: int, document: Dict) -> Dict:
        if status < 400:
            return document
        message = document.get("error", f"HTTP {status}")
        if status == 429:
            if document.get("kind") == "QuotaExceededError":
                raise QuotaExceededError(message)
            raise QueueFullError(message)
        if status == 404:
            raise JobNotFoundError(message)
        if status == 409:
            raise JobStateError(message)
        raise ServiceError(f"service error (HTTP {status}): {message}")

    # ------------------------------------------------------------- api

    def submit(
        self,
        kind: str,
        payload: Dict,
        tenant: str = "default",
        deadline_seconds: Optional[float] = None,
    ) -> Dict:
        """Submit one job; returns its description (with ``id``)."""
        return self._request(
            "POST",
            "/jobs",
            {
                "kind": kind,
                "payload": payload,
                "tenant": tenant,
                "deadline_seconds": deadline_seconds,
            },
        )["job"]

    def status(self, job_id: str) -> Dict:
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def jobs(self) -> List[Dict]:
        return self._request("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> Dict:
        return self._request("DELETE", f"/jobs/{job_id}")["job"]

    def health(self) -> Dict:
        return self._request("GET", "/healthz")

    def ready(self) -> bool:
        try:
            return bool(self._request("GET", "/readyz").get("ready"))
        except ServiceError:
            return False

    def metrics(self) -> Dict:
        return self._request("GET", "/metrics")

    # ------------------------------------------------------ conveniences

    def wait(
        self,
        job_id: str,
        timeout: float = 120.0,
        poll_seconds: float = 0.1,
    ) -> Dict:
        """Poll until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["state"] in TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {job['state']} after "
                    f"{timeout}s"
                )
            time.sleep(poll_seconds)

    def wait_ready(self, timeout: float = 10.0) -> None:
        """Block until the daemon answers /readyz (startup races)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.ready():
                return
            time.sleep(0.05)
        raise ServiceError(
            f"service at {self.host}:{self.port} not ready after "
            f"{timeout}s"
        )

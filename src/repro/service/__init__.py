"""Simulation-as-a-service: a resilient long-running front end.

The batch engine answers one invocation and exits; this package keeps
it alive for concurrent clients and makes the *process* survivable the
way PR 2 made the *batch* survivable:

* :mod:`~repro.service.queue` — bounded admission (reject-with-429,
  per-tenant quotas) so overload degrades to fast rejections, never to
  unbounded buffering;
* :mod:`~repro.service.journal` — a schema-versioned write-ahead JSONL
  journal; a SIGKILLed daemon replays it on restart and resumes
  incomplete jobs point-by-point against the content-addressed result
  cache;
* :mod:`~repro.service.supervisor` — jobs on warm
  :class:`~repro.engine.ExperimentEngine` pools with per-job deadlines,
  streamed progress, cooperative cancellation, and a circuit breaker
  that trips to inline execution after repeated pool incidents;
* :mod:`~repro.service.daemon` — the asyncio HTTP daemon
  (``python -m repro serve``) with ``/healthz``/``/readyz``/``/metrics``
  and graceful SIGTERM/SIGINT drain;
* :mod:`~repro.service.client` — the stdlib-only client behind
  ``python -m repro submit/status/cancel``;
* :mod:`~repro.service.chaos` — the service's chaos-test tier
  (``python -m repro service-chaos``): worker kills, watchdog hangs,
  cache corruption, and a SIGKILL/restart of the daemon itself, with
  the invariant that every submitted job reaches a terminal state.

Quick start::

    # terminal 1
    python -m repro serve --port 8642 --state-dir .repro-service

    # terminal 2
    python -m repro submit grid --kernel copy --stride 1 --stride 19 --wait
    python -m repro status
"""

from repro.service.client import ServiceClient
from repro.service.daemon import ServiceConfig, ServiceDaemon, serve
from repro.service.jobs import (
    Job,
    JobSpec,
    JobState,
    TERMINAL_STATES,
    spec_from_payload,
    spec_points,
)
from repro.service.journal import (
    JOURNAL_SCHEMA_VERSION,
    JobJournal,
    JournalReplay,
)
from repro.service.queue import AdmissionQueue
from repro.service.supervisor import Supervisor

__all__ = [
    "ServiceClient",
    "ServiceConfig",
    "ServiceDaemon",
    "serve",
    "Job",
    "JobSpec",
    "JobState",
    "TERMINAL_STATES",
    "spec_from_payload",
    "spec_points",
    "JOURNAL_SCHEMA_VERSION",
    "JobJournal",
    "JournalReplay",
    "AdmissionQueue",
    "Supervisor",
]

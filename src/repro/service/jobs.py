"""Job model of the simulation service.

A **job** is one client-submitted unit of work — a single simulation
point, a grid slice, or a bench run — tracked from submission to a
*terminal* state.  The service's core guarantee is that every accepted
job ends in exactly one of ``done`` / ``failed`` / ``cancelled``: jobs
are never silently lost, not even across a SIGKILL of the daemon
(the write-ahead journal replays them on restart).

Specs are declarative data (kind + JSON payload), mirroring
:class:`repro.engine.spec.ExperimentPoint`: the daemon rebuilds the
exact point list from the spec in any process, which is what makes a
journal-replayed job equivalent to its original submission.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.engine import ExperimentPoint, KernelTraceSpec
from repro.params import SystemParams

__all__ = [
    "JobState",
    "TERMINAL_STATES",
    "JobSpec",
    "Job",
    "spec_from_payload",
    "spec_points",
]


class JobState:
    """Lifecycle states; ``TERMINAL_STATES`` are the resting ones."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


TERMINAL_STATES = frozenset(
    (JobState.DONE, JobState.FAILED, JobState.CANCELLED)
)

#: Job kinds the service accepts.
JOB_KINDS = ("simulate", "grid", "bench")


@dataclass(frozen=True)
class JobSpec:
    """What the client asked for: kind + kind-specific payload.

    ``payload`` keys by kind:

    * ``simulate`` — ``system``, ``kernel``, ``stride``, ``alignment``,
      ``elements``;
    * ``grid`` — ``systems``, ``kernels``, ``strides``, ``alignments``,
      ``elements`` (lists; the cross product is the point set);
    * ``bench`` — ``quick``, ``repeats``, ``systems``.

    ``simulate`` and ``grid`` payloads additionally accept ``params``:
    a canonical :meth:`repro.params.SystemParams.to_dict` document that
    configures every point of the job.  Because the journal stores the
    payload verbatim, the full resolved configuration (topology, device
    timing, sim_mode) survives crash recovery and replays to an
    identical ``config_key``.
    """

    kind: str
    payload: Dict
    tenant: str = "default"
    #: Wall-clock budget for the job once it starts; None = no deadline.
    deadline_seconds: Optional[float] = None

    def __post_init__(self):
        if self.kind not in JOB_KINDS:
            raise ConfigurationError(
                f"unknown job kind {self.kind!r}; expected one of "
                f"{', '.join(JOB_KINDS)}"
            )
        if not isinstance(self.payload, dict):
            raise ConfigurationError(
                f"job payload must be a dict, got {type(self.payload).__name__}"
            )
        if not self.tenant or not isinstance(self.tenant, str):
            raise ConfigurationError("tenant must be a non-empty string")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigurationError(
                f"deadline_seconds must be positive or None, "
                f"got {self.deadline_seconds}"
            )

    def describe(self) -> Dict:
        return {
            "kind": self.kind,
            "payload": self.payload,
            "tenant": self.tenant,
            "deadline_seconds": self.deadline_seconds,
        }


def spec_from_payload(document: Dict) -> JobSpec:
    """Build a validated :class:`JobSpec` from a client/journal dict."""
    if not isinstance(document, dict):
        raise ConfigurationError("job spec must be a JSON object")
    return JobSpec(
        kind=document.get("kind", ""),
        payload=document.get("payload", {}),
        tenant=document.get("tenant", "default") or "default",
        deadline_seconds=document.get("deadline_seconds"),
    )


def _as_list(payload: Dict, key: str, default) -> List:
    value = payload.get(key, default)
    if isinstance(value, (str, int)):
        value = [value]
    if not isinstance(value, (list, tuple)) or not value:
        raise ConfigurationError(
            f"grid payload field {key!r} must be a non-empty list"
        )
    return list(value)


def spec_points(spec: JobSpec) -> List[ExperimentPoint]:
    """Materialize the engine point list a simulate/grid spec describes.

    Validation (unknown kernels, bad strides, unknown systems) is
    deliberately deferred to the engine/simulator, which already raises
    precise :class:`~repro.errors.ConfigurationError` messages; this
    function only shapes the payload.
    """
    payload = spec.payload
    params_doc = payload.get("params")
    params = (
        SystemParams.from_dict(params_doc)
        if params_doc is not None
        else SystemParams()
    )
    if spec.kind == "simulate":
        return [
            ExperimentPoint(
                system=str(payload.get("system", "pva-sdram")),
                trace=KernelTraceSpec(
                    kernel=str(payload.get("kernel", "copy")),
                    stride=int(payload.get("stride", 1)),
                    alignment=str(payload.get("alignment", "aligned")),
                    elements=int(payload.get("elements", 1024)),
                ),
                params=params,
            )
        ]
    if spec.kind == "grid":
        systems = _as_list(payload, "systems", ["pva-sdram"])
        kernels = _as_list(payload, "kernels", ["copy"])
        strides = _as_list(payload, "strides", [1])
        alignments = _as_list(payload, "alignments", ["aligned"])
        elements = int(payload.get("elements", 1024))
        return [
            ExperimentPoint(
                system=str(system),
                trace=KernelTraceSpec(
                    kernel=str(kernel),
                    stride=int(stride),
                    alignment=str(alignment),
                    elements=elements,
                ),
                params=params,
            )
            for system, kernel, stride, alignment in itertools.product(
                systems, kernels, strides, alignments
            )
        ]
    raise ConfigurationError(
        f"job kind {spec.kind!r} has no point expansion (bench jobs run "
        "through repro.bench)"
    )


class Job:
    """One tracked job: spec, lifecycle state, progress, result.

    Mutable by design — the supervisor's worker threads and the asyncio
    request handlers share it, so every state transition goes through
    the job's lock and ``describe()`` takes a consistent snapshot.
    """

    def __init__(
        self,
        spec: JobSpec,
        job_id: Optional[str] = None,
        recovered: bool = False,
    ):
        self.id = job_id or uuid.uuid4().hex[:12]
        self.spec = spec
        self.state = JobState.QUEUED
        self.recovered = recovered  #: replayed from the journal
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.error: Optional[str] = None
        self.result: Optional[Dict] = None
        self.progress: Dict = {
            "points_total": 0,
            "points_done": 0,
            "cache_hits": 0,
            "failures": 0,
        }
        self.cancel_event = threading.Event()
        #: Set at graceful shutdown: abort at the next point boundary
        #: but *requeue* instead of cancelling, so the job resumes from
        #: the cache when the daemon restarts.
        self.shutdown_event = threading.Event()
        self._lock = threading.Lock()

    # -- state transitions (thread-safe) -------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def mark_running(self) -> None:
        with self._lock:
            self.state = JobState.RUNNING
            self.started_at = time.time()

    def mark_terminal(
        self,
        state: str,
        error: Optional[str] = None,
        result: Optional[Dict] = None,
    ) -> None:
        if state not in TERMINAL_STATES:
            raise ConfigurationError(
                f"{state!r} is not a terminal job state"
            )
        with self._lock:
            self.state = state
            self.error = error
            if result is not None:
                self.result = result
            self.finished_at = time.time()

    def request_cancel(self) -> None:
        self.cancel_event.set()

    @property
    def cancel_requested(self) -> bool:
        return self.cancel_event.is_set()

    def request_shutdown(self) -> None:
        self.shutdown_event.set()

    @property
    def shutdown_requested(self) -> bool:
        return self.shutdown_event.is_set()

    def mark_requeued(self) -> None:
        """Back to the queue after a shutdown abort (not terminal: the
        journal keeps its ``submit`` record live for the next start)."""
        with self._lock:
            self.state = JobState.QUEUED
            self.started_at = None

    def deadline_expired(self) -> bool:
        limit = self.spec.deadline_seconds
        if limit is None or self.started_at is None:
            return False
        return time.time() - self.started_at > limit

    def describe(self) -> Dict:
        """JSON-safe snapshot for the API and the journal."""
        with self._lock:
            return {
                "id": self.id,
                "state": self.state,
                "spec": self.spec.describe(),
                "recovered": self.recovered,
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "error": self.error,
                "result": self.result,
                "progress": dict(self.progress),
                "cancel_requested": self.cancel_requested,
            }

"""A small, dependency-free asyncio HTTP/1.1 server.

The container ships no aiohttp/uvicorn, and the service API is a
handful of JSON endpoints — so this module implements exactly the
subset the daemon needs on top of ``asyncio.start_server``: request
line + headers + Content-Length body parsing, JSON responses,
per-request error isolation, and hard limits on request size (another
admission-control surface: a misbehaving client can't balloon the
daemon's memory with a gigabyte body).

Connections are one-request (``Connection: close``): the clients are a
CLI and a chaos harness, not a browser keeping a pipeline warm, and
one-shot connections make the shutdown path trivially clean.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional
from urllib.parse import parse_qs, urlsplit

__all__ = ["Request", "Response", "HttpServer", "STATUS_REASONS"]

#: Upper bound on header block + body the server will read.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

STATUS_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        """The request body as JSON (None when empty); raises
        ``ValueError`` on malformed bodies (mapped to HTTP 400)."""
        if not self.body:
            return None
        return json.loads(self.body.decode("utf-8"))


@dataclass
class Response:
    """A JSON response: status code + document."""

    status: int = 200
    document: Optional[Dict] = None

    def encode(self) -> bytes:
        body = json.dumps(
            self.document if self.document is not None else {},
            sort_keys=True,
        ).encode("utf-8")
        reason = STATUS_REASONS.get(self.status, "Unknown")
        head = (
            f"HTTP/1.1 {self.status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        ).encode("ascii")
        return head + body


#: A handler takes the parsed request and returns a Response; it may be
#: sync or async.
Handler = Callable[[Request], "Response"]


async def _read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request from the stream; None on EOF/garbage."""
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except (
        asyncio.IncompleteReadError,
        asyncio.LimitOverrunError,
        ConnectionError,
    ):
        return None
    if len(header_block) > MAX_HEADER_BYTES:
        return None
    try:
        text = header_block.decode("latin-1")
        lines = text.split("\r\n")
        method, target, _version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError):
        return None
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    parts = urlsplit(target)
    query = {
        key: values[-1]
        for key, values in parse_qs(parts.query).items()
    }
    body = b""
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        return None
    if length < 0 or length > MAX_BODY_BYTES:
        return None
    if length:
        try:
            body = await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
    return Request(
        method=method.upper(),
        path=parts.path,
        query=query,
        headers=headers,
        body=body,
    )


class HttpServer:
    """Serve ``handler`` over HTTP until :meth:`stop`."""

    def __init__(
        self,
        handler: Handler,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.handler = handler
        self.host = host
        self.port = port  #: requested; see bound_port after start()
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def bound_port(self) -> int:
        """The actually-bound port (resolves ``port=0``)."""
        if self._server is None or not self._server.sockets:
            return self.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection,
            host=self.host,
            port=self.port,
            limit=MAX_HEADER_BYTES,
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request = await _read_request(reader)
            if request is None:
                response = Response(400, {"error": "malformed request"})
            else:
                try:
                    result = self.handler(request)
                    if asyncio.iscoroutine(result):
                        result = await result
                    response = result
                except ValueError as error:
                    response = Response(
                        400, {"error": f"bad request: {error}"}
                    )
                except Exception as error:  # isolate request crashes
                    response = Response(
                        500,
                        {
                            "error": (
                                f"{type(error).__name__}: {error}"
                            )
                        },
                    )
            writer.write(response.encode())
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

"""Bounded job queue with admission control and per-tenant quotas.

The daemon protects itself at the front door: a queue that buffered
without limit would turn overload into unbounded memory growth and
unbounded latency, so admission is **reject-fast** —
:class:`~repro.errors.QueueFullError` when the queue is at capacity and
:class:`~repro.errors.QuotaExceededError` when one tenant already holds
its share of queued + running jobs (both map to HTTP 429 at the
service boundary).  Rejected work costs the daemon one counter
increment; accepted work is guaranteed a terminal state.

Thread-safe: the asyncio request handlers and the supervisor's worker
threads all go through one lock.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Optional

from repro.errors import (
    ConfigurationError,
    QueueFullError,
    QuotaExceededError,
)
from repro.service.jobs import Job

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """FIFO job queue with a depth bound and per-tenant active quotas.

    A tenant's *active* count covers both queued and running jobs; it
    is released only when the job reaches a terminal state
    (:meth:`release`), so a tenant cannot sidestep its quota by
    keeping jobs long-running.
    """

    def __init__(self, max_depth: int = 64, tenant_quota: int = 8):
        if max_depth < 1:
            raise ConfigurationError(
                f"queue max_depth must be >= 1, got {max_depth}"
            )
        if tenant_quota < 1:
            raise ConfigurationError(
                f"tenant_quota must be >= 1, got {tenant_quota}"
            )
        self.max_depth = max_depth
        self.tenant_quota = tenant_quota
        self._lock = threading.Lock()
        self._queue: deque = deque()
        self._active_by_tenant: Dict[str, int] = {}
        self.rejected_full = 0
        self.rejected_quota = 0
        self.admitted = 0

    # -------------------------------------------------------- admission

    def submit(self, job: Job, *, count_quota: bool = True) -> None:
        """Admit ``job`` or raise an :class:`AdmissionError` subclass.

        ``count_quota=False`` bypasses the quota check (not the depth
        bound) for journal-recovered jobs: work the daemon already
        accepted before a crash must not be re-rejected on restart.
        """
        with self._lock:
            if len(self._queue) >= self.max_depth:
                self.rejected_full += 1
                raise QueueFullError(
                    f"job queue is full ({self.max_depth} queued); "
                    "retry with backoff"
                )
            tenant = job.spec.tenant
            active = self._active_by_tenant.get(tenant, 0)
            if count_quota and active >= self.tenant_quota:
                self.rejected_quota += 1
                raise QuotaExceededError(
                    f"tenant {tenant!r} already has {active} active "
                    f"job(s) (quota {self.tenant_quota}); retry after "
                    "one finishes"
                )
            self._queue.append(job)
            self._active_by_tenant[tenant] = active + 1
            self.admitted += 1

    def release(self, job: Job) -> None:
        """Return ``job``'s quota slot (call once, on terminal state)."""
        with self._lock:
            tenant = job.spec.tenant
            active = self._active_by_tenant.get(tenant, 0)
            if active <= 1:
                self._active_by_tenant.pop(tenant, None)
            else:
                self._active_by_tenant[tenant] = active - 1

    # ------------------------------------------------------- scheduling

    def claim_next(self) -> Optional[Job]:
        """Pop the oldest queued job.

        Cancel-requested jobs are returned too — the runner turns them
        into terminal ``cancelled`` states; dropping them here would
        lose them.  Only jobs that somehow already reached a terminal
        state are skipped.
        """
        with self._lock:
            while self._queue:
                job = self._queue.popleft()
                if not job.terminal:
                    return job
            return None

    def remove(self, job: Job) -> bool:
        """Drop a specific queued job (cancellation); True if found."""
        with self._lock:
            try:
                self._queue.remove(job)
            except ValueError:
                return False
            return True

    # ------------------------------------------------------ observation

    @property
    def depth(self) -> int:
        return len(self._queue)

    @property
    def rejected(self) -> int:
        return self.rejected_full + self.rejected_quota

    def describe(self) -> Dict:
        with self._lock:
            return {
                "depth": len(self._queue),
                "max_depth": self.max_depth,
                "tenant_quota": self.tenant_quota,
                "active_by_tenant": dict(self._active_by_tenant),
                "admitted": self.admitted,
                "rejected_full": self.rejected_full,
                "rejected_quota": self.rejected_quota,
            }

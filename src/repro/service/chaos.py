"""Service chaos tier: ``python -m repro service-chaos``.

``faults-smoke`` proves the *engine* contains faults inside one batch;
this harness proves the *service* survives faults around the process
itself.  It runs a real daemon in a subprocess and, while a grid batch
is in flight:

1. kills a pool worker mid-batch (``fault-killer-once`` injected into
   the grid's system list);
2. runs a watchdog-tripping cycle burner job (``fault-burner``);
3. SIGKILLs the daemon itself — no drain, no journal close;
4. corrupts result-cache entries (torn + garbage JSON) while the
   daemon is down;
5. restarts the daemon on the same state directory.

Then it asserts the service's core invariants:

* every submitted job reaches a terminal state (done/failed/cancelled)
  — nothing is silently lost across the SIGKILL;
* the resumed grid job reuses the points completed before the kill
  (cache-hit counters strictly positive), i.e. no lost *or*
  double-computed grid points;
* the corrupted cache entries are quarantined, not served and not
  fatal;
* the burner job fails terminally via watchdog containment, and the
  killed worker's job still completes (pool recovery + retry).

Exit code 0 means every invariant held.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from repro.engine import ResultCache
from repro.errors import ServiceError
from repro.faults.injectors import CacheCorruptor
from repro.service.client import ServiceClient
from repro.service.jobs import TERMINAL_STATES, JobState

__all__ = ["run_service_chaos"]

#: Strides of the chaos grid job — enough points that the daemon is
#: reliably mid-batch when the SIGKILL lands.
_GRID_STRIDES = (1, 2, 4, 8, 16, 19)


def _spawn_daemon(
    state_dir: Path,
    port_file: Path,
    faults_dir: Path,
    *,
    engine_jobs: int,
    point_timeout: float,
) -> subprocess.Popen:
    if port_file.exists():
        port_file.unlink()
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--host",
        "127.0.0.1",
        "--port",
        "0",
        "--port-file",
        str(port_file),
        "--state-dir",
        str(state_dir),
        "--jobs",
        str(engine_jobs),
        "--timeout",
        str(point_timeout),
        "--retries",
        "2",
        "--drain-seconds",
        "10",
        "--install-faults",
        str(faults_dir),
    ]
    environment = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = (
        f"{src_root}{os.pathsep}{existing}" if existing else src_root
    )
    return subprocess.Popen(
        command,
        env=environment,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _client_for(port_file: Path, timeout: float = 30.0) -> ServiceClient:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            port = int(port_file.read_text(encoding="utf-8").strip())
        except (FileNotFoundError, ValueError):
            time.sleep(0.05)
            continue
        client = ServiceClient(f"http://127.0.0.1:{port}")
        try:
            client.wait_ready(timeout=max(1.0, deadline - time.monotonic()))
            return client
        except ServiceError:
            time.sleep(0.05)
    raise ServiceError(f"daemon never became ready ({port_file})")


def run_service_chaos(
    *,
    elements: int = 64,
    engine_jobs: int = 2,
    point_timeout: float = 5.0,
    emit: Optional[Callable[[str], None]] = None,
) -> int:
    """Run the chaos scenario; return a process exit code."""
    emit = emit if emit is not None else lambda line: print(
        line, file=sys.stderr, flush=True
    )
    checks: List[Tuple[str, bool]] = []

    def check(label: str, passed: bool) -> None:
        checks.append((label, passed))
        emit(f"[service-chaos] {'ok  ' if passed else 'FAIL'} {label}")

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        root = Path(tmp)
        state_dir = root / "state"
        faults_dir = root / "faults"
        faults_dir.mkdir()
        port_file = root / "port"

        daemon = _spawn_daemon(
            state_dir,
            port_file,
            faults_dir,
            engine_jobs=engine_jobs,
            point_timeout=point_timeout,
        )
        submitted: List[str] = []
        try:
            client = _client_for(port_file)
            emit(
                "[service-chaos] daemon up; submitting grid + faulty "
                "jobs ..."
            )
            # The long grid the SIGKILL will interrupt.  It includes a
            # kill-once system, so a pool worker dies mid-batch too.
            grid = client.submit(
                "grid",
                {
                    "systems": ["pva-sdram", "fault-killer-once"],
                    "kernels": ["copy", "scale"],
                    "strides": list(_GRID_STRIDES),
                    "elements": elements,
                },
            )
            submitted.append(grid["id"])
            # A watchdog-contained hang.
            burner = client.submit(
                "simulate",
                {
                    "system": "fault-burner",
                    "kernel": "copy",
                    "stride": 1,
                    "elements": elements,
                },
            )
            submitted.append(burner["id"])

            # Wait until the grid is genuinely mid-batch (some points
            # done, not all), then SIGKILL the daemon — no drain, no
            # journal close, exactly like an OOM kill.
            deadline = time.monotonic() + 120.0
            progressed = False
            while time.monotonic() < deadline:
                job = client.status(grid["id"])
                done = job["progress"]["points_done"]
                if job["state"] in TERMINAL_STATES:
                    break  # too fast — still a valid (weaker) run
                if job["state"] == JobState.RUNNING and done >= 2:
                    progressed = True
                    break
                time.sleep(0.05)
            check("grid job progressed before the kill", progressed)

            daemon.send_signal(signal.SIGKILL)
            daemon.wait(timeout=30)
            emit("[service-chaos] daemon SIGKILLed mid-batch")

            # Vandalize the shared cache while the daemon is down.
            cache = ResultCache(state_dir / "cache")
            cached_before = len(cache)
            corruptor = CacheCorruptor(cache)
            victims = []
            for entry in list(cache._entries())[:2]:
                victims.append(entry.stem)
            for key in victims:
                corruptor.torn_entry(key)
            corruptor.garbage_entry("ab" + "0" * 62)
            corruptor.strays()
            check(
                "cache held completed points at kill time",
                cached_before >= 1,
            )

            # Restart on the same state directory: the journal replays.
            daemon = _spawn_daemon(
                state_dir,
                port_file,
                faults_dir,
                engine_jobs=engine_jobs,
                point_timeout=point_timeout,
            )
            client = _client_for(port_file)
            emit("[service-chaos] daemon restarted; waiting for terminal states ...")

            known = {job["id"] for job in client.jobs()}
            check(
                "no job lost across SIGKILL/restart",
                all(job_id in known for job_id in submitted),
            )

            finals = {}
            for job_id in submitted:
                finals[job_id] = client.wait(job_id, timeout=180.0)
            check(
                "every submitted job reached a terminal state",
                all(
                    job["state"] in TERMINAL_STATES
                    for job in finals.values()
                ),
            )

            grid_final = finals[grid["id"]]
            check(
                "resumed grid was replayed from the journal",
                bool(grid_final["recovered"]),
            )
            check(
                "resumed grid reused cached points (no recompute)",
                grid_final["progress"]["cache_hits"] >= 1,
            )
            # Exactly one result slot per submitted point — the result
            # list is index-keyed, so a lost point shows as a null hole
            # and a double-report cannot fit the length.
            expected_points = 2 * 2 * len(_GRID_STRIDES)
            cycles = (grid_final.get("result") or {}).get("cycles", [])
            healthy_cycles = [
                value
                for value in cycles
                if isinstance(value, int) and value > 0
            ]
            check(
                "no grid point lost or double-reported",
                len(cycles) == expected_points
                and len(healthy_cycles) >= expected_points // 2,
            )
            burner_final = finals[burner["id"]]
            check(
                "cycle burner contained terminally (watchdog)",
                burner_final["state"] == JobState.FAILED
                and "SimulationTimeout"
                in str(burner_final.get("result") or burner_final.get("error")),
            )
            metrics = client.metrics()
            check(
                "corrupt cache entries quarantined, not served",
                metrics["engine"]["cache_quarantined"] >= 1
                or (state_dir / "cache" / "quarantine").exists(),
            )
            check(
                "journal replay counted on the metrics surface",
                metrics["engine"]["journal_replayed"] >= 1,
            )
        finally:
            if daemon.poll() is None:
                daemon.send_signal(signal.SIGTERM)
                try:
                    daemon.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    daemon.kill()
                    daemon.wait(timeout=10)

    failed = [label for label, passed in checks if not passed]
    emit(
        f"[service-chaos] {len(checks) - len(failed)}/{len(checks)} "
        "chaos invariants held"
    )
    return 1 if failed else 0

"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``info``
    Print the prototype configuration.
``run``
    Run one kernel/stride/alignment point on one or more memory systems.
``grid``
    Run any (sub-)grid of the section-6.2 evaluation through the
    parallel experiment engine (``--jobs N``) with optional result
    caching (``--cache DIR``).
``figure``
    Regenerate one of the paper's figures (7, 8, 9, 10, 11).
``ablation``
    Run one of the ablation sweeps (row-policy, vector-contexts, bypass,
    banks).
``complexity``
    Print the Table 1 complexity comparison.
``bench``
    Time the reference tick loop against the event-driven
    cycle-skipping loop on the stride-19 grid slice and write
    ``BENCH_sim.json`` (``--quick`` for the CI smoke workload).
``faults-smoke``
    Prove failure containment end to end: run a pool batch with a
    raising point, a watchdog-tripping cycle burner, and a killed
    worker injected, and verify every healthy point still returns its
    exact cycle count.
``serve``
    Run the simulation service daemon: accept simulate/grid/bench jobs
    over HTTP, journal them to a write-ahead log, and survive
    restarts (``--state-dir`` holds the journal and result cache).
``submit`` / ``status`` / ``cancel``
    Client commands against a running daemon (``--url``).
``service-chaos``
    The service's chaos tier: SIGKILL the daemon mid-batch, corrupt
    its cache, restart it, and verify every job still reaches a
    terminal state with cached points reused.

Engine subcommands (``grid``, ``figure``, ``ablation``, ``all``) accept
``--jobs``/``--cache`` plus the resilience options ``--on-error
raise|collect``, ``--retries N``, and ``--timeout SECONDS``; with
``--on-error collect`` a failing point no longer aborts the batch —
its cells render as ``FAILED`` and the rest of the grid survives.

Examples::

    python -m repro run --kernel copy --stride 19
    python -m repro grid --jobs 4 --cache .engine-cache
    python -m repro grid --jobs 4 --on-error collect --retries 1 --timeout 120
    python -m repro figure 9 --elements 256 --jobs 4
    python -m repro ablation row-policy
    python -m repro faults-smoke
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api import available_systems
from repro.engine import EngineHooks, ExperimentEngine
from repro.errors import ConfigurationError
from repro.experiments.ablations import (
    ablate_bank_scaling,
    ablate_bypass_paths,
    ablate_row_policy,
    ablate_vector_contexts,
)
from repro.experiments.complexity import complexity_table
from repro.experiments.figures import FIGURE_GRIDS, run_figure
from repro.experiments.grid import (
    EVAL_KERNELS,
    EVAL_STRIDES,
    run_grid,
    run_point,
)
from repro.experiments.report import format_table
from repro.kernels import ALIGNMENTS, alignment_by_name
from repro.params import SystemParams

__all__ = ["main", "build_parser"]

_ABLATIONS = {
    "row-policy": ablate_row_policy,
    "vector-contexts": ablate_vector_contexts,
    "bypass": ablate_bypass_paths,
    "banks": ablate_bank_scaling,
}


class _MetricsLine(EngineHooks):
    """Prints the engine's throughput/caching summary after each batch
    (to stderr, keeping result tables clean on stdout), plus one line
    per terminally failed point in collect mode."""

    def point_failed(self, failure, metrics):
        print(f"[engine] FAILED {failure.describe()}", file=sys.stderr)

    def batch_complete(self, metrics):
        resilience = ""
        if metrics.failures or metrics.retries or metrics.timeouts:
            resilience = (
                f", {metrics.failures} failed / {metrics.retries} "
                f"retried / {metrics.timeouts} timed out"
            )
        throughput = ""
        if metrics.sim_seconds > 0:
            throughput = (
                f", {metrics.sim_cycles_per_second / 1000.0:.1f}k "
                f"sim-cycles/s"
            )
        print(
            f"[engine] {metrics.points_done} points "
            f"({metrics.simulated} simulated, "
            f"cache hit rate {metrics.cache_hit_rate:.0%}) "
            f"in {metrics.elapsed_seconds:.2f}s — "
            f"{metrics.points_per_second:.1f} points/s, "
            f"{metrics.jobs} job{'s' if metrics.jobs != 1 else ''}"
            f"{throughput}{resilience}",
            file=sys.stderr,
        )
        service_counters = [
            ("rejected", metrics.queue_rejected),
            ("replayed", metrics.journal_replayed),
            ("breaker trips", metrics.breaker_trips),
            ("quarantined", metrics.cache_quarantined),
            ("aborted", metrics.aborted),
        ]
        live = [
            f"{value} {label}"
            for label, value in service_counters
            if value
        ]
        if live:
            print(
                "[engine] service: " + ", ".join(live), file=sys.stderr
            )
        if metrics.component_cycles:
            # Collapse the per-bank components into one aggregate line
            # item; the full per-bank ledger stays in summary() and the
            # bench report.
            collapsed: dict = {}
            for name, buckets in metrics.component_cycles.items():
                label = "banks" if name.startswith("bank-") else name
                entry = collapsed.setdefault(
                    label, {"busy": 0, "stalled": 0, "idle": 0}
                )
                for bucket in entry:
                    entry[bucket] += buckets[bucket]
            parts = []
            for name, buckets in sorted(collapsed.items()):
                total = (
                    buckets["busy"] + buckets["stalled"] + buckets["idle"]
                )
                busy = buckets["busy"] / total if total else 0.0
                parts.append(f"{name} {busy:.0%} busy")
            print(
                "[engine] attribution: " + ", ".join(parts),
                file=sys.stderr,
            )


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the experiment engine (default: 1)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="directory for the content-addressed result cache",
    )
    parser.add_argument(
        "--on-error",
        choices=("raise", "collect"),
        default="raise",
        help=(
            "collect: record per-point failures and keep the batch "
            "running (failed cells render as FAILED); raise (default): "
            "abort on the first failure"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="re-attempts per failed point, with exponential backoff",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-point wall-clock budget in worker pools; recovers "
            "hung simulations and killed workers (default: wait forever)"
        ),
    )


def _engine_from(args: argparse.Namespace) -> ExperimentEngine:
    return ExperimentEngine(
        jobs=args.jobs,
        cache_dir=args.cache,
        hooks=_MetricsLine(),
        on_error=args.on_error,
        retry=args.retries,
        timeout=args.timeout,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Parallel Vector Access (PVA) reproduction — run the paper's "
            "experiments from the command line."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print the prototype configuration")

    run_parser = sub.add_parser("run", help="run one experiment point")
    run_parser.add_argument(
        "--kernel", default="copy", choices=sorted(EVAL_KERNELS)
    )
    run_parser.add_argument("--stride", type=int, default=1)
    run_parser.add_argument(
        "--alignment",
        default=ALIGNMENTS[0].name,
        choices=[a.name for a in ALIGNMENTS],
    )
    run_parser.add_argument("--elements", type=int, default=1024)
    run_parser.add_argument(
        "--system",
        action="append",
        choices=sorted(available_systems()),
        help="memory system(s) to run (default: all four)",
    )

    grid_parser = sub.add_parser(
        "grid",
        help="run a (sub-)grid of the evaluation through the engine",
    )
    grid_parser.add_argument(
        "--kernel",
        action="append",
        choices=sorted(EVAL_KERNELS),
        help="kernel(s) to run (default: all eight)",
    )
    grid_parser.add_argument(
        "--stride",
        action="append",
        type=int,
        help="stride(s) to run (default: 1 2 4 8 16 19)",
    )
    grid_parser.add_argument(
        "--alignment",
        action="append",
        choices=[a.name for a in ALIGNMENTS],
        help="alignment(s) to run (default: all five)",
    )
    grid_parser.add_argument(
        "--system",
        action="append",
        choices=sorted(available_systems()),
        help="memory system(s) to run (default: all four)",
    )
    grid_parser.add_argument("--elements", type=int, default=1024)
    _add_engine_options(grid_parser)

    figure_parser = sub.add_parser(
        "figure", help="regenerate one of the paper's figures"
    )
    figure_parser.add_argument("number", choices=sorted(FIGURE_GRIDS))
    figure_parser.add_argument("--elements", type=int, default=1024)
    _add_engine_options(figure_parser)

    ablation_parser = sub.add_parser("ablation", help="run an ablation sweep")
    ablation_parser.add_argument("name", choices=sorted(_ABLATIONS))
    _add_engine_options(ablation_parser)

    sub.add_parser(
        "complexity", help="print the Table 1 complexity comparison"
    )

    smoke_parser = sub.add_parser(
        "faults-smoke",
        help=(
            "inject faults (raise, hang, killed worker) into a pool "
            "batch and verify the engine contains all of them"
        ),
    )
    smoke_parser.add_argument("--jobs", type=int, default=2)
    smoke_parser.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="per-point budget; bounds how long the killed worker stalls",
    )
    smoke_parser.add_argument("--elements", type=int, default=64)

    bench_parser = sub.add_parser(
        "bench",
        help=(
            "time the reference tick loop against the event-driven "
            "cycle-skipping loop on the stride-19 grid slice"
        ),
    )
    bench_parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke workload: two kernels, one alignment",
    )
    bench_parser.add_argument("--elements", type=int, default=1024)
    bench_parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="measurements per (system, mode); the best is kept",
    )
    bench_parser.add_argument(
        "--out",
        default="BENCH_sim.json",
        metavar="FILE",
        help="JSON report path ('' to skip writing)",
    )
    bench_parser.add_argument(
        "--system",
        action="append",
        choices=sorted(available_systems()),
        help="memory system(s) to benchmark (default: all four)",
    )
    bench_parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero unless skip is at least X times faster",
    )
    bench_parser.add_argument(
        "--min-precompute-speedup",
        type=float,
        default=None,
        metavar="X",
        help=(
            "exit non-zero unless the hit-schedule precompute path's "
            "dense-slice tick rate is at least X times the incremental "
            "expansion rate measured in the same run"
        ),
    )
    bench_parser.add_argument(
        "--min-soa-speedup",
        type=float,
        default=None,
        metavar="X",
        help=(
            "exit non-zero unless the structure-of-arrays bank "
            "automaton's dense-slice rate is at least X times the "
            "precompute rate measured in the same run"
        ),
    )
    bench_parser.add_argument(
        "--min-window-speedup",
        type=float,
        default=None,
        metavar="X",
        help=(
            "exit non-zero unless the closed-form window backend's "
            "dense-slice rate is at least X times the SoA rate "
            "measured in the same run"
        ),
    )
    bench_parser.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        metavar="FILE",
        help=(
            "append a one-line summary record per published run "
            "('' to skip; only written when --out is non-empty)"
        ),
    )
    bench_parser.add_argument(
        "--profile",
        default="",
        metavar="DIR",
        help=(
            "write per-section cProfile summaries (top 25 by "
            "cumulative time) into DIR"
        ),
    )

    explore_parser = sub.add_parser(
        "explore",
        help=(
            "design-space exploration: sweep GenParams axes, prune with "
            "analytic lower bounds, emit the cycles-vs-complexity "
            "Pareto frontier"
        ),
    )
    explore_parser.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="JSON sweep spec (axes + workload); overrides axis flags",
    )
    explore_parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke sweep: 12 banks x contexts x channels points",
    )
    explore_parser.add_argument(
        "--banks", default=None, metavar="LIST",
        help="comma-separated num_banks values, e.g. 4,8,16",
    )
    explore_parser.add_argument(
        "--channels", default=None, metavar="LIST",
        help="comma-separated num_channels values",
    )
    explore_parser.add_argument(
        "--ranks", default=None, metavar="LIST",
        help="comma-separated ranks_per_channel values",
    )
    explore_parser.add_argument(
        "--contexts", default=None, metavar="LIST",
        help="comma-separated num_vector_contexts values",
    )
    explore_parser.add_argument(
        "--fifo", default=None, metavar="LIST",
        help="comma-separated request_fifo_depth values",
    )
    explore_parser.add_argument(
        "--line-words", default=None, metavar="LIST",
        help="comma-separated cache_line_words values",
    )
    explore_parser.add_argument(
        "--row-policy", default=None, metavar="LIST",
        help="comma-separated row policies, e.g. paper,close",
    )
    explore_parser.add_argument(
        "--kernel", default=None, choices=sorted(EVAL_KERNELS)
    )
    explore_parser.add_argument("--stride", type=int, default=None)
    explore_parser.add_argument(
        "--alignment",
        default=None,
        choices=[a.name for a in ALIGNMENTS],
    )
    explore_parser.add_argument("--elements", type=int, default=None)
    explore_parser.add_argument(
        "--system", default=None, choices=["pva-sdram", "pva-sram"]
    )
    explore_parser.add_argument(
        "--prune-slack",
        type=float,
        default=None,
        metavar="X",
        help=(
            "also prune candidates whose bound is within X of the best "
            "simulated cycles (0 = exact, frontier-preserving pruning)"
        ),
    )
    explore_parser.add_argument(
        "--min-prune-fraction",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero unless pruning skipped at least fraction X",
    )
    explore_parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the JSON exploration report here",
    )
    _add_engine_options(explore_parser)

    sweep_parser = sub.add_parser(
        "sweep", help="dense stride sweep on one kernel"
    )
    sweep_parser.add_argument(
        "--kernel", default="scale", choices=sorted(EVAL_KERNELS)
    )
    sweep_parser.add_argument("--max-stride", type=int, default=32)
    sweep_parser.add_argument("--elements", type=int, default=512)

    all_parser = sub.add_parser(
        "all", help="regenerate every experiment artifact into a directory"
    )
    all_parser.add_argument("--out", default="results")
    all_parser.add_argument("--elements", type=int, default=1024)
    _add_engine_options(all_parser)

    serve_parser = sub.add_parser(
        "serve",
        help=(
            "run the simulation service daemon (HTTP job API with a "
            "write-ahead journal and crash recovery)"
        ),
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8642,
        help="listen port (0 picks a free one; see --port-file)",
    )
    serve_parser.add_argument(
        "--port-file",
        default=None,
        metavar="FILE",
        help="write the actually-bound port here once listening",
    )
    serve_parser.add_argument(
        "--state-dir",
        default=".repro-service",
        metavar="DIR",
        help="journal + result cache location (survives restarts)",
    )
    serve_parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="worker processes per job's engine pool (default: 2)",
    )
    serve_parser.add_argument(
        "--concurrency",
        type=int,
        default=1,
        help="jobs run simultaneously (default: 1)",
    )
    serve_parser.add_argument("--queue-depth", type=int, default=64)
    serve_parser.add_argument("--tenant-quota", type=int, default=8)
    serve_parser.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="per-point wall-clock budget (default: 60)",
    )
    serve_parser.add_argument("--retries", type=int, default=1)
    serve_parser.add_argument(
        "--drain-seconds",
        type=float,
        default=30.0,
        help="graceful-shutdown budget for in-flight jobs",
    )
    serve_parser.add_argument("--breaker-threshold", type=int, default=3)
    serve_parser.add_argument(
        "--breaker-cooldown", type=float, default=30.0
    )
    serve_parser.add_argument(
        "--install-faults",
        default=None,
        metavar="DIR",
        help=(
            "register the fault-* injector systems (chaos testing); "
            "DIR holds their cross-process markers"
        ),
    )

    submit_parser = sub.add_parser(
        "submit", help="submit a job to a running daemon"
    )
    submit_parser.add_argument(
        "kind", choices=("simulate", "grid", "bench")
    )
    submit_parser.add_argument(
        "--url", default="http://127.0.0.1:8642", help="daemon address"
    )
    submit_parser.add_argument("--tenant", default="default")
    submit_parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock deadline once running",
    )
    submit_parser.add_argument(
        "--wait",
        action="store_true",
        help="block until the job reaches a terminal state",
    )
    submit_parser.add_argument(
        "--wait-timeout", type=float, default=600.0, metavar="SECONDS"
    )
    submit_parser.add_argument(
        "--kernel",
        action="append",
        help="kernel(s); simulate uses the first (default: copy)",
    )
    submit_parser.add_argument(
        "--stride",
        action="append",
        type=int,
        help="stride(s); simulate uses the first (default: 1)",
    )
    submit_parser.add_argument(
        "--alignment",
        action="append",
        help="alignment(s); simulate uses the first (default: aligned)",
    )
    submit_parser.add_argument(
        "--system",
        action="append",
        help="memory system(s); simulate uses the first",
    )
    submit_parser.add_argument("--elements", type=int, default=1024)
    submit_parser.add_argument(
        "--quick", action="store_true", help="bench: CI smoke workload"
    )
    submit_parser.add_argument(
        "--repeats", type=int, default=1, help="bench: runs per system"
    )

    status_parser = sub.add_parser(
        "status",
        help="show one job (or all jobs + service metrics) on a daemon",
    )
    status_parser.add_argument("job_id", nargs="?", default=None)
    status_parser.add_argument("--url", default="http://127.0.0.1:8642")

    cancel_parser = sub.add_parser(
        "cancel", help="cancel a queued or running job on a daemon"
    )
    cancel_parser.add_argument("job_id")
    cancel_parser.add_argument("--url", default="http://127.0.0.1:8642")

    chaos_parser = sub.add_parser(
        "service-chaos",
        help=(
            "kill and restart a real daemon mid-batch (plus worker "
            "kills, a hang, and cache corruption) and verify no job "
            "is lost"
        ),
    )
    chaos_parser.add_argument("--elements", type=int, default=64)
    chaos_parser.add_argument("--jobs", type=int, default=2)
    chaos_parser.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="per-point budget inside the daemon",
    )
    return parser


def _cmd_info() -> int:
    params = SystemParams()
    rows = list(params.describe().items())
    print(format_table(("parameter", "value"), rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    alignment = alignment_by_name(args.alignment)
    systems = tuple(args.system) if args.system else available_systems()
    try:
        cycles = run_point(
            args.kernel,
            stride=args.stride,
            alignment=alignment,
            elements=args.elements,
            systems=systems,
        )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    baseline = min(cycles.values())
    rows = [
        (name, count, f"{count / baseline:.2f}x")
        for name, count in sorted(cycles.items(), key=lambda kv: kv[1])
    ]
    print(
        f"{args.kernel} stride={args.stride} alignment={args.alignment} "
        f"elements={args.elements}"
    )
    print(format_table(("system", "cycles", "vs best"), rows))
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    kernels = tuple(args.kernel) if args.kernel else EVAL_KERNELS
    strides = tuple(args.stride) if args.stride else EVAL_STRIDES
    alignments = (
        tuple(alignment_by_name(name) for name in args.alignment)
        if args.alignment
        else None
    )
    systems = tuple(args.system) if args.system else available_systems()
    try:
        grid = run_grid(
            kernels=kernels,
            strides=strides,
            alignments=alignments,
            elements=args.elements,
            systems=systems,
            engine=_engine_from(args),
        )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    headers = ("kernel", "stride", "alignment") + tuple(grid.systems)
    rows = [
        (kernel, stride, alignment)
        + tuple(
            "FAILED" if point[name] is None else point[name]
            for name in grid.systems
        )
        for (kernel, stride, alignment), point in grid.cycles.items()
    ]
    print(format_table(headers, rows))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    fig = run_figure(args.number, args.elements, _engine_from(args))
    print(fig.text)
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    _, text = _ABLATIONS[args.name](engine=_engine_from(args))
    print(text)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.api import simulate
    from repro.core.decode import decompose_stride
    from repro.kernels import build_trace, kernel_by_name

    params = SystemParams()
    rows = []
    try:
        for stride in range(1, args.max_stride + 1):
            trace = build_trace(
                kernel_by_name(args.kernel),
                stride=stride,
                params=params,
                elements=args.elements,
            )
            pva = simulate(trace, params, system="pva-sdram").cycles
            serial = simulate(trace, params, system="cacheline-serial").cycles
            rows.append(
                (
                    stride,
                    decompose_stride(stride, params.num_banks).banks_hit,
                    pva,
                    serial,
                    f"{serial / pva:.1f}x",
                )
            )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        format_table(
            ("stride", "banks hit", "pva", "cacheline-serial", "speedup"),
            rows,
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.daemon import ServiceConfig, serve

    return serve(
        ServiceConfig(
            host=args.host,
            port=args.port,
            port_file=args.port_file,
            state_dir=args.state_dir,
            engine_jobs=args.jobs,
            concurrency=args.concurrency,
            queue_depth=args.queue_depth,
            tenant_quota=args.tenant_quota,
            point_timeout=args.timeout,
            retries=args.retries,
            drain_seconds=args.drain_seconds,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
            install_faults=args.install_faults,
        )
    )


def _submit_payload(args: argparse.Namespace) -> dict:
    kernels = args.kernel or ["copy"]
    strides = args.stride or [1]
    alignments = args.alignment or ["aligned"]
    if args.kind == "simulate":
        return {
            "system": (args.system or ["pva-sdram"])[0],
            "kernel": kernels[0],
            "stride": strides[0],
            "alignment": alignments[0],
            "elements": args.elements,
        }
    if args.kind == "grid":
        return {
            "systems": args.system or ["pva-sdram"],
            "kernels": kernels,
            "strides": strides,
            "alignments": alignments,
            "elements": args.elements,
        }
    return {  # bench
        "quick": args.quick,
        "repeats": args.repeats,
        "elements": args.elements,
        "systems": args.system,
    }


def _print_job(job: dict) -> None:
    import json

    print(json.dumps(job, indent=2, sort_keys=True))


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.errors import ServiceError
    from repro.service.client import ServiceClient
    from repro.service.jobs import JobState

    client = ServiceClient(args.url)
    try:
        job = client.submit(
            args.kind,
            _submit_payload(args),
            tenant=args.tenant,
            deadline_seconds=args.deadline,
        )
        print(
            f"[submit] job {job['id']} ({args.kind}) {job['state']}",
            file=sys.stderr,
        )
        if args.wait:
            job = client.wait(job["id"], timeout=args.wait_timeout)
        _print_job(job)
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.wait and job["state"] != JobState.DONE:
        return 1
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.errors import ServiceError
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    try:
        if args.job_id:
            _print_job(client.status(args.job_id))
            return 0
        jobs = client.jobs()
        metrics = client.metrics()
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rows = [
        (
            job["id"],
            job["spec"]["kind"],
            job["state"],
            f"{job['progress']['points_done']}"
            f"/{job['progress']['points_total']}",
            "yes" if job["recovered"] else "",
        )
        for job in sorted(jobs, key=lambda j: j["submitted_at"])
    ]
    print(
        format_table(("job", "kind", "state", "points", "recovered"), rows)
    )
    engine = metrics["engine"]
    queue = metrics["queue"]
    breaker = metrics["breaker"]
    print(
        f"[service] queue {queue['depth']}/{queue['max_depth']} "
        f"({engine['queue_rejected']} rejected), "
        f"breaker {breaker['state']} "
        f"({engine['breaker_trips']} trips), "
        f"{engine['journal_replayed']} replayed, "
        f"{engine['cache_quarantined']} quarantined, "
        f"{engine['aborted']} aborted",
        file=sys.stderr,
    )
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    from repro.errors import ServiceError
    from repro.service.client import ServiceClient

    try:
        _print_job(ServiceClient(args.url).cancel(args.job_id))
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "grid":
        return _cmd_grid(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "ablation":
        return _cmd_ablation(args)
    if args.command == "complexity":
        print(complexity_table(SystemParams()))
        return 0
    if args.command == "faults-smoke":
        from repro.faults.smoke import run_faults_smoke

        return run_faults_smoke(
            jobs=args.jobs, timeout=args.timeout, elements=args.elements
        )
    if args.command == "bench":
        from repro.bench import main as bench_main

        return bench_main(args)
    if args.command == "explore":
        from repro.explore import main as explore_main

        return explore_main(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "cancel":
        return _cmd_cancel(args)
    if args.command == "service-chaos":
        from repro.service.chaos import run_service_chaos

        return run_service_chaos(
            elements=args.elements,
            engine_jobs=args.jobs,
            point_timeout=args.timeout,
        )
    if args.command == "all":
        from repro.experiments.report_all import generate_all

        engine = _engine_from(args)
        written = generate_all(
            out_dir=args.out,
            elements=args.elements,
            progress=print,
            engine=engine,
        )
        print(f"{len(written)} artifacts in {args.out}/")
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

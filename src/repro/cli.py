"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``info``
    Print the prototype configuration.
``run``
    Run one kernel/stride/alignment point on one or more memory systems.
``figure``
    Regenerate one of the paper's figures (7, 8, 9, 10, 11).
``ablation``
    Run one of the ablation sweeps (row-policy, vector-contexts, bypass,
    banks).
``complexity``
    Print the Table 1 complexity comparison.

Examples::

    python -m repro run --kernel copy --stride 19
    python -m repro figure 9 --elements 256
    python -m repro ablation row-policy
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.experiments.ablations import (
    ablate_bank_scaling,
    ablate_bypass_paths,
    ablate_row_policy,
    ablate_vector_contexts,
)
from repro.experiments.complexity import complexity_table
from repro.experiments.figures import (
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
)
from repro.experiments.grid import (
    EVAL_KERNELS,
    FIGURE7_KERNELS,
    FIGURE8_KERNELS,
    SYSTEMS,
    run_grid,
    run_point,
)
from repro.experiments.report import format_table
from repro.kernels import ALIGNMENTS
from repro.params import SystemParams

__all__ = ["main", "build_parser"]

_FIGURES = {
    "7": (figure7, dict(kernels=FIGURE7_KERNELS)),
    "8": (figure8, dict(kernels=FIGURE8_KERNELS)),
    "9": (figure9, dict(strides=(1, 4))),
    "10": (figure10, dict(strides=(8, 16, 19))),
    "11": (figure11, dict(kernels=("vaxpy",), systems=("pva-sdram", "pva-sram"))),
}

_ABLATIONS = {
    "row-policy": lambda: ablate_row_policy(),
    "vector-contexts": lambda: ablate_vector_contexts(),
    "bypass": lambda: ablate_bypass_paths(),
    "banks": lambda: ablate_bank_scaling(),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Parallel Vector Access (PVA) reproduction — run the paper's "
            "experiments from the command line."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print the prototype configuration")

    run_parser = sub.add_parser("run", help="run one experiment point")
    run_parser.add_argument(
        "--kernel", default="copy", choices=sorted(EVAL_KERNELS)
    )
    run_parser.add_argument("--stride", type=int, default=1)
    run_parser.add_argument(
        "--alignment",
        default=ALIGNMENTS[0].name,
        choices=[a.name for a in ALIGNMENTS],
    )
    run_parser.add_argument("--elements", type=int, default=1024)
    run_parser.add_argument(
        "--system",
        action="append",
        choices=sorted(SYSTEMS),
        help="memory system(s) to run (default: all four)",
    )

    figure_parser = sub.add_parser(
        "figure", help="regenerate one of the paper's figures"
    )
    figure_parser.add_argument("number", choices=sorted(_FIGURES))
    figure_parser.add_argument("--elements", type=int, default=1024)

    ablation_parser = sub.add_parser("ablation", help="run an ablation sweep")
    ablation_parser.add_argument("name", choices=sorted(_ABLATIONS))

    sub.add_parser(
        "complexity", help="print the Table 1 complexity comparison"
    )

    sweep_parser = sub.add_parser(
        "sweep", help="dense stride sweep on one kernel"
    )
    sweep_parser.add_argument(
        "--kernel", default="scale", choices=sorted(EVAL_KERNELS)
    )
    sweep_parser.add_argument("--max-stride", type=int, default=32)
    sweep_parser.add_argument("--elements", type=int, default=512)

    all_parser = sub.add_parser(
        "all", help="regenerate every experiment artifact into a directory"
    )
    all_parser.add_argument("--out", default="results")
    all_parser.add_argument("--elements", type=int, default=1024)
    return parser


def _cmd_info() -> int:
    params = SystemParams()
    rows = list(params.describe().items())
    print(format_table(("parameter", "value"), rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    alignment = next(a for a in ALIGNMENTS if a.name == args.alignment)
    systems = tuple(args.system) if args.system else tuple(SYSTEMS)
    try:
        cycles = run_point(
            args.kernel,
            stride=args.stride,
            alignment=alignment,
            elements=args.elements,
            systems=systems,
        )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    baseline = min(cycles.values())
    rows = [
        (name, count, f"{count / baseline:.2f}x")
        for name, count in sorted(cycles.items(), key=lambda kv: kv[1])
    ]
    print(
        f"{args.kernel} stride={args.stride} alignment={args.alignment} "
        f"elements={args.elements}"
    )
    print(format_table(("system", "cycles", "vs best"), rows))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    generator, grid_kwargs = _FIGURES[args.number]
    grid = run_grid(elements=args.elements, **grid_kwargs)
    fig = generator(grid)
    print(fig.text)
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    _, text = _ABLATIONS[args.name]()
    print(text)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.baselines.cacheline_serial import CacheLineSerialSDRAM
    from repro.core.decode import decompose_stride
    from repro.kernels import build_trace, kernel_by_name
    from repro.pva import PVAMemorySystem

    params = SystemParams()
    rows = []
    try:
        for stride in range(1, args.max_stride + 1):
            trace = build_trace(
                kernel_by_name(args.kernel),
                stride=stride,
                params=params,
                elements=args.elements,
            )
            pva = PVAMemorySystem(params).run(trace).cycles
            serial = CacheLineSerialSDRAM(params).run(trace).cycles
            rows.append(
                (
                    stride,
                    decompose_stride(stride, params.num_banks).banks_hit,
                    pva,
                    serial,
                    f"{serial / pva:.1f}x",
                )
            )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        format_table(
            ("stride", "banks hit", "pva", "cacheline-serial", "speedup"),
            rows,
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "ablation":
        return _cmd_ablation(args)
    if args.command == "complexity":
        print(complexity_table(SystemParams()))
        return 0
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "all":
        from repro.experiments.report_all import generate_all

        written = generate_all(
            out_dir=args.out, elements=args.elements, progress=print
        )
        print(f"{len(written)} artifacts in {args.out}/")
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``info``
    Print the prototype configuration.
``run``
    Run one kernel/stride/alignment point on one or more memory systems.
``grid``
    Run any (sub-)grid of the section-6.2 evaluation through the
    parallel experiment engine (``--jobs N``) with optional result
    caching (``--cache DIR``).
``figure``
    Regenerate one of the paper's figures (7, 8, 9, 10, 11).
``ablation``
    Run one of the ablation sweeps (row-policy, vector-contexts, bypass,
    banks).
``complexity``
    Print the Table 1 complexity comparison.
``bench``
    Time the reference tick loop against the event-driven
    cycle-skipping loop on the stride-19 grid slice and write
    ``BENCH_sim.json`` (``--quick`` for the CI smoke workload).
``faults-smoke``
    Prove failure containment end to end: run a pool batch with a
    raising point, a watchdog-tripping cycle burner, and a killed
    worker injected, and verify every healthy point still returns its
    exact cycle count.

Engine subcommands (``grid``, ``figure``, ``ablation``, ``all``) accept
``--jobs``/``--cache`` plus the resilience options ``--on-error
raise|collect``, ``--retries N``, and ``--timeout SECONDS``; with
``--on-error collect`` a failing point no longer aborts the batch —
its cells render as ``FAILED`` and the rest of the grid survives.

Examples::

    python -m repro run --kernel copy --stride 19
    python -m repro grid --jobs 4 --cache .engine-cache
    python -m repro grid --jobs 4 --on-error collect --retries 1 --timeout 120
    python -m repro figure 9 --elements 256 --jobs 4
    python -m repro ablation row-policy
    python -m repro faults-smoke
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api import available_systems
from repro.engine import EngineHooks, ExperimentEngine
from repro.errors import ConfigurationError
from repro.experiments.ablations import (
    ablate_bank_scaling,
    ablate_bypass_paths,
    ablate_row_policy,
    ablate_vector_contexts,
)
from repro.experiments.complexity import complexity_table
from repro.experiments.figures import FIGURE_GRIDS, run_figure
from repro.experiments.grid import (
    EVAL_KERNELS,
    EVAL_STRIDES,
    run_grid,
    run_point,
)
from repro.experiments.report import format_table
from repro.kernels import ALIGNMENTS, alignment_by_name
from repro.params import SystemParams

__all__ = ["main", "build_parser"]

_ABLATIONS = {
    "row-policy": ablate_row_policy,
    "vector-contexts": ablate_vector_contexts,
    "bypass": ablate_bypass_paths,
    "banks": ablate_bank_scaling,
}


class _MetricsLine(EngineHooks):
    """Prints the engine's throughput/caching summary after each batch
    (to stderr, keeping result tables clean on stdout), plus one line
    per terminally failed point in collect mode."""

    def point_failed(self, failure, metrics):
        print(f"[engine] FAILED {failure.describe()}", file=sys.stderr)

    def batch_complete(self, metrics):
        resilience = ""
        if metrics.failures or metrics.retries or metrics.timeouts:
            resilience = (
                f", {metrics.failures} failed / {metrics.retries} "
                f"retried / {metrics.timeouts} timed out"
            )
        throughput = ""
        if metrics.sim_seconds > 0:
            throughput = (
                f", {metrics.sim_cycles_per_second / 1000.0:.1f}k "
                f"sim-cycles/s"
            )
        print(
            f"[engine] {metrics.points_done} points "
            f"({metrics.simulated} simulated, "
            f"cache hit rate {metrics.cache_hit_rate:.0%}) "
            f"in {metrics.elapsed_seconds:.2f}s — "
            f"{metrics.points_per_second:.1f} points/s, "
            f"{metrics.jobs} job{'s' if metrics.jobs != 1 else ''}"
            f"{throughput}{resilience}",
            file=sys.stderr,
        )
        if metrics.component_cycles:
            # Collapse the per-bank components into one aggregate line
            # item; the full per-bank ledger stays in summary() and the
            # bench report.
            collapsed: dict = {}
            for name, buckets in metrics.component_cycles.items():
                label = "banks" if name.startswith("bank-") else name
                entry = collapsed.setdefault(
                    label, {"busy": 0, "stalled": 0, "idle": 0}
                )
                for bucket in entry:
                    entry[bucket] += buckets[bucket]
            parts = []
            for name, buckets in sorted(collapsed.items()):
                total = (
                    buckets["busy"] + buckets["stalled"] + buckets["idle"]
                )
                busy = buckets["busy"] / total if total else 0.0
                parts.append(f"{name} {busy:.0%} busy")
            print(
                "[engine] attribution: " + ", ".join(parts),
                file=sys.stderr,
            )


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the experiment engine (default: 1)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="directory for the content-addressed result cache",
    )
    parser.add_argument(
        "--on-error",
        choices=("raise", "collect"),
        default="raise",
        help=(
            "collect: record per-point failures and keep the batch "
            "running (failed cells render as FAILED); raise (default): "
            "abort on the first failure"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="re-attempts per failed point, with exponential backoff",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-point wall-clock budget in worker pools; recovers "
            "hung simulations and killed workers (default: wait forever)"
        ),
    )


def _engine_from(args: argparse.Namespace) -> ExperimentEngine:
    return ExperimentEngine(
        jobs=args.jobs,
        cache_dir=args.cache,
        hooks=_MetricsLine(),
        on_error=args.on_error,
        retry=args.retries,
        timeout=args.timeout,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Parallel Vector Access (PVA) reproduction — run the paper's "
            "experiments from the command line."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print the prototype configuration")

    run_parser = sub.add_parser("run", help="run one experiment point")
    run_parser.add_argument(
        "--kernel", default="copy", choices=sorted(EVAL_KERNELS)
    )
    run_parser.add_argument("--stride", type=int, default=1)
    run_parser.add_argument(
        "--alignment",
        default=ALIGNMENTS[0].name,
        choices=[a.name for a in ALIGNMENTS],
    )
    run_parser.add_argument("--elements", type=int, default=1024)
    run_parser.add_argument(
        "--system",
        action="append",
        choices=sorted(available_systems()),
        help="memory system(s) to run (default: all four)",
    )

    grid_parser = sub.add_parser(
        "grid",
        help="run a (sub-)grid of the evaluation through the engine",
    )
    grid_parser.add_argument(
        "--kernel",
        action="append",
        choices=sorted(EVAL_KERNELS),
        help="kernel(s) to run (default: all eight)",
    )
    grid_parser.add_argument(
        "--stride",
        action="append",
        type=int,
        help="stride(s) to run (default: 1 2 4 8 16 19)",
    )
    grid_parser.add_argument(
        "--alignment",
        action="append",
        choices=[a.name for a in ALIGNMENTS],
        help="alignment(s) to run (default: all five)",
    )
    grid_parser.add_argument(
        "--system",
        action="append",
        choices=sorted(available_systems()),
        help="memory system(s) to run (default: all four)",
    )
    grid_parser.add_argument("--elements", type=int, default=1024)
    _add_engine_options(grid_parser)

    figure_parser = sub.add_parser(
        "figure", help="regenerate one of the paper's figures"
    )
    figure_parser.add_argument("number", choices=sorted(FIGURE_GRIDS))
    figure_parser.add_argument("--elements", type=int, default=1024)
    _add_engine_options(figure_parser)

    ablation_parser = sub.add_parser("ablation", help="run an ablation sweep")
    ablation_parser.add_argument("name", choices=sorted(_ABLATIONS))
    _add_engine_options(ablation_parser)

    sub.add_parser(
        "complexity", help="print the Table 1 complexity comparison"
    )

    smoke_parser = sub.add_parser(
        "faults-smoke",
        help=(
            "inject faults (raise, hang, killed worker) into a pool "
            "batch and verify the engine contains all of them"
        ),
    )
    smoke_parser.add_argument("--jobs", type=int, default=2)
    smoke_parser.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="per-point budget; bounds how long the killed worker stalls",
    )
    smoke_parser.add_argument("--elements", type=int, default=64)

    bench_parser = sub.add_parser(
        "bench",
        help=(
            "time the reference tick loop against the event-driven "
            "cycle-skipping loop on the stride-19 grid slice"
        ),
    )
    bench_parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke workload: two kernels, one alignment",
    )
    bench_parser.add_argument("--elements", type=int, default=1024)
    bench_parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="measurements per (system, mode); the best is kept",
    )
    bench_parser.add_argument(
        "--out",
        default="BENCH_sim.json",
        metavar="FILE",
        help="JSON report path ('' to skip writing)",
    )
    bench_parser.add_argument(
        "--system",
        action="append",
        choices=sorted(available_systems()),
        help="memory system(s) to benchmark (default: all four)",
    )
    bench_parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero unless skip is at least X times faster",
    )
    bench_parser.add_argument(
        "--min-precompute-speedup",
        type=float,
        default=None,
        metavar="X",
        help=(
            "exit non-zero unless the hit-schedule precompute path's "
            "dense-slice tick rate is at least X times the recorded "
            "pre-precompute baseline"
        ),
    )

    sweep_parser = sub.add_parser(
        "sweep", help="dense stride sweep on one kernel"
    )
    sweep_parser.add_argument(
        "--kernel", default="scale", choices=sorted(EVAL_KERNELS)
    )
    sweep_parser.add_argument("--max-stride", type=int, default=32)
    sweep_parser.add_argument("--elements", type=int, default=512)

    all_parser = sub.add_parser(
        "all", help="regenerate every experiment artifact into a directory"
    )
    all_parser.add_argument("--out", default="results")
    all_parser.add_argument("--elements", type=int, default=1024)
    _add_engine_options(all_parser)
    return parser


def _cmd_info() -> int:
    params = SystemParams()
    rows = list(params.describe().items())
    print(format_table(("parameter", "value"), rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    alignment = alignment_by_name(args.alignment)
    systems = tuple(args.system) if args.system else available_systems()
    try:
        cycles = run_point(
            args.kernel,
            stride=args.stride,
            alignment=alignment,
            elements=args.elements,
            systems=systems,
        )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    baseline = min(cycles.values())
    rows = [
        (name, count, f"{count / baseline:.2f}x")
        for name, count in sorted(cycles.items(), key=lambda kv: kv[1])
    ]
    print(
        f"{args.kernel} stride={args.stride} alignment={args.alignment} "
        f"elements={args.elements}"
    )
    print(format_table(("system", "cycles", "vs best"), rows))
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    kernels = tuple(args.kernel) if args.kernel else EVAL_KERNELS
    strides = tuple(args.stride) if args.stride else EVAL_STRIDES
    alignments = (
        tuple(alignment_by_name(name) for name in args.alignment)
        if args.alignment
        else None
    )
    systems = tuple(args.system) if args.system else available_systems()
    try:
        grid = run_grid(
            kernels=kernels,
            strides=strides,
            alignments=alignments,
            elements=args.elements,
            systems=systems,
            engine=_engine_from(args),
        )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    headers = ("kernel", "stride", "alignment") + tuple(grid.systems)
    rows = [
        (kernel, stride, alignment)
        + tuple(
            "FAILED" if point[name] is None else point[name]
            for name in grid.systems
        )
        for (kernel, stride, alignment), point in grid.cycles.items()
    ]
    print(format_table(headers, rows))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    fig = run_figure(args.number, args.elements, _engine_from(args))
    print(fig.text)
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    _, text = _ABLATIONS[args.name](engine=_engine_from(args))
    print(text)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.api import simulate
    from repro.core.decode import decompose_stride
    from repro.kernels import build_trace, kernel_by_name

    params = SystemParams()
    rows = []
    try:
        for stride in range(1, args.max_stride + 1):
            trace = build_trace(
                kernel_by_name(args.kernel),
                stride=stride,
                params=params,
                elements=args.elements,
            )
            pva = simulate(trace, params, system="pva-sdram").cycles
            serial = simulate(trace, params, system="cacheline-serial").cycles
            rows.append(
                (
                    stride,
                    decompose_stride(stride, params.num_banks).banks_hit,
                    pva,
                    serial,
                    f"{serial / pva:.1f}x",
                )
            )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        format_table(
            ("stride", "banks hit", "pva", "cacheline-serial", "speedup"),
            rows,
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "grid":
        return _cmd_grid(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "ablation":
        return _cmd_ablation(args)
    if args.command == "complexity":
        print(complexity_table(SystemParams()))
        return 0
    if args.command == "faults-smoke":
        from repro.faults.smoke import run_faults_smoke

        return run_faults_smoke(
            jobs=args.jobs, timeout=args.timeout, elements=args.elements
        )
    if args.command == "bench":
        from repro.bench import main as bench_main

        return bench_main(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "all":
        from repro.experiments.report_all import generate_all

        engine = _engine_from(args)
        written = generate_all(
            out_dir=args.out,
            elements=args.elements,
            progress=print,
            engine=engine,
        )
        print(f"{len(written)} artifacts in {args.out}/")
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Configuration objects describing the simulated machine.

Two dataclasses capture everything the simulators need:

* :class:`SDRAMTiming` — per-device timing and geometry of the SDRAM parts
  (the paper drives Micron 256 Mbit x16 parts: 4 internal banks, RAS and CAS
  latencies of two cycles at 100 MHz).
* :class:`SystemParams` — the memory-system geometry around the devices:
  number of interleaved banks, cache-line size, vector-bus limits, and the
  bank-controller microarchitecture knobs (vector contexts, FIFO depth,
  bypass paths).

Both are frozen; experiments derive variants with :func:`dataclasses.replace`.
"""

from __future__ import annotations

import os
from functools import cached_property
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.types import WORD_BYTES

__all__ = [
    "ENV_SIM_MODE",
    "SDRAMTiming",
    "SIM_MODES",
    "SRAMTiming",
    "SystemParams",
    "is_power_of_two",
    "log2_exact",
]

#: The four simulation backends, from slowest/most-literal to fastest.
#: Each mode is bit-exact with the others (``RunResult`` equality is held
#: by the differential suites); they differ only in how the machine is
#: stepped:
#:
#: * ``"tick"`` — reference loop, every component ticked every cycle.
#: * ``"skip"`` — next-event time skipping, incremental FirstHit expansion.
#: * ``"precompute"`` — time skipping + broadcast-time hit schedules.
#: * ``"soa"`` — precompute + the structure-of-arrays bank automaton:
#:   all banks stepped as flat-array operations (:mod:`repro.pva.soa`).
SIM_MODES = ("tick", "skip", "precompute", "soa")

#: Environment variable overriding :attr:`SystemParams.sim_mode` at
#: construction time (mirrors ``REPRO_TIME_SKIP`` for the run loop):
#: any of :data:`SIM_MODES` forces that backend for every
#: :class:`SystemParams` built while it is set; empty or ``auto`` defers
#: to the configuration object.
ENV_SIM_MODE = "REPRO_SIM_MODE"

#: ``sim_mode`` -> (time_skip, precompute) aspects implied by each mode.
_MODE_ASPECTS = {
    "tick": (False, False),
    "skip": (True, False),
    "precompute": (True, True),
    "soa": (True, True),
}


def is_power_of_two(value: int) -> bool:
    """True iff ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int, what: str = "value") -> int:
    """Return ``log2(value)`` for an exact power of two, else raise."""
    if not is_power_of_two(value):
        raise ConfigurationError(f"{what} must be a power of two, got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True)
class SDRAMTiming:
    """Timing and geometry of one SDRAM bank (a 32-bit wide module built
    from x16 parts, per section 5.1).

    All latencies are in memory-bus clock cycles (100 MHz in the prototype).

    Attributes
    ----------
    t_rcd:
        RAS-to-CAS delay: cycles between a bank-activate (row open) and the
        first column command to that row.  Paper: 2.
    cas_latency:
        Cycles between a READ command and its data appearing on the device
        data pins.  Paper: 2.
    t_rp:
        Precharge period: cycles after a PRECHARGE before the internal bank
        can be activated again.  Paper models 2.
    t_wr:
        Write recovery: cycles after the last write datum before a
        precharge of the same internal bank may be issued.
    internal_banks:
        Independent banks (row buffers) inside one device.  Paper: 4.
    row_words:
        Row (page) size per internal bank in machine words.  A 2 KB page of
        a 32-bit module is 512 words.
    """

    t_rcd: int = 2
    cas_latency: int = 2
    t_rp: int = 2
    t_wr: int = 1
    internal_banks: int = 4
    row_words: int = 512
    #: Auto-refresh period in cycles; 0 disables refresh, which is what
    #: the paper's evaluation implicitly assumes.  A realistic 100 MHz
    #: part refreshing 8192 rows every 64 ms needs one refresh per ~780
    #: cycles.
    refresh_interval: int = 0
    #: Cycles one auto-refresh occupies the whole device (rows close,
    #: no activates until it completes).
    t_rfc: int = 8

    def __post_init__(self) -> None:
        for name in ("t_rcd", "cas_latency", "t_rp"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")
        if self.t_wr < 0:
            raise ConfigurationError("t_wr must be >= 0")
        if self.refresh_interval < 0:
            raise ConfigurationError("refresh_interval must be >= 0")
        if self.t_rfc < 1:
            raise ConfigurationError("t_rfc must be >= 1")
        if not is_power_of_two(self.internal_banks):
            raise ConfigurationError(
                f"internal_banks must be a power of two, got {self.internal_banks}"
            )
        if not is_power_of_two(self.row_words):
            raise ConfigurationError(
                f"row_words must be a power of two, got {self.row_words}"
            )

    @property
    def row_miss_penalty(self) -> int:
        """Cycles added by a row conflict versus an open-row hit."""
        return self.t_rp + self.t_rcd


@dataclass(frozen=True)
class SRAMTiming:
    """Timing of the idealized SRAM used by the PVA-SRAM comparison system:
    every access completes in ``access_cycles`` with no row state."""

    access_cycles: int = 1

    def __post_init__(self) -> None:
        if self.access_cycles < 1:
            raise ConfigurationError("access_cycles must be >= 1")


@dataclass(frozen=True)
class SystemParams:
    """Memory-system geometry and bank-controller microarchitecture.

    Defaults reproduce the paper's prototype (section 5.1): 16 banks of
    word-interleaved 32-bit SDRAM, 128-byte L2 lines (32-word vector
    commands), a split-transaction bus with 8 outstanding transactions,
    and bank controllers with 4 vector contexts.
    """

    num_banks: int = 16
    cache_line_words: int = 32
    max_transactions: int = 8
    num_vector_contexts: int = 4
    request_fifo_depth: int = 8
    sdram: SDRAMTiming = field(default_factory=SDRAMTiming)
    #: Cycles the FirstHit-Calculate multiply-add needs for a non-power-of-
    #: two stride (29.5 ns FPGA critical path -> 2 cycles at 100 MHz).
    fhc_latency: int = 2
    #: One dead cycle whenever the data-bus direction reverses (5.2.5).
    bus_turnaround: int = 1
    #: Data cycles to stage one cache line over the 128-bit BC bus
    #: (128 bytes at 8 bytes per cycle = 16, section 5.2.6).
    @property
    def stage_cycles(self) -> int:
        return (self.cache_line_words * WORD_BYTES) // 8

    #: Enable the latency-reduction bypass paths of section 5.2.3.
    bypass_paths: bool = True
    #: Row-management policy: "paper" (the prototype's ManageRow),
    #: "close", "open", or "history" (Alpha 21174-style) — see
    #: :mod:`repro.pva.rowpolicy`.
    row_policy: str = "paper"
    #: Minimum cycles between vector-command issues from the front end.
    #: 0 models the paper's infinitely fast CPU (section 6.2); larger
    #: values model a processor that produces commands at a finite rate.
    issue_interval: int = 0
    #: Select the next-event time-skip run loop (the fast path): the
    #: simulator jumps idle gaps instead of ticking through them.
    #: Cycle-exact with the reference tick loop (False); the
    #: ``REPRO_TIME_SKIP`` environment variable overrides this field.
    #: Deprecated alias: prefer ``sim_mode``; ``None`` (the default)
    #: inherits the aspect implied by ``sim_mode``.
    time_skip: Optional[bool] = None
    #: Precompute each bank's full hit schedule (indices, local words and
    #: decoded device coordinates) at broadcast time and run the bank
    #: controllers on cursor reads plus quiet-cycle gating
    #: (:mod:`repro.pva.schedule`).  Cycle-exact with the incremental
    #: reference expansion (False); ``python -m repro bench`` carries a
    #: ``precompute`` section cross-checking the two.
    #: Deprecated alias: prefer ``sim_mode``; ``None`` (the default)
    #: inherits the aspect implied by ``sim_mode``.
    precompute: Optional[bool] = None
    #: Which simulation backend steps the machine — one of
    #: :data:`SIM_MODES`.  ``None`` resolves from the legacy boolean
    #: aliases (both unset -> ``"precompute"``, today's default).  After
    #: construction the field always holds the resolved canonical label,
    #: so it is stable under :func:`dataclasses.replace` round-trips and
    #: participates in hashing/equality like any other field.  The
    #: ``REPRO_SIM_MODE`` environment variable, when set to a mode name,
    #: overrides both this field and the boolean aliases wholesale.
    sim_mode: Optional[str] = None

    def __post_init__(self) -> None:
        if not is_power_of_two(self.num_banks):
            raise ConfigurationError(
                f"num_banks must be a power of two, got {self.num_banks}"
            )
        if not is_power_of_two(self.cache_line_words):
            raise ConfigurationError(
                "cache_line_words must be a power of two, got "
                f"{self.cache_line_words}"
            )
        if self.max_transactions < 1:
            raise ConfigurationError("max_transactions must be >= 1")
        if self.max_transactions > 8:
            raise ConfigurationError(
                "the vector bus carries a three-bit transaction id; "
                f"max_transactions must be <= 8, got {self.max_transactions}"
            )
        if self.num_vector_contexts < 1:
            raise ConfigurationError("num_vector_contexts must be >= 1")
        if self.request_fifo_depth < self.max_transactions:
            raise ConfigurationError(
                "the register file must hold as many entries as the bus "
                "allows outstanding transactions (section 5.2.2): depth "
                f"{self.request_fifo_depth} < {self.max_transactions}"
            )
        if self.fhc_latency < 1:
            raise ConfigurationError("fhc_latency must be >= 1")
        if self.bus_turnaround < 0:
            raise ConfigurationError("bus_turnaround must be >= 0")
        if self.issue_interval < 0:
            raise ConfigurationError("issue_interval must be >= 0")
        self._resolve_sim_mode()

    def _resolve_sim_mode(self) -> None:
        """Resolve ``sim_mode`` and its legacy boolean aliases into a
        concrete, mutually consistent triple.

        Resolution order (later wins):

        1. ``sim_mode`` supplies defaults for both aspects via the mode
           ladder (tick -> skip -> precompute -> soa);
        2. an explicitly passed ``time_skip``/``precompute`` boolean
           overrides its aspect (back-compat with pre-``sim_mode``
           callers and ``dataclasses.replace`` round-trips);
        3. the ``REPRO_SIM_MODE`` environment variable, when set to a
           mode name, overrides everything wholesale.

        The stored ``sim_mode`` is recomputed from the resolved aspects
        so the field always carries the canonical label for what will
        actually run; the frozen-dataclass writes go through
        ``object.__setattr__`` (standard ``__post_init__`` idiom).
        """
        mode = self.sim_mode
        if mode is not None and mode not in _MODE_ASPECTS:
            raise ConfigurationError(
                f"sim_mode must be one of {SIM_MODES}, got {mode!r}"
            )
        for alias in ("time_skip", "precompute"):
            value = getattr(self, alias)
            if value is not None and not isinstance(value, bool):
                raise ConfigurationError(
                    f"{alias} must be a bool or None, got {value!r}"
                )
        env = os.environ.get(ENV_SIM_MODE)
        forced = None
        if env is not None:
            env = env.strip().lower()
            if env and env != "auto":
                if env not in _MODE_ASPECTS:
                    raise ConfigurationError(
                        f"{ENV_SIM_MODE} must be one of {SIM_MODES} "
                        f"(or empty/'auto'), got {env!r}"
                    )
                forced = env
        if forced is not None:
            time_skip, precompute = _MODE_ASPECTS[forced]
            soa = forced == "soa"
        else:
            if mode is None:
                # Legacy default: both aspects on (today's behaviour).
                time_skip = True if self.time_skip is None else self.time_skip
                precompute = (
                    True if self.precompute is None else self.precompute
                )
                soa = False
            else:
                mode_skip, mode_pre = _MODE_ASPECTS[mode]
                time_skip = (
                    mode_skip if self.time_skip is None else self.time_skip
                )
                precompute = (
                    mode_pre if self.precompute is None else self.precompute
                )
                soa = mode == "soa"
            if soa and not precompute:
                raise ConfigurationError(
                    "sim_mode='soa' steps banks from precomputed hit "
                    "schedules; precompute=False is incompatible"
                )
        if soa:
            label = "soa"
        elif precompute:
            label = "precompute"
        elif time_skip:
            label = "skip"
        else:
            label = "tick"
        object.__setattr__(self, "time_skip", time_skip)
        object.__setattr__(self, "precompute", precompute)
        object.__setattr__(self, "sim_mode", label)

    @cached_property
    def bank_bits(self) -> int:
        """``m`` such that ``num_banks == 2**m`` (cached: read on every
        broadcast and local-address computation)."""
        return log2_exact(self.num_banks, "num_banks")

    @property
    def line_bytes(self) -> int:
        return self.cache_line_words * WORD_BYTES

    @property
    def max_vector_length(self) -> int:
        """Longest vector one bus command may carry (one cache line)."""
        return self.cache_line_words

    def with_banks(self, num_banks: int) -> "SystemParams":
        """A copy of these parameters with a different bank count."""
        return replace(self, num_banks=num_banks)

    def describe(self) -> Dict[str, object]:
        """Flat summary used by reports and benchmarks."""
        return {
            "sim_mode": self.sim_mode,
            "num_banks": self.num_banks,
            "cache_line_words": self.cache_line_words,
            "max_transactions": self.max_transactions,
            "num_vector_contexts": self.num_vector_contexts,
            "request_fifo_depth": self.request_fifo_depth,
            "t_rcd": self.sdram.t_rcd,
            "cas_latency": self.sdram.cas_latency,
            "t_rp": self.sdram.t_rp,
            "internal_banks": self.sdram.internal_banks,
            "row_words": self.sdram.row_words,
            "fhc_latency": self.fhc_latency,
            "stage_cycles": self.stage_cycles,
        }


# The canonical prototype configuration used throughout the evaluation.
PROTOTYPE = SystemParams()

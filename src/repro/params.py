"""Compatibility façade over the configuration composition root.

The canonical configuration container is :class:`repro.config.GenParams`
(which composes :class:`~repro.config.Topology`,
:class:`~repro.config.SDRAMTiming`/:class:`~repro.config.SRAMTiming`,
the bank-controller microarchitecture, ``row_policy`` and ``sim_mode``,
and owns ``to_dict``/``from_dict``/``config_key``).  This module keeps
the historical flat-field :class:`SystemParams` API that the rest of the
repo (and downstream scripts) construct everywhere; every instance
validates by building its :class:`~repro.config.GenParams` — available
as :attr:`SystemParams.gen` — so the two can never disagree.

Both classes are frozen; experiments derive variants with
:func:`dataclasses.replace`.
"""

from __future__ import annotations

import warnings
from functools import cached_property
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional

from repro.config import (
    CONFIG_SCHEMA_VERSION,
    ENV_SIM_MODE,
    GenParams,
    ROW_POLICIES,
    SDRAMTiming,
    SIM_MODES,
    SRAMTiming,
    Topology,
    canonical_sim_mode,
    is_power_of_two,
    log2_exact,
)
from repro.errors import ConfigurationError
from repro.types import WORD_BYTES

__all__ = [
    "CONFIG_SCHEMA_VERSION",
    "ENV_SIM_MODE",
    "GenParams",
    "ROW_POLICIES",
    "SDRAMTiming",
    "SIM_MODES",
    "SRAMTiming",
    "SystemParams",
    "Topology",
    "is_power_of_two",
    "log2_exact",
]

_DEPRECATED_ALIAS_MESSAGE = (
    "SystemParams(time_skip=..., precompute=...) is deprecated; pass "
    "sim_mode='tick' | 'skip' | 'precompute' | 'soa' | 'window' instead"
)


@dataclass(frozen=True)
class SystemParams:
    """Memory-system geometry and bank-controller microarchitecture.

    Defaults reproduce the paper's prototype (section 5.1): 16 banks of
    word-interleaved 32-bit SDRAM on one channel, 128-byte L2 lines
    (32-word vector commands), a split-transaction bus with 8 outstanding
    transactions, and bank controllers with 4 vector contexts.

    ``num_banks`` is the **total** bank count across the whole topology;
    with ``num_channels``/``ranks_per_channel`` above one it must be an
    exact multiple so every rank hosts a power-of-two bank count
    (``banks_per_rank = num_banks // (channels * ranks)``).
    """

    num_banks: int = 16
    cache_line_words: int = 32
    max_transactions: int = 8
    num_vector_contexts: int = 4
    request_fifo_depth: int = 8
    sdram: SDRAMTiming = field(default_factory=SDRAMTiming)
    #: Cycles the FirstHit-Calculate multiply-add needs for a non-power-of-
    #: two stride (29.5 ns FPGA critical path -> 2 cycles at 100 MHz).
    fhc_latency: int = 2
    #: One dead cycle whenever the data-bus direction reverses (5.2.5).
    bus_turnaround: int = 1

    #: Data cycles to stage one cache line over the 128-bit BC bus
    #: (128 bytes at 8 bytes per cycle = 16, section 5.2.6) — summed
    #: over all channels.
    @property
    def stage_cycles(self) -> int:
        return (self.cache_line_words * WORD_BYTES) // 8

    #: Enable the latency-reduction bypass paths of section 5.2.3.
    bypass_paths: bool = True
    #: Row-management policy: "paper" (the prototype's ManageRow),
    #: "close", "open", or "history" (Alpha 21174-style) — see
    #: :mod:`repro.pva.rowpolicy`.
    row_policy: str = "paper"
    #: Minimum cycles between vector-command issues from the front end.
    #: 0 models the paper's infinitely fast CPU (section 6.2); larger
    #: values model a processor that produces commands at a finite rate.
    issue_interval: int = 0
    #: Deprecated boolean alias for ``sim_mode`` (run-loop aspect).
    #: Passing a bool emits a :class:`DeprecationWarning` and maps onto a
    #: mode label; after construction the field is always ``None``.
    time_skip: Optional[bool] = None
    #: Deprecated boolean alias for ``sim_mode`` (hit-schedule aspect).
    #: Same contract as ``time_skip``.
    precompute: Optional[bool] = None
    #: Which simulation backend steps the machine — one of
    #: :data:`SIM_MODES`; ``None`` means the default (``"precompute"``).
    #: After construction the field always holds the concrete label, so
    #: it is stable under :func:`dataclasses.replace` round-trips and
    #: participates in hashing/equality like any other field.  The
    #: ``REPRO_SIM_MODE`` environment variable, when set to a mode name,
    #: overrides this field wholesale.
    sim_mode: Optional[str] = None
    #: Memory channels; the bank-select bits of a word address are
    #: channel-interleaved (see :class:`repro.config.Topology`).
    num_channels: int = 1
    #: Ranks per channel (organizational: capacity, not timing).
    ranks_per_channel: int = 1
    #: Timing of the idealized SRAM device used by the PVA-SRAM system.
    sram: SRAMTiming = field(default_factory=SRAMTiming)

    def __post_init__(self) -> None:
        self._resolve_sim_mode()
        if not is_power_of_two(self.num_banks):
            raise ConfigurationError(
                f"num_banks must be a power of two, got {self.num_banks}"
            )
        ways = self.num_channels * self.ranks_per_channel
        if not is_power_of_two(self.num_channels):
            raise ConfigurationError(
                f"num_channels must be a power of two, got {self.num_channels!r}"
            )
        if not is_power_of_two(self.ranks_per_channel):
            raise ConfigurationError(
                "ranks_per_channel must be a power of two, got "
                f"{self.ranks_per_channel!r}"
            )
        if self.num_banks % ways != 0 or self.num_banks < ways:
            raise ConfigurationError(
                "channel/rank select bits overflow the bank bits: "
                f"num_channels*ranks_per_channel={ways} does not divide "
                f"num_banks={self.num_banks}"
            )
        # Build (and cache) the canonical container eagerly: its
        # validation is the single source of truth for every remaining
        # cross-field rule.
        self.gen

    def _resolve_sim_mode(self) -> None:
        """Fold the deprecated ``time_skip``/``precompute`` aliases into
        a concrete ``sim_mode`` label.

        * Booleans alone (``sim_mode=None``) warn and map onto the mode
          ladder: loop off -> ``"tick"``; schedules off -> ``"skip"``;
          both on -> ``"precompute"``.
        * Booleans *plus* an explicit ``sim_mode`` are a contradiction
          and raise (the old silent alias-precedence rule is gone).
        * After resolution both aliases are reset to ``None`` so
          equality, hashing and :func:`dataclasses.replace` round-trips
          see only the label.

        The ``REPRO_SIM_MODE`` environment variable, when set to a mode
        name, overrides the result wholesale.  The frozen-dataclass
        writes go through ``object.__setattr__`` (standard
        ``__post_init__`` idiom).
        """
        mode = self.sim_mode
        if mode is not None and mode not in SIM_MODES:
            raise ConfigurationError(
                f"sim_mode must be one of {SIM_MODES}, got {mode!r}"
            )
        aliased = False
        for alias in ("time_skip", "precompute"):
            value = getattr(self, alias)
            if value is None:
                continue
            if not isinstance(value, bool):
                raise ConfigurationError(
                    f"{alias} must be a bool or None, got {value!r}"
                )
            aliased = True
        if aliased:
            warnings.warn(
                _DEPRECATED_ALIAS_MESSAGE, DeprecationWarning, stacklevel=4
            )
            if mode is not None:
                raise ConfigurationError(
                    "pass either sim_mode or the legacy time_skip/"
                    "precompute booleans, not both "
                    f"(got sim_mode={mode!r}, time_skip={self.time_skip!r}, "
                    f"precompute={self.precompute!r})"
                )
            time_skip = True if self.time_skip is None else self.time_skip
            precompute = True if self.precompute is None else self.precompute
            if not time_skip:
                mode = "tick"
            elif not precompute:
                mode = "skip"
            else:
                mode = "precompute"
        elif mode is None:
            mode = "precompute"
        mode = canonical_sim_mode(mode)
        object.__setattr__(self, "time_skip", None)
        object.__setattr__(self, "precompute", None)
        object.__setattr__(self, "sim_mode", mode)

    @cached_property
    def gen(self) -> GenParams:
        """The canonical :class:`~repro.config.GenParams` this façade
        forwards to (built once; ``cached_property`` writes through the
        instance ``__dict__``, which frozen dataclasses allow and
        equality/hash ignore)."""
        return GenParams.from_system_params(self)

    @property
    def topology(self) -> Topology:
        return self.gen.topology

    @cached_property
    def bank_bits(self) -> int:
        """``m`` such that ``num_banks == 2**m`` (cached: read on every
        broadcast and local-address computation)."""
        return log2_exact(self.num_banks, "num_banks")

    @property
    def line_bytes(self) -> int:
        return self.cache_line_words * WORD_BYTES

    @property
    def channel_stage_cycles(self) -> int:
        """Data cycles one *channel* is occupied staging its share of a
        cache line (= ``stage_cycles // num_channels``)."""
        return self.stage_cycles // self.num_channels

    @property
    def max_vector_length(self) -> int:
        """Longest vector one bus command may carry (one cache line)."""
        return self.cache_line_words

    @property
    def uses_time_skip(self) -> bool:
        """Whether this mode runs the next-event skip loop (every mode
        except the reference ``tick`` loop)."""
        return self.sim_mode != "tick"

    @property
    def uses_precompute(self) -> bool:
        """Whether this mode expands broadcast-time hit schedules
        (:mod:`repro.pva.schedule`)."""
        return self.sim_mode in ("precompute", "soa", "window")

    def with_banks(self, num_banks: int) -> "SystemParams":
        """A copy of these parameters with a different bank count."""
        return replace(self, num_banks=num_banks)

    # ---------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, Any]:
        """The canonical config document (:meth:`GenParams.to_dict`)."""
        return self.gen.to_dict()

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "SystemParams":
        """Rebuild a façade from a canonical config document."""
        return GenParams.from_dict(doc).to_system_params()

    def config_key(self) -> str:
        """Stable content hash of the canonical config document."""
        return self.gen.config_key()

    def describe(self) -> Dict[str, object]:
        """Flat summary used by reports and benchmarks.

        Derived by flattening the canonical :meth:`to_dict` document —
        every config field appears exactly once (so the summary can
        never silently omit a knob again) plus the handful of derived
        geometry values reports historically relied on.
        """
        doc = self.to_dict()
        flat: Dict[str, object] = {"sim_mode": doc["sim_mode"]}
        flat["num_banks"] = self.num_banks
        for name, value in doc["topology"].items():
            flat[name] = value
        for name, value in doc.items():
            if name in ("schema_version", "topology", "sdram", "sram", "sim_mode"):
                continue
            flat[name] = value
        for name, value in doc["sdram"].items():
            flat[name] = value
        flat["sram_access_cycles"] = doc["sram"]["access_cycles"]
        flat["stage_cycles"] = self.stage_cycles
        flat["channel_stage_cycles"] = self.channel_stage_cycles
        return flat


# The canonical prototype configuration used throughout the evaluation.
PROTOTYPE = SystemParams()

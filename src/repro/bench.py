"""Wall-clock benchmark harness for the simulation core.

``python -m repro bench`` times every registered memory system twice
over the same workload — once with the reference tick loop
(``sim_mode="tick"``) and once with the default fast path
(``sim_mode="precompute"``: the event-driven skip loop plus
broadcast-time hit schedules; the report's ``skip_*`` keys, kept for
metric continuity) — and reports simulated-cycles-per-second for each
mode plus the fast-vs-tick wall-clock speedup.  The workload is the
stride-19 slice of the section-6.2 evaluation grid (every kernel x
every alignment), the densest bank-conflict case in the paper and the
headline configuration tracked in ``BENCH_sim.json``.

Every report carries the resolved canonical config document
(``config``/``config_key``, from :meth:`GenParams.to_dict`) and the
harness verifies each section ran that identical configuration (modulo
the section's declared ``sim_mode``, and ``issue_interval`` for the
sparse scenario) before publishing numbers.

The harness also cross-checks correctness for free: both modes must
report identical total cycle counts, or the run aborts — a benchmark of
a wrong simulator is worthless.

Methodology notes:

* traces are built outside the timed region; the timer covers system
  construction plus simulation, the same work either run loop does;
* each (system, mode) measurement is repeated ``repeats`` times and the
  **best** wall time is kept (the usual minimum-of-N noise filter);
* the ``REPRO_TIME_SKIP`` and ``REPRO_SIM_MODE`` environment overrides
  are suspended for the duration so the modes really are what they
  claim to be.

Two kinds of baseline appear in the report.  *Measured* rates come from
this run, on this machine.  *Recorded* rates are constants frozen into
this module from the ``BENCH_sim.json`` of the run that preceded an
optimization layer — the denominators CI gates hold speedups against.
Both are reported side by side so a stale recorded constant is visible
as a recorded-vs-measured gap instead of silently inflating (or
deflating) ``speedup_vs_baseline`` on faster or slower hardware.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.api import available_systems, build_system
from repro.errors import ConfigurationError
from repro.experiments.grid import EVAL_KERNELS
from repro.kernels import ALIGNMENTS, build_trace, kernel_by_name
from repro.params import ENV_SIM_MODE, SystemParams
from repro.sim.events import ENV_TOGGLE

__all__ = [
    "HEADLINE_STRIDE",
    "run_bench",
    "format_bench",
    "history_record",
    "main",
]

#: The grid slice the benchmark times: the paper's worst-case stride.
HEADLINE_STRIDE = 19

#: pva-sdram dense stride-19 tick rate (cycles/second) recorded in
#: BENCH_sim.json immediately before the hit-schedule precompute layer
#: landed.  Reported next to the measured rate so host drift stays
#: visible; every ``--min-*-speedup`` CI gate holds against rates
#: measured in the same run instead (recorded constants made the gates
#: fail on slower shared runners with nothing actually regressed).
BASELINE_TICK_CYCLES_PER_SECOND = 18099.8

#: pva-sdram dense stride-19 cycles/second recorded in BENCH_sim.json
#: immediately before the structure-of-arrays bank automaton landed —
#: reported for drift visibility, as above.  (ROADMAP.md quotes the
#: same figure as "~38.6k cycles/sec".)
BASELINE_DENSE_CYCLES_PER_SECOND = 38600.0

#: pva-sdram dense stride-19 ``soa_cycles_per_second`` recorded in
#: BENCH_sim.json immediately before the closed-form window backend
#: landed — the recorded denominator the window section reports next to
#: its measured-SoA speedup (the ``--min-window-speedup`` gate holds
#: against the *measured* SoA rate of the same run, so it survives
#: hardware changes; the recorded constant makes drift visible).
BASELINE_SOA_CYCLES_PER_SECOND = 66195.1

#: ``--quick`` workload (CI smoke): two kernels, one alignment.
QUICK_KERNELS = ("copy", "saxpy")


def _assert_same_config(base: SystemParams, params: SystemParams, section: str) -> None:
    """Cross-check: ``params`` must be ``base`` with at most a different
    ``sim_mode`` — every bench section times the same machine."""
    want = base.to_dict()
    got = params.to_dict()
    want.pop("sim_mode")
    got.pop("sim_mode")
    if got != want:
        raise ConfigurationError(
            f"bench section {section!r} ran a different machine config "
            "than the report header — refusing to publish numbers for it"
        )


def _cases(quick: bool):
    kernels = QUICK_KERNELS if quick else EVAL_KERNELS
    alignments = ALIGNMENTS[:1] if quick else ALIGNMENTS
    return [(kernel, alignment) for kernel in kernels for alignment in alignments]


def _profile_section(
    profile_dir: str, section: str, system: str, params: SystemParams, traces: List
) -> None:
    """Write a cProfile top-25-cumulative listing for one extra
    (untimed) pass of a bench section to ``profile_dir``.

    Profiling runs *after* the timed repeats on a separate pass, so the
    published numbers are never measured under instrumentation.
    """
    import cProfile
    import io
    import pstats

    os.makedirs(profile_dir, exist_ok=True)
    profiler = cProfile.Profile()
    profiler.enable()
    for trace in traces:
        build_system(system, params).run(trace)
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(25)
    path = os.path.join(profile_dir, f"{section}-{system}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(stream.getvalue())


def _time_mode(
    system: str,
    params: SystemParams,
    traces: List,
    repeats: int,
    *,
    profile_dir: Optional[str] = None,
    section: str = "",
) -> Dict[str, float]:
    """Run the workload under ``params``; return cycles, best wall time,
    and the summed per-component attribution ledger."""
    cycles = None
    best = None
    attribution: Dict[str, Dict[str, int]] = {}
    for repeat in range(max(1, repeats)):
        total = 0
        started = time.perf_counter()
        results = [build_system(system, params).run(trace) for trace in traces]
        elapsed = time.perf_counter() - started
        for result in results:
            total += result.cycles
            if not result.attribution_consistent():
                raise ConfigurationError(
                    f"{system}: per-component attribution does not sum to "
                    f"the run's cycle count — the kernel ledger is broken"
                )
            if repeat == 0 and result.attribution:
                for name, buckets in result.attribution.items():
                    entry = attribution.setdefault(
                        name, {"busy": 0, "stalled": 0, "idle": 0}
                    )
                    for bucket in entry:
                        entry[bucket] += getattr(buckets, bucket)
        if cycles is None:
            cycles = total
        elif total != cycles:
            raise ConfigurationError(
                f"{system}: nondeterministic cycle count across repeats "
                f"({cycles} vs {total})"
            )
        if best is None or elapsed < best:
            best = elapsed
    if profile_dir:
        _profile_section(profile_dir, section or params.sim_mode, system, params, traces)
    return {"cycles": cycles, "seconds": best, "attribution": attribution}


def run_bench(
    *,
    elements: int = 1024,
    repeats: int = 3,
    quick: bool = False,
    stride: int = HEADLINE_STRIDE,
    systems: Optional[Sequence[str]] = None,
    params: Optional[SystemParams] = None,
    profile: Optional[str] = None,
) -> Dict:
    """Benchmark tick vs skip on the stride-``stride`` grid slice.

    Returns the ``BENCH_sim.json`` document: per-system wall seconds,
    simulated cycles and cycles/second for both run loops, the summed
    per-component busy/stalled/idle attribution of the workload, plus
    the aggregate slice ("grid") totals and the headline ``speedup``.
    Raises :class:`~repro.errors.ConfigurationError` if the two modes
    disagree on any system's total cycle count or attribution ledger,
    or if any run's ledger fails to sum to its cycle count.
    """
    names = tuple(systems) if systems else available_systems()
    unknown = set(names) - set(available_systems())
    if unknown:
        raise ConfigurationError(f"unknown system(s): {sorted(unknown)}")
    cases = _cases(quick)

    # Suspend the environment overrides *before* building any params —
    # a forced global mode must not warp the backend matrix each
    # section claims to time.
    saved_env = os.environ.pop(ENV_TOGGLE, None)
    saved_mode_env = os.environ.pop(ENV_SIM_MODE, None)
    try:
        base = params or SystemParams()
        tick_params = replace(base, sim_mode="tick")
        skip_params = replace(base, sim_mode="precompute")
        for section, section_params in (
            ("tick", tick_params),
            ("skip", skip_params),
        ):
            _assert_same_config(base, section_params, section)
        report: Dict = {
            "benchmark": "tick-vs-skip",
            "stride": stride,
            "elements": elements,
            "repeats": max(1, repeats),
            "quick": quick,
            "kernels": sorted({kernel for kernel, _ in cases}),
            "alignments": sorted({alignment.name for _, alignment in cases}),
            "config": base.to_dict(),
            "config_key": base.config_key(),
            "systems": {},
        }

        tick_total = 0.0
        skip_total = 0.0
        for name in names:
            traces_tick = [
                build_trace(
                    kernel_by_name(kernel),
                    stride=stride,
                    params=tick_params,
                    elements=elements,
                    alignment=alignment,
                )
                for kernel, alignment in cases
            ]
            traces_skip = [
                build_trace(
                    kernel_by_name(kernel),
                    stride=stride,
                    params=skip_params,
                    elements=elements,
                    alignment=alignment,
                )
                for kernel, alignment in cases
            ]
            tick = _time_mode(
                name, tick_params, traces_tick, repeats,
                profile_dir=profile, section="tick",
            )
            skip = _time_mode(
                name, skip_params, traces_skip, repeats,
                profile_dir=profile, section="skip",
            )
            if tick["cycles"] != skip["cycles"]:
                raise ConfigurationError(
                    f"{name}: tick and skip disagree on total cycles "
                    f"({tick['cycles']} vs {skip['cycles']}) — the "
                    "time-skip engine is broken; refusing to benchmark it"
                )
            if tick["attribution"] != skip["attribution"]:
                raise ConfigurationError(
                    f"{name}: tick and skip disagree on the per-component "
                    "attribution ledger — cycle attribution must be "
                    "independent of the run-loop mode"
                )
            tick_total += tick["seconds"]
            skip_total += skip["seconds"]
            report["systems"][name] = {
                "simulated_cycles": tick["cycles"],
                "tick_seconds": round(tick["seconds"], 4),
                "skip_seconds": round(skip["seconds"], 4),
                "tick_cycles_per_second": round(
                    tick["cycles"] / tick["seconds"], 1
                )
                if tick["seconds"] > 0
                else 0.0,
                "skip_cycles_per_second": round(
                    skip["cycles"] / skip["seconds"], 1
                )
                if skip["seconds"] > 0
                else 0.0,
                "speedup": round(tick["seconds"] / skip["seconds"], 3)
                if skip["seconds"] > 0
                else 0.0,
                "attribution": {
                    component: dict(buckets)
                    for component, buckets in sorted(
                        tick["attribution"].items()
                    )
                },
            }
        report["grid"] = {
            "tick_seconds": round(tick_total, 4),
            "skip_seconds": round(skip_total, 4),
        }
        report["speedup"] = (
            round(tick_total / skip_total, 3) if skip_total > 0 else 0.0
        )

        # Secondary scenario: a finite-rate processor (issue_interval)
        # leaves real idle gaps between commands — the regime next-event
        # skipping exists for.  The dense slice above is bus-limited
        # (events on most cycles), so its ratio is Amdahl-capped; here
        # tick cost grows with simulated cycles while skip cost stays
        # proportional to events.
        sparse_interval = 256
        sparse_cases = _cases(True)  # the quick kernels x one alignment
        sparse_tick = 0.0
        sparse_skip = 0.0
        sparse_cycles = 0
        for name in ("pva-sdram", "pva-sram"):
            if name not in names:
                continue
            s_tick_params = replace(tick_params, issue_interval=sparse_interval)
            s_skip_params = replace(skip_params, issue_interval=sparse_interval)
            traces = [
                build_trace(
                    kernel_by_name(kernel),
                    stride=stride,
                    params=s_tick_params,
                    elements=elements,
                    alignment=alignment,
                )
                for kernel, alignment in sparse_cases
            ]
            tick = _time_mode(
                name, s_tick_params, traces, repeats,
                profile_dir=profile, section="sparse-tick",
            )
            skip = _time_mode(
                name, s_skip_params, traces, repeats,
                profile_dir=profile, section="sparse-skip",
            )
            if tick["cycles"] != skip["cycles"]:
                raise ConfigurationError(
                    f"{name} (issue_interval={sparse_interval}): tick and "
                    f"skip disagree on total cycles ({tick['cycles']} vs "
                    f"{skip['cycles']})"
                )
            if tick["attribution"] != skip["attribution"]:
                raise ConfigurationError(
                    f"{name} (issue_interval={sparse_interval}): tick and "
                    "skip disagree on the per-component attribution ledger"
                )
            sparse_tick += tick["seconds"]
            sparse_skip += skip["seconds"]
            sparse_cycles += tick["cycles"]
        if sparse_skip > 0:
            report["sparse"] = {
                "issue_interval": sparse_interval,
                "simulated_cycles": sparse_cycles,
                "tick_seconds": round(sparse_tick, 4),
                "skip_seconds": round(sparse_skip, 4),
                "speedup": round(sparse_tick / sparse_skip, 3),
            }

        # Tertiary scenario: the broadcast-time hit-schedule precompute
        # (repro.pva.schedule) against the incremental FirstHit/NextHit
        # expansion it replaces — sim_mode="precompute" vs
        # sim_mode="skip", both on the event-driven loop, on the
        # headline pva-sdram system.  The two paths must agree on
        # cycles *and* the attribution ledger — the precompute layer is
        # a pure representation change.
        if "pva-sdram" in names:
            pre_params = replace(base, sim_mode="precompute")
            inc_params = replace(base, sim_mode="skip")
            _assert_same_config(base, pre_params, "precompute")
            _assert_same_config(base, inc_params, "incremental")
            traces = [
                build_trace(
                    kernel_by_name(kernel),
                    stride=stride,
                    params=pre_params,
                    elements=elements,
                    alignment=alignment,
                )
                for kernel, alignment in cases
            ]
            pre = _time_mode(
                "pva-sdram", pre_params, traces, repeats,
                profile_dir=profile, section="precompute",
            )
            inc = _time_mode(
                "pva-sdram", inc_params, traces, repeats,
                profile_dir=profile, section="incremental",
            )
            if pre["cycles"] != inc["cycles"]:
                raise ConfigurationError(
                    "pva-sdram: precomputed and incremental expansion "
                    f"disagree on total cycles ({pre['cycles']} vs "
                    f"{inc['cycles']}) — the hit-schedule table is broken; "
                    "refusing to benchmark it"
                )
            if pre["attribution"] != inc["attribution"]:
                raise ConfigurationError(
                    "pva-sdram: precomputed and incremental expansion "
                    "disagree on the per-component attribution ledger"
                )
            pre_rate = (
                pre["cycles"] / pre["seconds"] if pre["seconds"] > 0 else 0.0
            )
            report["precompute"] = {
                "system": "pva-sdram",
                "simulated_cycles": pre["cycles"],
                "precompute_seconds": round(pre["seconds"], 4),
                "incremental_seconds": round(inc["seconds"], 4),
                "precompute_cycles_per_second": round(pre_rate, 1),
                "incremental_cycles_per_second": round(
                    inc["cycles"] / inc["seconds"], 1
                )
                if inc["seconds"] > 0
                else 0.0,
                "speedup": round(inc["seconds"] / pre["seconds"], 3)
                if pre["seconds"] > 0
                else 0.0,
                # Recorded vs measured baseline, side by side: the
                # recorded constant (the pre-precompute-era tick rate)
                # keeps host drift visible across runs; the CI gate
                # (``--min-precompute-speedup``) holds against the
                # same-run ``speedup`` instead, so it gates the
                # algorithmic win rather than runner speed.
                "baseline_tick_cycles_per_second": (
                    BASELINE_TICK_CYCLES_PER_SECOND
                ),
                "measured_incremental_cycles_per_second": round(
                    inc["cycles"] / inc["seconds"], 1
                )
                if inc["seconds"] > 0
                else 0.0,
                "speedup_vs_baseline": round(
                    pre_rate / BASELINE_TICK_CYCLES_PER_SECOND, 3
                ),
            }

        # Quaternary scenario: the structure-of-arrays bank automaton
        # (sim_mode="soa") against the same dense slice.  The main
        # section's pva-sdram entry already cross-checked tick against
        # skip; here the SoA run must reproduce the *tick* loop's cycle
        # count and per-component attribution ledger exactly — three
        # backends, one answer.
        if "pva-sdram" in names:
            soa_params = replace(base, sim_mode="soa")
            _assert_same_config(base, soa_params, "soa")
            traces = [
                build_trace(
                    kernel_by_name(kernel),
                    stride=stride,
                    params=soa_params,
                    elements=elements,
                    alignment=alignment,
                )
                for kernel, alignment in cases
            ]
            soa = _time_mode(
                "pva-sdram", soa_params, traces, repeats,
                profile_dir=profile, section="soa",
            )
            dense = report["systems"]["pva-sdram"]
            if soa["cycles"] != dense["simulated_cycles"]:
                raise ConfigurationError(
                    "pva-sdram: sim_mode='soa' disagrees with the tick "
                    f"loop on total cycles ({soa['cycles']} vs "
                    f"{dense['simulated_cycles']}) — the bank automaton "
                    "is broken; refusing to benchmark it"
                )
            if soa["attribution"] != dense["attribution"]:
                raise ConfigurationError(
                    "pva-sdram: sim_mode='soa' disagrees with the tick "
                    "loop on the per-component attribution ledger"
                )
            soa_rate = (
                soa["cycles"] / soa["seconds"] if soa["seconds"] > 0 else 0.0
            )
            measured_pre = dense["skip_cycles_per_second"]
            report["soa"] = {
                "system": "pva-sdram",
                "simulated_cycles": soa["cycles"],
                "soa_seconds": round(soa["seconds"], 4),
                "soa_cycles_per_second": round(soa_rate, 1),
                # Recorded vs measured baseline, as in the precompute
                # section: the recorded dense rate keeps host drift
                # visible; the CI gate (``--min-soa-speedup``) holds
                # against the measured precompute rate of the same run
                # (the dense slice's skip timing).
                "baseline_recorded_cycles_per_second": (
                    BASELINE_DENSE_CYCLES_PER_SECOND
                ),
                "baseline_measured_cycles_per_second": measured_pre,
                "speedup_vs_recorded_baseline": round(
                    soa_rate / BASELINE_DENSE_CYCLES_PER_SECOND, 3
                ),
                "speedup_vs_measured_precompute": round(
                    soa_rate / measured_pre, 3
                )
                if measured_pre > 0
                else 0.0,
                "attribution": {
                    component: dict(buckets)
                    for component, buckets in sorted(
                        soa["attribution"].items()
                    )
                },
            }

        # Quinary scenario: the closed-form window backend
        # (sim_mode="window") against the same dense slice.  Like the
        # SoA section it must reproduce the tick loop's cycle count and
        # attribution ledger exactly; its headline figure is the
        # speedup over the *measured* SoA rate of this very run (the
        # backend it replaces at the top of the ladder), with the
        # recorded pre-window SoA rate published beside it.
        if "pva-sdram" in names and "soa" in report:
            window_params = replace(base, sim_mode="window")
            _assert_same_config(base, window_params, "window")
            traces = [
                build_trace(
                    kernel_by_name(kernel),
                    stride=stride,
                    params=window_params,
                    elements=elements,
                    alignment=alignment,
                )
                for kernel, alignment in cases
            ]
            window = _time_mode(
                "pva-sdram", window_params, traces, repeats,
                profile_dir=profile, section="window",
            )
            dense = report["systems"]["pva-sdram"]
            if window["cycles"] != dense["simulated_cycles"]:
                raise ConfigurationError(
                    "pva-sdram: sim_mode='window' disagrees with the tick "
                    f"loop on total cycles ({window['cycles']} vs "
                    f"{dense['simulated_cycles']}) — the closed-form "
                    "resolution is broken; refusing to benchmark it"
                )
            if window["attribution"] != dense["attribution"]:
                raise ConfigurationError(
                    "pva-sdram: sim_mode='window' disagrees with the tick "
                    "loop on the per-component attribution ledger"
                )
            window_rate = (
                window["cycles"] / window["seconds"]
                if window["seconds"] > 0
                else 0.0
            )
            measured_soa = report["soa"]["soa_cycles_per_second"]
            report["window"] = {
                "system": "pva-sdram",
                "simulated_cycles": window["cycles"],
                "window_seconds": round(window["seconds"], 4),
                "window_cycles_per_second": round(window_rate, 1),
                # Recorded vs measured, as in the other sections: the
                # recorded constant is the pre-window SoA rate frozen
                # from BENCH_sim.json; the measured denominator is the
                # SoA backend timed moments ago in this same run, which
                # is what the CI gate holds the speedup against.
                "baseline_recorded_soa_cycles_per_second": (
                    BASELINE_SOA_CYCLES_PER_SECOND
                ),
                "baseline_measured_soa_cycles_per_second": measured_soa,
                "speedup_vs_recorded_soa": round(
                    window_rate / BASELINE_SOA_CYCLES_PER_SECOND, 3
                ),
                "speedup_vs_measured_soa": round(
                    window_rate / measured_soa, 3
                )
                if measured_soa > 0
                else 0.0,
                "attribution": {
                    component: dict(buckets)
                    for component, buckets in sorted(
                        window["attribution"].items()
                    )
                },
            }
        return report
    finally:
        if saved_env is not None:
            os.environ[ENV_TOGGLE] = saved_env
        if saved_mode_env is not None:
            os.environ[ENV_SIM_MODE] = saved_mode_env


def format_bench(report: Dict) -> str:
    """Render a benchmark report as the CLI's result table."""
    from repro.experiments.report import format_table

    rows = []
    for name, entry in report["systems"].items():
        rows.append(
            (
                name,
                entry["simulated_cycles"],
                f"{entry['tick_seconds']:.2f}",
                f"{entry['skip_seconds']:.2f}",
                f"{entry['skip_cycles_per_second'] / 1000.0:.0f}k",
                f"{entry['speedup']:.2f}x",
            )
        )
    table = format_table(
        (
            "system",
            "sim cycles",
            "tick s",
            "skip s",
            "skip cyc/s",
            "speedup",
        ),
        rows,
    )
    summary = (
        f"stride-{report['stride']} slice ({report['elements']} elements, "
        f"best of {report['repeats']}): "
        f"tick {report['grid']['tick_seconds']:.2f}s, "
        f"skip {report['grid']['skip_seconds']:.2f}s — "
        f"speedup {report['speedup']:.2f}x"
    )
    sparse = report.get("sparse")
    if sparse:
        summary += (
            f"\nthrottled front end (issue_interval="
            f"{sparse['issue_interval']}): "
            f"tick {sparse['tick_seconds']:.2f}s, "
            f"skip {sparse['skip_seconds']:.2f}s — "
            f"speedup {sparse['speedup']:.2f}x"
        )
    pre = report.get("precompute")
    if pre:
        summary += (
            f"\nhit-schedule precompute ({pre['system']}, skip loop): "
            f"precomputed {pre['precompute_seconds']:.2f}s "
            f"({pre['precompute_cycles_per_second'] / 1000.0:.0f}k cyc/s), "
            f"incremental {pre['incremental_seconds']:.2f}s — "
            f"speedup {pre['speedup']:.2f}x vs incremental, "
            f"{pre['speedup_vs_baseline']:.2f}x vs recorded tick baseline "
            f"({pre['baseline_tick_cycles_per_second'] / 1000.0:.1f}k "
            f"recorded, "
            f"{pre['measured_incremental_cycles_per_second'] / 1000.0:.1f}k "
            f"measured incremental)"
        )
    soa = report.get("soa")
    if soa:
        summary += (
            f"\nSoA bank automaton ({soa['system']}): "
            f"{soa['soa_seconds']:.2f}s "
            f"({soa['soa_cycles_per_second'] / 1000.0:.0f}k cyc/s) — "
            f"{soa['speedup_vs_recorded_baseline']:.2f}x vs recorded "
            f"baseline "
            f"({soa['baseline_recorded_cycles_per_second'] / 1000.0:.1f}k "
            f"recorded, "
            f"{soa['baseline_measured_cycles_per_second'] / 1000.0:.1f}k "
            f"measured precompute), "
            f"{soa['speedup_vs_measured_precompute']:.2f}x vs measured "
            f"precompute"
        )
    window = report.get("window")
    if window:
        summary += (
            f"\nclosed-form window backend ({window['system']}): "
            f"{window['window_seconds']:.2f}s "
            f"({window['window_cycles_per_second'] / 1000.0:.0f}k cyc/s) — "
            f"{window['speedup_vs_measured_soa']:.2f}x vs measured SoA "
            f"({window['baseline_measured_soa_cycles_per_second'] / 1000.0:.1f}k"
            f" measured, "
            f"{window['baseline_recorded_soa_cycles_per_second'] / 1000.0:.1f}k"
            f" recorded), "
            f"{window['speedup_vs_recorded_soa']:.2f}x vs recorded SoA"
        )
    return f"{table}\n{summary}"


def history_record(report: Dict) -> Dict:
    """The one-line ``BENCH_history.jsonl`` record for a bench report:
    the headline rates and speedups, small enough to append forever."""
    record: Dict = {
        "quick": report["quick"],
        "elements": report["elements"],
        "repeats": report["repeats"],
        "stride": report["stride"],
        "config_key": report["config_key"],
        "speedup": report["speedup"],
    }
    dense = report["systems"].get("pva-sdram")
    if dense:
        record["tick_cycles_per_second"] = dense["tick_cycles_per_second"]
        record["skip_cycles_per_second"] = dense["skip_cycles_per_second"]
    pre = report.get("precompute")
    if pre:
        record["precompute_cycles_per_second"] = pre[
            "precompute_cycles_per_second"
        ]
    soa = report.get("soa")
    if soa:
        record["soa_cycles_per_second"] = soa["soa_cycles_per_second"]
    window = report.get("window")
    if window:
        record["window_cycles_per_second"] = window[
            "window_cycles_per_second"
        ]
        record["window_speedup_vs_measured_soa"] = window[
            "speedup_vs_measured_soa"
        ]
    return record


def main(args: argparse.Namespace) -> int:
    """``python -m repro bench`` entry point (invoked from the CLI)."""
    try:
        report = run_bench(
            elements=args.elements,
            repeats=args.repeats,
            quick=args.quick,
            systems=tuple(args.system) if args.system else None,
            profile=getattr(args, "profile", None) or None,
        )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_bench(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
        # One appended line per published run; suppressed alongside the
        # report itself (--out '') so test invocations never touch the
        # tracked history, and individually via --history ''.
        history = getattr(args, "history", "BENCH_history.jsonl")
        if history:
            record = history_record(report)
            record["date"] = time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            )
            with open(history, "a", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
                handle.write("\n")
            print(f"appended {history}", file=sys.stderr)
    if args.min_speedup is not None and report["speedup"] < args.min_speedup:
        print(
            f"error: speedup {report['speedup']:.3f}x below required "
            f"{args.min_speedup:.3f}x",
            file=sys.stderr,
        )
        return 1
    min_pre = getattr(args, "min_precompute_speedup", None)
    if min_pre is not None:
        pre = report.get("precompute")
        if pre is None:
            print(
                "error: --min-precompute-speedup given but the workload "
                "did not include the pva-sdram precompute section",
                file=sys.stderr,
            )
            return 1
        if pre["speedup"] < min_pre:
            print(
                f"error: precompute tick rate "
                f"{pre['precompute_cycles_per_second']:.0f} cyc/s is only "
                f"{pre['speedup']:.3f}x the incremental rate measured in "
                f"the same run; required {min_pre:.3f}x",
                file=sys.stderr,
            )
            return 1
    min_soa = getattr(args, "min_soa_speedup", None)
    if min_soa is not None:
        soa = report.get("soa")
        if soa is None:
            print(
                "error: --min-soa-speedup given but the workload did not "
                "include the pva-sdram SoA section",
                file=sys.stderr,
            )
            return 1
        if soa["speedup_vs_measured_precompute"] < min_soa:
            print(
                f"error: SoA rate {soa['soa_cycles_per_second']:.0f} cyc/s "
                f"is only {soa['speedup_vs_measured_precompute']:.3f}x the "
                f"precompute rate measured in the same run; required "
                f"{min_soa:.3f}x",
                file=sys.stderr,
            )
            return 1
    min_window = getattr(args, "min_window_speedup", None)
    if min_window is not None:
        window = report.get("window")
        if window is None:
            print(
                "error: --min-window-speedup given but the workload did "
                "not include the pva-sdram window section",
                file=sys.stderr,
            )
            return 1
        if window["speedup_vs_measured_soa"] < min_window:
            print(
                f"error: window rate "
                f"{window['window_cycles_per_second']:.0f} cyc/s is only "
                f"{window['speedup_vs_measured_soa']:.3f}x the measured "
                f"SoA rate in the same run; required {min_window:.3f}x",
                file=sys.stderr,
            )
            return 1
    return 0

"""Progress and throughput accounting for the experiment engine.

The engine surfaces its state through a callback interface: pass an
:class:`EngineHooks` subclass (or any object with the same methods) and
it receives one :class:`PointOutcome` per requested point — carrying the
per-point cycle count and whether it came from the cache — plus the
running :class:`EngineMetrics` snapshot (points/sec, cache hit rate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.resilience import PointFailure
    from repro.engine.spec import ExperimentPoint

__all__ = ["PointOutcome", "EngineMetrics", "EngineHooks", "PrintProgress"]


@dataclass(frozen=True)
class PointOutcome:
    """The result of one requested point."""

    index: int  #: position in the submitted batch
    point: "ExperimentPoint"
    cycles: int
    cached: bool  #: served from the on-disk cache
    coalesced: bool = False  #: shared another identical point's execution
    #: Host wall-clock seconds the executing worker spent simulating this
    #: point (shared by coalesced twins; stored value for cache hits;
    #: None for entries written before the field existed).
    sim_seconds: Optional[float] = None
    #: Per-component cycle attribution of the run (component name ->
    #: {"busy", "stalled", "idle"}), as recorded by the simulation
    #: kernel; None for cache entries written before the field existed.
    attribution: Optional[Dict[str, Dict[str, int]]] = None


@dataclass
class EngineMetrics:
    """Running totals across every batch an engine instance has run."""

    points_total: int = 0
    points_done: int = 0
    cache_hits: int = 0
    simulated: int = 0  #: unique simulations actually executed
    coalesced: int = 0  #: points served by an identical in-batch point
    elapsed_seconds: float = 0.0
    jobs: int = 1
    failures: int = 0  #: points that terminally failed (collect mode)
    retries: int = 0  #: re-attempts consumed by the retry policy
    timeouts: int = 0  #: per-point deadline expiries (incl. retried ones)
    degraded: int = 0  #: points run inline after the pool was abandoned
    simulated_cycles: int = 0  #: simulated cycles across unique executions
    sim_seconds: float = 0.0  #: worker wall clock across unique executions
    aborted: int = 0  #: batches stopped early by an abort callback
    # ---- service-level counters (repro.service folds these in so a
    # ---- degrading daemon is observable through the same object) ----
    queue_rejected: int = 0  #: submissions refused by admission control
    journal_replayed: int = 0  #: jobs recovered from the journal at startup
    breaker_trips: int = 0  #: circuit-breaker open transitions
    cache_quarantined: int = 0  #: corrupt cache entries moved aside
    #: Aggregated per-component cycle attribution across unique
    #: executions (component name -> busy/stalled/idle cycle totals).
    component_cycles: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def record_attribution(
        self, attribution: Optional[Dict[str, Dict[str, int]]]
    ) -> None:
        """Fold one execution's attribution ledger into the totals."""
        if not attribution:
            return
        for name, buckets in attribution.items():
            entry = self.component_cycles.setdefault(
                name, {"busy": 0, "stalled": 0, "idle": 0}
            )
            for bucket in ("busy", "stalled", "idle"):
                entry[bucket] += int(buckets.get(bucket, 0))

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of completed points served from the on-disk cache."""
        if self.points_done == 0:
            return 0.0
        return self.cache_hits / self.points_done

    @property
    def points_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.points_done / self.elapsed_seconds

    @property
    def sim_cycles_per_second(self) -> float:
        """Simulated-cycles-per-host-second throughput over the unique
        executions (cache hits and coalesced twins cost no sim time, so
        they are excluded from both numerator and denominator)."""
        if self.sim_seconds <= 0:
            return 0.0
        return self.simulated_cycles / self.sim_seconds

    def summary(self) -> dict:
        return {
            "points": self.points_done,
            "simulated": self.simulated,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "cache_hit_rate": round(self.cache_hit_rate, 3),
            "points_per_second": round(self.points_per_second, 1),
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "jobs": self.jobs,
            "failures": self.failures,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "degraded": self.degraded,
            "simulated_cycles": self.simulated_cycles,
            "sim_seconds": round(self.sim_seconds, 3),
            "sim_cycles_per_second": round(self.sim_cycles_per_second, 1),
            "aborted": self.aborted,
            "queue_rejected": self.queue_rejected,
            "journal_replayed": self.journal_replayed,
            "breaker_trips": self.breaker_trips,
            "cache_quarantined": self.cache_quarantined,
            "component_cycles": {
                name: dict(buckets)
                for name, buckets in sorted(self.component_cycles.items())
            },
        }


class EngineHooks:
    """Callback interface; the default implementation is a no-op.

    Subclass and override what you need — both methods receive the live
    :class:`EngineMetrics`, so a hook can render progress bars, log
    throughput, or assert invariants mid-run.
    """

    def point_done(
        self, outcome: PointOutcome, metrics: EngineMetrics
    ) -> None:
        """Called once per requested point, as its result lands."""

    def point_failed(
        self, failure: "PointFailure", metrics: EngineMetrics
    ) -> None:
        """Called once per point whose execution terminally failed
        (``on_error="collect"`` mode only — in ``"raise"`` mode the
        first failure propagates as an exception instead)."""

    def batch_complete(self, metrics: EngineMetrics) -> None:
        """Called after every :meth:`ExperimentEngine.run` batch."""


class PrintProgress(EngineHooks):
    """A minimal progress hook: one line per batch (and optionally per
    point) through a ``print``-like callable."""

    def __init__(self, emit=print, per_point: bool = False):
        self.emit = emit
        self.per_point = per_point

    def point_done(self, outcome, metrics):
        if self.per_point:
            source = "cache" if outcome.cached else "sim"
            self.emit(
                f"[engine] {outcome.point.describe()}: "
                f"{outcome.cycles} cycles ({source})"
            )

    def point_failed(self, failure, metrics):
        self.emit(f"[engine] FAILED {failure.describe()}")

    def batch_complete(self, metrics):
        failed = (
            f", {metrics.failures} failed" if metrics.failures else ""
        )
        self.emit(
            f"[engine] {metrics.points_done}/{metrics.points_total} points, "
            f"{metrics.simulated} simulated, "
            f"cache hit rate {metrics.cache_hit_rate:.0%}, "
            f"{metrics.points_per_second:.1f} points/s "
            f"({metrics.jobs} job{'s' if metrics.jobs != 1 else ''})"
            f"{failed}"
        )

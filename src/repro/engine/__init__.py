"""The parallel experiment engine (worker pool + result cache + metrics).

The evaluation is a grid of independent, deterministic points — four
memory systems x eight kernels x six strides x five alignments (section
6.2).  This package executes any such batch through one engine:

* :class:`~repro.engine.engine.ExperimentEngine` — submission-ordered
  execution over a ``multiprocessing`` pool (``jobs=N``), with identical
  results at any job count;
* :class:`~repro.engine.cache.ResultCache` — a content-addressed on-disk
  cache keyed by a stable hash of the point spec, its
  :class:`~repro.params.SystemParams` and a code-version salt, so
  repeated figure/ablation runs replay from disk;
* :class:`~repro.engine.metrics.EngineHooks` — progress callbacks
  carrying per-point cycle counts and running points/sec + cache
  hit-rate metrics;
* :mod:`~repro.engine.resilience` — failure capture
  (:class:`PointFailure`), retry with exponential backoff
  (:class:`RetryPolicy`), per-point timeouts, and partial-batch results
  (:class:`BatchResult` from ``on_error="collect"``), so one bad point
  cannot take down a 240-point grid.

Quick start::

    from repro.engine import ExperimentEngine, ExperimentPoint, KernelTraceSpec

    engine = ExperimentEngine(jobs=4, cache_dir=".engine-cache")
    points = [
        ExperimentPoint(
            system="pva-sdram",
            trace=KernelTraceSpec("copy", stride=s, alignment="aligned"),
        )
        for s in (1, 2, 4, 8, 16, 19)
    ]
    cycles = engine.run(points)          # submission order, cached + parallel
    print(engine.metrics.summary())
"""

from repro.engine.cache import ResultCache
from repro.engine.engine import (
    ExperimentEngine,
    execute_point,
    execute_point_timed,
)
from repro.engine.metrics import (
    EngineHooks,
    EngineMetrics,
    PointOutcome,
    PrintProgress,
)
from repro.engine.resilience import (
    BatchResult,
    CircuitBreaker,
    PointFailure,
    RetryPolicy,
)
from repro.engine.spec import (
    CACHE_SCHEMA_VERSION,
    CommandTraceSpec,
    ExperimentPoint,
    KernelTraceSpec,
    TraceSpec,
    build_point_trace,
    canonical,
    default_salt,
    point_key,
)

__all__ = [
    "ExperimentEngine",
    "ResultCache",
    "BatchResult",
    "CircuitBreaker",
    "PointFailure",
    "RetryPolicy",
    "EngineHooks",
    "EngineMetrics",
    "PointOutcome",
    "PrintProgress",
    "ExperimentPoint",
    "KernelTraceSpec",
    "CommandTraceSpec",
    "TraceSpec",
    "CACHE_SCHEMA_VERSION",
    "canonical",
    "default_salt",
    "point_key",
    "build_point_trace",
    "execute_point",
    "execute_point_timed",
]

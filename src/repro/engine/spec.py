"""Experiment-point specifications and content-addressed cache keys.

A point is the unit of work the engine schedules: one memory system, one
command trace, one parameter set.  Points must be

* **picklable** — they cross the process boundary to pool workers;
* **declarative** — the trace is described by data (a kernel recipe or a
  literal command tuple), never by a closure, so two processes given the
  same spec build the identical trace;
* **hashable to a stable key** — :func:`point_key` canonicalizes the
  spec (dataclasses to sorted-key JSON, enums to values) and SHA-256s it
  together with a code-version salt, giving the on-disk result cache its
  content address.  The same spec yields the same key in any process on
  any machine; any parameter change yields a different key.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import List, Tuple, Union

from repro.kernels import alignment_by_name, build_trace, kernel_by_name
from repro.config import CONFIG_SCHEMA_VERSION
from repro.params import SystemParams
from repro.types import ExplicitCommand, VectorCommand

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "KernelTraceSpec",
    "CommandTraceSpec",
    "TraceSpec",
    "ExperimentPoint",
    "default_salt",
    "canonical",
    "point_key",
    "build_point_trace",
]

#: Bump when the simulator's timing semantics or the key layout change:
#: the salt folds this into every key, invalidating stale cache entries.
#: Version 2: SystemParams grew ``precompute`` (canonicalized into every
#: point key) and documents carry ``schema_version``.
#: Version 3: SystemParams grew ``sim_mode`` (the resolved backend label
#: lands in every point key through the params canonicalization) and
#: cached documents record the producing mode.
#: Version 4: the key adopts the canonical ``GenParams.to_dict()``
#: document (:data:`repro.config.CONFIG_SCHEMA_VERSION`) — nested
#: topology/sdram/sram sub-documents, channel/rank geometry and ``sram``
#: timing join the identity; the legacy boolean aliases leave it — and
#: cached documents carry ``config``/``config_key``.
CACHE_SCHEMA_VERSION = CONFIG_SCHEMA_VERSION


@dataclass(frozen=True)
class KernelTraceSpec:
    """A section-6.2 kernel trace, described by its recipe.

    The worker rebuilds the trace with
    :func:`repro.kernels.build_trace`, which is deterministic in these
    four fields plus the point's :class:`SystemParams` (array regions
    depend on the memory geometry).
    """

    kernel: str
    stride: int
    alignment: str = "aligned"
    elements: int = 1024


@dataclass(frozen=True)
class CommandTraceSpec:
    """A literal command tuple (ablations and micro-experiments).

    ``label`` names the trace in progress output; it is part of the cache
    key only through the commands themselves, so relabelling does not
    invalidate results.
    """

    commands: Tuple[Union[VectorCommand, ExplicitCommand], ...]
    label: str = ""


TraceSpec = Union[KernelTraceSpec, CommandTraceSpec]


@dataclass(frozen=True)
class ExperimentPoint:
    """One schedulable unit: (system, trace, params)."""

    system: str
    trace: TraceSpec
    params: SystemParams = field(default_factory=SystemParams)

    def describe(self) -> str:
        """Short human-readable label for progress output."""
        trace = self.trace
        if isinstance(trace, KernelTraceSpec):
            return (
                f"{self.system}:{trace.kernel}"
                f"/s{trace.stride}/{trace.alignment}"
            )
        label = trace.label or f"{len(trace.commands)} commands"
        return f"{self.system}:{label}"


def default_salt() -> str:
    """The code-version salt folded into every cache key."""
    from repro import __version__

    return f"repro-{__version__}/schema-{CACHE_SCHEMA_VERSION}"


def canonical(obj):
    """Reduce a spec object to JSON-serializable primitives, stably.

    Dataclasses become ``{field: value}`` dicts (field order is class
    definition order, but the JSON encoder sorts keys anyway), enums
    become their values, tuples become lists.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in sorted(obj.items())}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} for cache keying"
    )


def point_key(point: ExperimentPoint, salt: str) -> str:
    """Content address of one point's result: SHA-256 over the canonical
    JSON of (salt, system, params, trace)."""
    material = {
        "salt": salt,
        "system": point.system,
        "params": point.params.to_dict(),
        "trace": {
            "kind": type(point.trace).__name__,
            "spec": canonical(point.trace),
        },
    }
    if isinstance(point.trace, CommandTraceSpec):
        # The label is cosmetic; keep it out of the key.
        material["trace"]["spec"].pop("label", None)
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def build_point_trace(point: ExperimentPoint) -> List:
    """Materialize the command trace a point describes (worker side)."""
    trace = point.trace
    if isinstance(trace, KernelTraceSpec):
        return build_trace(
            kernel_by_name(trace.kernel),
            stride=trace.stride,
            params=point.params,
            elements=trace.elements,
            alignment=alignment_by_name(trace.alignment),
        )
    return list(trace.commands)

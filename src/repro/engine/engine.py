"""The parallel experiment engine.

``ExperimentEngine.run`` takes a batch of :class:`ExperimentPoint` specs
and returns their cycle counts **in submission order**, regardless of
how many worker processes execute them — results are keyed by index, so
``jobs=1`` and ``jobs=N`` produce identical output.  Three layers sit
between a submitted point and a simulation:

1. **Result cache** — with a ``cache_dir``, each point's content address
   (:func:`repro.engine.spec.point_key`) is looked up first; warm runs of
   a figure or ablation replay from disk instead of re-simulating.
2. **Coalescing** — identical points inside one batch (the grid runner
   submits alignment-free baselines once per alignment) share a single
   execution.
3. **Worker pool** — remaining unique points fan out over a
   ``multiprocessing`` pool.  Workers rebuild trace and system from the
   spec, so no simulator state crosses the process boundary; the fork
   start method is preferred (cheap, inherits ``sys.path``) with spawn
   as the portable fallback.

On top of these sits the **resilience layer**
(:mod:`repro.engine.resilience`): every unique point is tracked as a
task with its own id, submitted via ``apply_async`` so one stuck point
cannot stall the stream.  A failing point is retried under the engine's
:class:`RetryPolicy` (exponential backoff); a point that outlives the
per-point ``timeout`` — a hung simulation or a killed worker — is
recovered the same way.  Terminal failures either abort the batch
(``on_error="raise"``, the default) or are captured as
:class:`PointFailure` records in the returned :class:`BatchResult`
(``on_error="collect"``), with healthy points unaffected.  If the pool
misbehaves repeatedly the engine abandons it and degrades to inline
execution for the remaining points.

Progress and throughput are surfaced through the
:class:`~repro.engine.metrics.EngineHooks` callback interface.
"""

from __future__ import annotations

import dataclasses
import signal
import time
import traceback
from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.api import build_system
from repro.engine.cache import ResultCache
from repro.engine.metrics import EngineHooks, EngineMetrics, PointOutcome
from repro.engine.resilience import (
    KIND_EXCEPTION,
    KIND_TIMEOUT,
    BatchResult,
    PointFailure,
    RetryPolicy,
)
from repro.engine.spec import (
    ExperimentPoint,
    build_point_trace,
    default_salt,
    point_key,
)
from repro.errors import (
    BatchAbortedError,
    ConfigurationError,
    IncompleteBatchError,
    PointFailedError,
)

__all__ = ["ExperimentEngine", "execute_point", "execute_point_timed"]

#: Idle-poll interval of the pool result loop, seconds.
_POLL_SECONDS = 0.005


def execute_point(point: ExperimentPoint) -> int:
    """Simulate one point and return its cycle count.

    Module-level so it pickles by reference into pool workers; also the
    single-process execution path, keeping both modes byte-identical.
    """
    return execute_point_timed(point)[0]


def execute_point_timed(
    point: ExperimentPoint,
) -> Tuple[int, float, Optional[Dict[str, Dict[str, int]]]]:
    """Simulate one point; return ``(cycles, host_seconds, attribution)``.

    The wall clock covers trace construction plus the simulation proper —
    what a worker actually spends on the point — so the engine can report
    simulated-cycles-per-second throughput.  ``attribution`` is the
    kernel's per-component busy/stalled/idle ledger as plain dicts
    (JSON- and pickle-safe), or None for a system that predates it."""
    started = time.perf_counter()
    trace = build_point_trace(point)
    system = build_system(point.system, point.params)
    result = system.run(trace)
    return (
        result.cycles,
        time.perf_counter() - started,
        result.attribution_summary(),
    )


def _pool_context():
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _init_worker():
    """Pool workers ignore SIGINT: the parent owns interrupt handling
    (terminate + flush + clean re-raise), so ^C prints one traceback
    instead of one per worker.

    SIGTERM is reset to the default disposition: a forked worker
    inherits whatever the parent installed — in the service daemon
    that is asyncio's no-op self-pipe handler — and a worker that
    shrugs off SIGTERM turns ``pool.terminate()`` into a deadlock
    (the parent joins a worker that never exits)."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)


class _Task:
    """Parent-side state of one unique point's execution."""

    __slots__ = (
        "task_id",
        "key",
        "point",
        "attempts",
        "async_result",
        "deadline",
        "not_before",
    )

    def __init__(self, task_id: int, key: str, point: ExperimentPoint):
        self.task_id = task_id
        self.key = key
        self.point = point
        self.attempts = 0  #: executions started so far
        self.async_result = None  #: in-flight AsyncResult, or None
        self.deadline: Optional[float] = None
        self.not_before: float = 0.0  #: backoff gate for the next attempt


#: One streamed execution outcome: exactly one of ``cycles`` / ``failure``
#: is set; ``sim_seconds`` is the executing worker's wall clock for the
#: point and ``attribution`` its per-component cycle ledger (both None on
#: failure); ``error`` carries the original exception object when there
#: is one to re-raise in ``on_error="raise"`` mode.
_Outcome = Tuple[
    str,
    ExperimentPoint,
    Optional[int],
    Optional[float],
    Optional[Dict[str, Dict[str, int]]],
    Optional[PointFailure],
    Optional[BaseException],
]


class ExperimentEngine:
    """Executes experiment-point batches with caching and a worker pool.

    Parameters
    ----------
    jobs:
        Worker processes; 1 (the default) runs inline in this process.
    cache_dir:
        Directory for the content-addressed result cache; None disables
        caching.
    hooks:
        An :class:`EngineHooks` implementation receiving per-point
        outcomes, failures, and batch summaries.
    salt:
        Cache-key salt; defaults to the library version plus the engine
        schema version, so upgrading either invalidates stale entries.
    on_error:
        ``"raise"`` (default) propagates the first terminal point
        failure; ``"collect"`` records failures and returns a
        :class:`BatchResult` with ``None`` cycles at failed indices.
    retry:
        A :class:`RetryPolicy`, or an int shorthand for
        ``RetryPolicy(retries=n)``; None disables retrying.
    timeout:
        Per-point wall-clock budget in seconds for pool execution,
        measured from task submission.  Recovers hung simulations and
        killed workers (whose results never arrive).  None (default)
        waits forever; inline execution ignores it — the simulation
        watchdog (:class:`repro.sim.runner.Watchdog`) is the inline
        containment layer.
    degrade_after:
        Abandon the worker pool and finish the batch inline after this
        many pool incidents (timeouts / lost tasks / submission
        failures) in one batch.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache_dir=None,
        hooks: Optional[EngineHooks] = None,
        salt: Optional[str] = None,
        on_error: str = "raise",
        retry: Union[RetryPolicy, int, None] = None,
        timeout: Optional[float] = None,
        degrade_after: int = 3,
    ):
        self.jobs = max(1, int(jobs))
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.hooks = hooks if hooks is not None else EngineHooks()
        self.salt = salt if salt is not None else default_salt()
        if on_error not in ("raise", "collect"):
            raise ConfigurationError(
                f'on_error must be "raise" or "collect", got {on_error!r}'
            )
        self.on_error = on_error
        if retry is None:
            retry = RetryPolicy()
        elif isinstance(retry, int):
            retry = RetryPolicy(retries=retry)
        self.retry = retry
        if timeout is not None and timeout <= 0:
            raise ConfigurationError(
                f"timeout must be positive or None, got {timeout}"
            )
        self.timeout = timeout
        self.degrade_after = max(1, int(degrade_after))
        self.metrics = EngineMetrics(jobs=self.jobs)

    # ------------------------------------------------------------- #
    # Execution
    # ------------------------------------------------------------- #

    def run(
        self,
        points: Sequence[ExperimentPoint],
        *,
        abort=None,
    ) -> Union[List[int], BatchResult]:
        """Execute a batch; return cycle counts in submission order.

        With ``on_error="raise"`` the return value is a plain
        ``List[int]``; with ``"collect"`` it is a :class:`BatchResult`
        whose sequence view has ``None`` at failed indices and whose
        ``failures`` lists one :class:`PointFailure` per failed point.

        ``abort`` is an optional zero-argument callable polled between
        point completions; once it returns True the engine stops
        submitting work, terminates the pool, harvests any results that
        already finished (caching them), and raises
        :class:`~repro.errors.BatchAbortedError`.  This is the
        cooperative cancellation path the service daemon uses for job
        cancel/deadline — a resubmitted batch resumes from the cache.
        """
        points = list(points)
        metrics = self.metrics
        metrics.points_total += len(points)
        started = time.perf_counter()

        results: List[Optional[int]] = [None] * len(points)
        failures: List[PointFailure] = []
        keys = [point_key(point, self.salt) for point in points]

        # Cache lookups + in-batch coalescing, in submission order.
        #: key -> indices awaiting that key's execution
        waiting: Dict[str, List[int]] = {}
        pending: List[Tuple[str, ExperimentPoint]] = []
        for index, (key, point) in enumerate(zip(keys, points)):
            if key in waiting:
                waiting[key].append(index)
                metrics.coalesced += 1
                continue
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                cycles = int(cached["cycles"])
                results[index] = cycles
                metrics.cache_hits += 1
                metrics.points_done += 1
                stored_seconds = cached.get("sim_seconds")
                stored_attribution = cached.get("attribution")
                self.hooks.point_done(
                    PointOutcome(
                        index,
                        point,
                        cycles,
                        cached=True,
                        sim_seconds=stored_seconds
                        if isinstance(stored_seconds, (int, float))
                        else None,
                        attribution=stored_attribution
                        if isinstance(stored_attribution, dict)
                        else None,
                    ),
                    metrics,
                )
                continue
            waiting[key] = [index]
            pending.append((key, point))

        # Execute the unique misses, streaming outcomes as they land
        # (results are index-keyed, so completion order is irrelevant).
        try:
            for (
                key,
                point,
                cycles,
                seconds,
                attribution,
                failure,
                error,
            ) in self._execute(pending, abort):
                if failure is None:
                    if self.cache is not None:
                        self.cache.put(
                            key,
                            {
                                "cycles": cycles,
                                "sim_seconds": seconds,
                                "attribution": attribution,
                                "sim_mode": point.params.sim_mode,
                                "config": point.params.to_dict(),
                                "config_key": point.params.config_key(),
                                "point": point.describe(),
                            },
                        )
                    indices = waiting.pop(key)
                    metrics.simulated += 1
                    metrics.simulated_cycles += cycles
                    if seconds is not None:
                        metrics.sim_seconds += seconds
                    metrics.record_attribution(attribution)
                    for position, index in enumerate(indices):
                        results[index] = cycles
                        metrics.points_done += 1
                        self.hooks.point_done(
                            PointOutcome(
                                index,
                                points[index],
                                cycles,
                                cached=False,
                                coalesced=position > 0,
                                sim_seconds=seconds,
                                attribution=attribution,
                            ),
                            metrics,
                        )
                    continue
                if self.on_error == "raise":
                    if error is not None:
                        raise error
                    raise PointFailedError(failure.describe())
                for index in waiting.pop(key):
                    record = dataclasses.replace(
                        failure, index=index, point=points[index]
                    )
                    failures.append(record)
                    metrics.failures += 1
                    self.hooks.point_failed(record, metrics)
        finally:
            metrics.elapsed_seconds += time.perf_counter() - started

        failed = {failure.index for failure in failures}
        missing = [
            index
            for index, cycles in enumerate(results)
            if cycles is None and index not in failed
        ]
        if missing:
            raise IncompleteBatchError(
                f"batch finished with {len(missing)} unaccounted "
                f"point(s) (first indices: {missing[:5]}) — engine bug"
            )
        self.hooks.batch_complete(metrics)
        if self.on_error == "collect":
            return BatchResult(results, failures)
        return results  # type: ignore[return-value]

    def _execute(
        self, pending: List[Tuple[str, ExperimentPoint]], abort=None
    ) -> Iterator[_Outcome]:
        """Stream one outcome per unique point, in completion order."""
        if not pending:
            return
        if self.jobs == 1 or len(pending) == 1:
            for key, point in pending:
                if abort is not None and abort():
                    self._raise_aborted()
                yield self._run_inline(key, point)
            return
        yield from self._execute_pool(pending, abort)

    def _raise_aborted(self):
        self.metrics.aborted += 1
        raise BatchAbortedError(
            "batch aborted by its abort callback; completed points "
            "are already in the result cache"
        )

    # ------------------------------------------------------------- #
    # Inline execution (jobs=1 and the degraded fallback)
    # ------------------------------------------------------------- #

    def _run_inline(
        self, key: str, point: ExperimentPoint, attempts: int = 0
    ) -> _Outcome:
        """Execute one point in this process, honouring the retry
        policy.  ``attempts`` carries over executions already consumed
        in the pool when the engine degrades mid-batch."""
        while True:
            attempts += 1
            try:
                cycles, seconds, attribution = execute_point_timed(point)
                return key, point, cycles, seconds, attribution, None, None
            except Exception as error:
                if self.retry.should_retry(attempts):
                    self.metrics.retries += 1
                    delay = self.retry.delay(attempts)
                    if delay:
                        time.sleep(delay)
                    continue
                failure = self._failure_from(point, error, attempts)
                return key, point, None, None, None, failure, error

    # ------------------------------------------------------------- #
    # Pool execution
    # ------------------------------------------------------------- #

    def _execute_pool(
        self, pending: List[Tuple[str, ExperimentPoint]], abort=None
    ) -> Iterator[_Outcome]:
        context = _pool_context()
        workers = min(self.jobs, len(pending))
        pool = context.Pool(processes=workers, initializer=_init_worker)
        queue = deque(
            _Task(task_id, key, point)
            for task_id, (key, point) in enumerate(pending)
        )
        live: Dict[int, _Task] = {}  #: task_id -> in-flight or backing off
        incidents = 0  #: pool-level faults seen this batch
        try:
            while queue or live:
                if abort is not None and abort():
                    # Cooperative cancellation: keep what already
                    # finished, drop the rest, and signal the caller.
                    pool.terminate()
                    yield from self._harvest_finished(live)
                    self._raise_aborted()
                if incidents >= self.degrade_after:
                    # The pool keeps misbehaving (stuck or dying
                    # workers); finish the batch inline where at least
                    # the simulation watchdog contains faults.
                    pool.terminate()
                    remaining = list(live.values()) + list(queue)
                    live.clear()
                    queue.clear()
                    for task in remaining:
                        self.metrics.degraded += 1
                        yield self._run_inline(
                            task.key, task.point, attempts=task.attempts
                        )
                    return

                progressed = self._fill_pool(pool, queue, live, workers)
                now = time.monotonic()
                for task_id in list(live):
                    task = live[task_id]
                    if task.async_result is None:
                        # Backing off before a retry.
                        if now >= task.not_before:
                            if not self._submit(pool, task):
                                incidents = self.degrade_after
                                break
                            progressed = True
                        continue
                    if task.async_result.ready():
                        progressed = True
                        del live[task_id]
                        try:
                            cycles, seconds, attribution = (
                                task.async_result.get()
                            )
                        except Exception as error:
                            if self.retry.should_retry(task.attempts):
                                self.metrics.retries += 1
                                task.async_result = None
                                task.not_before = now + self.retry.delay(
                                    task.attempts
                                )
                                live[task_id] = task
                                continue
                            yield (
                                task.key,
                                task.point,
                                None,
                                None,
                                None,
                                self._failure_from(
                                    task.point, error, task.attempts
                                ),
                                error,
                            )
                            continue
                        yield (
                            task.key,
                            task.point,
                            cycles,
                            seconds,
                            attribution,
                            None,
                            None,
                        )
                    elif task.deadline is not None and now > task.deadline:
                        # Hung simulation or killed worker: its result
                        # will never arrive (a late one is discarded).
                        progressed = True
                        self.metrics.timeouts += 1
                        incidents += 1
                        del live[task_id]
                        if self.retry.should_retry(
                            task.attempts, timeout=True
                        ):
                            self.metrics.retries += 1
                            task.async_result = None
                            task.not_before = now + self.retry.delay(
                                task.attempts
                            )
                            live[task_id] = task
                            continue
                        yield (
                            task.key,
                            task.point,
                            None,
                            None,
                            None,
                            self._timeout_failure(task),
                            None,
                        )
                if not progressed:
                    time.sleep(_POLL_SECONDS)
        except KeyboardInterrupt:
            # Stop the workers, then flush every already-finished
            # result so the cache keeps the completed work, and
            # re-raise a single clean interrupt.
            pool.terminate()
            yield from self._harvest_finished(live)
            raise
        finally:
            pool.terminate()
            pool.join()
            # Worker teardown: drop the process-wide simulation memos
            # (PLA tables, hit schedules, SoA broadcast tables) the
            # batch grew in this parent process — sweeps touch many
            # geometries and vectors, and nothing between batches needs
            # the warm entries.
            from repro.api import clear_caches

            clear_caches()

    @staticmethod
    def _harvest_finished(live: Dict[int, "_Task"]) -> Iterator[_Outcome]:
        """Yield every live task whose result already landed, so an
        interrupted or aborted batch keeps its completed work."""
        for task in live.values():
            ready = task.async_result
            if ready is None or not ready.ready():
                continue
            try:
                cycles, seconds, attribution = ready.get(0)
            except Exception:
                continue
            yield (
                task.key,
                task.point,
                cycles,
                seconds,
                attribution,
                None,
                None,
            )

    def _fill_pool(
        self,
        pool,
        queue: deque,
        live: Dict[int, "_Task"],
        workers: int,
    ) -> bool:
        """Keep at most ``2 * workers`` tasks outstanding.

        Lazy submission keeps the per-point ``timeout`` honest: a
        deadline starts at submission, so queueing every point up front
        would charge tail points for the whole batch's runtime.
        """
        progressed = False
        in_flight = sum(
            1 for task in live.values() if task.async_result is not None
        )
        while queue and in_flight < 2 * workers:
            task = queue.popleft()
            if not self._submit(pool, task):
                queue.appendleft(task)
                return progressed
            live[task.task_id] = task
            in_flight += 1
            progressed = True
        return progressed

    def _submit(self, pool, task: "_Task") -> bool:
        """Start one attempt of ``task``; False if the pool is broken."""
        try:
            async_result = pool.apply_async(
                execute_point_timed, (task.point,)
            )
        except Exception:
            return False
        task.attempts += 1
        task.async_result = async_result
        task.deadline = (
            time.monotonic() + self.timeout
            if self.timeout is not None
            else None
        )
        return True

    # ------------------------------------------------------------- #
    # Failure records
    # ------------------------------------------------------------- #

    @staticmethod
    def _failure_from(
        point: ExperimentPoint, error: BaseException, attempts: int
    ) -> PointFailure:
        return PointFailure(
            index=-1,
            point=point,
            error_type=type(error).__name__,
            message=str(error),
            traceback="".join(
                traceback.format_exception(
                    type(error), error, error.__traceback__
                )
            ),
            attempts=attempts,
            kind=KIND_EXCEPTION,
        )

    def _timeout_failure(self, task: "_Task") -> PointFailure:
        return PointFailure(
            index=-1,
            point=task.point,
            error_type="TimeoutError",
            message=(
                f"point exceeded its {self.timeout}s deadline — "
                "hung simulation or killed worker"
            ),
            traceback="",
            attempts=task.attempts,
            kind=KIND_TIMEOUT,
        )

    # ------------------------------------------------------------- #
    # Convenience
    # ------------------------------------------------------------- #

    def run_one(self, point: ExperimentPoint) -> Optional[int]:
        """Execute a single point (through cache and hooks).

        In ``on_error="collect"`` mode a failed point yields None; check
        the batch via :meth:`run` for the failure record.
        """
        return self.run([point])[0]

    def key_of(self, point: ExperimentPoint) -> str:
        """The content address this engine uses for ``point``."""
        return point_key(point, self.salt)

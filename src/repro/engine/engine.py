"""The parallel experiment engine.

``ExperimentEngine.run`` takes a batch of :class:`ExperimentPoint` specs
and returns their cycle counts **in submission order**, regardless of
how many worker processes execute them — results are keyed by index, so
``jobs=1`` and ``jobs=N`` produce identical output.  Three layers sit
between a submitted point and a simulation:

1. **Result cache** — with a ``cache_dir``, each point's content address
   (:func:`repro.engine.spec.point_key`) is looked up first; warm runs of
   a figure or ablation replay from disk instead of re-simulating.
2. **Coalescing** — identical points inside one batch (the grid runner
   submits alignment-free baselines once per alignment) share a single
   execution.
3. **Worker pool** — remaining unique points fan out over a
   ``multiprocessing`` pool.  Workers rebuild trace and system from the
   spec, so no simulator state crosses the process boundary; the fork
   start method is preferred (cheap, inherits ``sys.path``) with spawn
   as the portable fallback.

Progress and throughput are surfaced through the
:class:`~repro.engine.metrics.EngineHooks` callback interface.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.api import build_system
from repro.engine.cache import ResultCache
from repro.engine.metrics import EngineHooks, EngineMetrics, PointOutcome
from repro.engine.spec import (
    ExperimentPoint,
    build_point_trace,
    default_salt,
    point_key,
)

__all__ = ["ExperimentEngine", "execute_point"]


def execute_point(point: ExperimentPoint) -> int:
    """Simulate one point and return its cycle count.

    Module-level so it pickles by reference into pool workers; also the
    single-process execution path, keeping both modes byte-identical.
    """
    trace = build_point_trace(point)
    system = build_system(point.system, point.params)
    return system.run(trace).cycles


def _pool_context():
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class ExperimentEngine:
    """Executes experiment-point batches with caching and a worker pool.

    Parameters
    ----------
    jobs:
        Worker processes; 1 (the default) runs inline in this process.
    cache_dir:
        Directory for the content-addressed result cache; None disables
        caching.
    hooks:
        An :class:`EngineHooks` implementation receiving per-point
        outcomes and batch summaries.
    salt:
        Cache-key salt; defaults to the library version plus the engine
        schema version, so upgrading either invalidates stale entries.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache_dir=None,
        hooks: Optional[EngineHooks] = None,
        salt: Optional[str] = None,
    ):
        self.jobs = max(1, int(jobs))
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.hooks = hooks if hooks is not None else EngineHooks()
        self.salt = salt if salt is not None else default_salt()
        self.metrics = EngineMetrics(jobs=self.jobs)

    # ------------------------------------------------------------- #
    # Execution
    # ------------------------------------------------------------- #

    def run(self, points: Sequence[ExperimentPoint]) -> List[int]:
        """Execute a batch; return cycle counts in submission order."""
        points = list(points)
        metrics = self.metrics
        metrics.points_total += len(points)
        started = time.perf_counter()

        results: List[Optional[int]] = [None] * len(points)
        keys = [point_key(point, self.salt) for point in points]

        # Cache lookups + in-batch coalescing, in submission order.
        #: key -> indices awaiting that key's execution
        waiting: Dict[str, List[int]] = {}
        pending: List[Tuple[str, ExperimentPoint]] = []
        for index, (key, point) in enumerate(zip(keys, points)):
            if key in waiting:
                waiting[key].append(index)
                metrics.coalesced += 1
                continue
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                cycles = int(cached["cycles"])
                results[index] = cycles
                metrics.cache_hits += 1
                metrics.points_done += 1
                self.hooks.point_done(
                    PointOutcome(index, point, cycles, cached=True), metrics
                )
                continue
            waiting[key] = [index]
            pending.append((key, point))

        # Execute the unique misses, streaming results in a fixed order.
        for key, point, cycles in self._execute(pending):
            if self.cache is not None:
                self.cache.put(
                    key, {"cycles": cycles, "point": point.describe()}
                )
            indices = waiting.pop(key)
            metrics.simulated += 1
            for position, index in enumerate(indices):
                results[index] = cycles
                metrics.points_done += 1
                self.hooks.point_done(
                    PointOutcome(
                        index,
                        points[index],
                        cycles,
                        cached=False,
                        coalesced=position > 0,
                    ),
                    metrics,
                )

        metrics.elapsed_seconds += time.perf_counter() - started
        self.hooks.batch_complete(metrics)
        assert all(cycles is not None for cycles in results)
        return results  # type: ignore[return-value]

    def _execute(self, pending):
        """Yield ``(key, point, cycles)`` for unique points, in
        first-submission order whatever the job count."""
        if not pending:
            return
        if self.jobs == 1 or len(pending) == 1:
            for key, point in pending:
                yield key, point, execute_point(point)
            return
        context = _pool_context()
        workers = min(self.jobs, len(pending))
        chunksize = max(1, len(pending) // (workers * 4))
        with context.Pool(processes=workers) as pool:
            cycle_stream = pool.imap(
                execute_point,
                [point for _, point in pending],
                chunksize=chunksize,
            )
            for (key, point), cycles in zip(pending, cycle_stream):
                yield key, point, cycles

    # ------------------------------------------------------------- #
    # Convenience
    # ------------------------------------------------------------- #

    def run_one(self, point: ExperimentPoint) -> int:
        """Execute a single point (through cache and hooks)."""
        return self.run([point])[0]

    def key_of(self, point: ExperimentPoint) -> str:
        """The content address this engine uses for ``point``."""
        return point_key(point, self.salt)

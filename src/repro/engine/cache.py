"""Content-addressed on-disk result cache.

Layout: ``<root>/<key[:2]>/<key>.json``, one JSON document per executed
point holding the measured cycle count, the worker's wall clock, the
per-component cycle-attribution ledger, and a human-readable point
description for debugging.  Older entries without the newer fields stay
readable — consumers treat the extras as optional.  The two-character
fan-out keeps directories small on full-evaluation caches (hundreds of
entries).

Writes are atomic (temp file + ``os.replace``), so a cache directory
shared by concurrent writers — pool workers, parallel engine runs, the
service daemon and its chaos tests — never serves a torn entry and
never interleaves two writers' bytes.  Corrupt or unreadable entries
are treated as misses and **quarantined**: moved aside into
``<root>/quarantine/`` (preserving the evidence for debugging) rather
than deleted or re-served, so a vandalized entry costs one recompute
and nothing else.  Documents are
validated on both sides of the disk: :meth:`ResultCache.put` rejects
records without a non-negative integer ``cycles``
(:class:`~repro.errors.CacheIntegrityError`) and stamps each stored
document with :data:`SCHEMA_VERSION`; :meth:`ResultCache.get` treats
invalid records and stale schema stamps — e.g. written by a corruptor
or an older tool — as misses, so format changes cause a recompute,
never a misread.  Maintenance paths (``__len__``, ``clear``) skip stray files
(editor droppings, orphaned temp files), so a polluted directory cannot
crash them.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from repro.errors import CacheIntegrityError

__all__ = ["ResultCache", "SCHEMA_VERSION"]

#: Document-format version stamped into every stored entry.  Bumped when
#: the stored fields change meaning (version 2: point keys canonicalize
#: the ``precompute`` system parameter; version 3: keys canonicalize the
#: resolved ``sim_mode`` label and documents record the producing mode).
#: Entries stamped differently — or not at all — are recomputed rather
#: than reinterpreted, even if a key collision ever served one across
#: versions.  Version 4: keys and documents adopt the canonical
#: ``GenParams.to_dict()`` config document (channel/rank topology and
#: ``sram`` timing join the identity) and documents carry
#: ``config``/``config_key``.  Version 5: ``sim_mode="window"`` joins
#: the ladder — documents record the producing mode, so widening the
#: enum invalidates stored entries.
SCHEMA_VERSION = 5


def _valid_document(document) -> bool:
    """A stored result must carry a non-negative integer cycle count
    (bools are ints in Python; they are not cycle counts)."""
    return (
        isinstance(document, dict)
        and isinstance(document.get("cycles"), int)
        and not isinstance(document.get("cycles"), bool)
        and document["cycles"] >= 0
    )


class ResultCache:
    """A directory of content-addressed experiment results."""

    #: Subdirectory corrupt entries are moved into by :meth:`get`.
    QUARANTINE_DIR = "quarantine"

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.quarantined = 0  #: corrupt entries moved aside by get()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _quarantine(self, path: Path) -> None:
        """Move an unreadable entry aside instead of serving or
        deleting it.  Best-effort: a concurrent reader may quarantine
        the same entry first, and losing that race is fine — the entry
        is gone from the lookup path either way."""
        target_dir = self.root / self.QUARANTINE_DIR
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / f"{path.name}.quarantined")
        except OSError:
            try:  # fall back to plain removal on exotic filesystems
                path.unlink()
            except OSError:
                pass
        self.quarantined += 1

    def get(self, key: str) -> Optional[Dict]:
        """The stored document for ``key``, or None on a miss.

        Never raises on a bad entry: torn JSON, wrong-shape documents
        and stale schema stamps are quarantined and reported as misses,
        so one corrupt file costs one recompute — not a crashed batch.
        """
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                document = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path)
            return None
        if not _valid_document(document):
            self._quarantine(path)
            return None
        if document.get("schema_version") != SCHEMA_VERSION:
            return None  # stale format: recompute, don't misread
        return document

    def put(self, key: str, document: Dict) -> None:
        """Atomically store ``document`` under ``key``.

        Raises :class:`CacheIntegrityError` unless the document carries
        a non-negative integer ``cycles`` — garbage must not enter the
        cache in the first place.
        """
        if not _valid_document(document):
            raise CacheIntegrityError(
                "cache documents require a non-negative integer 'cycles' "
                f"field, got {document!r:.120}"
            )
        document = {**document, "schema_version": SCHEMA_VERSION}
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, sort_keys=True)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def _entries(self) -> Iterator[Path]:
        """Entry files only: ``<2-hex>/<key>.json`` with a hex-prefixed
        name.  Orphaned ``.tmp-*`` files, editor droppings and other
        strays in a polluted directory are not entries."""
        for path in self.root.glob("*/*.json"):
            if path.name.startswith(".") or not path.is_file():
                continue
            if not path.name.startswith(path.parent.name):
                continue
            yield path

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def clear(self) -> int:
        """Delete every entry; return the number removed.

        Only entry files are touched; stray files are left alone so a
        mis-pointed cache directory cannot lose unrelated data.
        """
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

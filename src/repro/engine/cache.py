"""Content-addressed on-disk result cache.

Layout: ``<root>/<key[:2]>/<key>.json``, one JSON document per executed
point holding the measured cycle count (plus a human-readable point
description for debugging).  The two-character fan-out keeps directories
small on full-evaluation caches (hundreds of entries).

Writes are atomic (temp file + ``os.replace``), so a cache directory
shared by concurrent runs never serves a torn entry; corrupt or
unreadable entries are treated as misses and removed.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

__all__ = ["ResultCache"]


class ResultCache:
    """A directory of content-addressed experiment results."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict]:
        """The stored document for ``key``, or None on a miss."""
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                document = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            # A torn or corrupt entry: drop it and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if not isinstance(document, dict) or "cycles" not in document:
            return None
        return document

    def put(self, key: str, document: Dict) -> None:
        """Atomically store ``document`` under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, sort_keys=True)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; return the number removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

"""Failure capture, retry policy, and batch results for the engine.

A 240-point figure grid is a long multiprocess batch; before this layer
existed, one raising point aborted the whole run and a hung worker
blocked it forever.  The types here make failure a *value*:

* :class:`RetryPolicy` — how many times to re-attempt a failed point and
  how long to back off between attempts (exponential, deterministic);
* :class:`PointFailure` — the record of one point's terminal failure
  (exception type, message, traceback text, attempt count, kind);
* :class:`BatchResult` — what :meth:`ExperimentEngine.run` returns in
  ``on_error="collect"`` mode: a list-like of per-point cycle counts
  with ``None`` holes where points failed, plus the ordered failure
  records, so grid renderers can mark failed cells and keep going.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.errors import ConfigurationError, PointFailedError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.spec import ExperimentPoint

__all__ = ["RetryPolicy", "PointFailure", "BatchResult", "CircuitBreaker"]

#: Failure kinds recorded in :attr:`PointFailure.kind`.  A worker killed
#: mid-task leaves its async result forever unfinished, so lost workers
#: surface as ``timeout`` failures once the per-point deadline expires.
KIND_EXCEPTION = "exception"  #: the point raised inside the simulator
KIND_TIMEOUT = "timeout"  #: the per-point wall-clock deadline expired


@dataclass(frozen=True)
class RetryPolicy:
    """Re-attempt failed points with exponential backoff.

    ``retries`` is the number of *extra* attempts after the first one
    (``retries=0`` disables retrying).  Attempt ``k`` (1-based retry
    count) sleeps ``backoff_seconds * backoff_factor**(k-1)`` first,
    capped at ``max_backoff_seconds``.  Timeouts are retried like
    exceptions when ``retry_timeouts`` is set.

    With ``jitter`` the delay is drawn uniformly from ``[0, capped]``
    ("full jitter"): when many queued service jobs fail together — a
    worker pool dying takes every in-flight point with it — identical
    deterministic backoffs would re-submit them in one synchronized
    storm.  The default stays deterministic so batch runs remain
    reproducible; the service daemon turns jitter on.
    """

    retries: int = 0
    backoff_seconds: float = 0.0
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 30.0
    retry_timeouts: bool = True
    jitter: bool = False

    def __post_init__(self):
        if self.retries < 0:
            raise ConfigurationError(
                f"retries must be >= 0, got {self.retries}"
            )
        if self.backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise ConfigurationError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def delay(self, retry_number: int) -> float:
        """Backoff before the ``retry_number``-th retry (1-based).

        Deterministic by default; with ``jitter`` the value is drawn
        uniformly from ``[0, exponential cap]``, so concurrent failed
        jobs desynchronize instead of retrying in lockstep.
        """
        if self.backoff_seconds == 0:
            return 0.0
        raw = self.backoff_seconds * self.backoff_factor ** (
            retry_number - 1
        )
        capped = min(raw, self.max_backoff_seconds)
        if self.jitter:
            return random.uniform(0.0, capped)
        return capped

    def should_retry(self, attempts: int, *, timeout: bool = False) -> bool:
        """May a point that has already made ``attempts`` attempts try
        again?"""
        if timeout and not self.retry_timeouts:
            return False
        return attempts <= self.retries


@dataclass(frozen=True)
class PointFailure:
    """The terminal failure of one submitted point.

    One record is emitted per affected batch index — coalesced
    duplicates of a failing point each get their own record, all
    describing the same underlying execution.
    """

    index: int  #: position in the submitted batch
    point: "ExperimentPoint"
    error_type: str  #: exception class name (``"TimeoutError"`` for kind="timeout")
    message: str
    traceback: str  #: formatted traceback text ("" when unavailable)
    attempts: int  #: executions consumed, including retries
    kind: str = KIND_EXCEPTION  #: ``"exception"`` or ``"timeout"``

    def describe(self) -> str:
        return (
            f"{self.point.describe()}: {self.error_type}: {self.message} "
            f"({self.kind}, {self.attempts} attempt"
            f"{'s' if self.attempts != 1 else ''})"
        )


class BatchResult(Sequence):
    """Cycle counts plus failures for one engine batch.

    Sequence access iterates the per-point cycle counts in submission
    order, with ``None`` at failed indices, so healthy callers can treat
    a fully-successful ``BatchResult`` exactly like the ``List[int]``
    the engine returns in ``on_error="raise"`` mode.
    """

    def __init__(
        self,
        cycles: Sequence[Optional[int]],
        failures: Sequence[PointFailure] = (),
    ):
        self.cycles: List[Optional[int]] = list(cycles)
        self.failures: Tuple[PointFailure, ...] = tuple(
            sorted(failures, key=lambda f: f.index)
        )

    @property
    def ok(self) -> bool:
        """True when every point produced a cycle count."""
        return not self.failures

    @property
    def failed_indices(self) -> Tuple[int, ...]:
        return tuple(f.index for f in self.failures)

    def raise_if_failed(self) -> None:
        """Raise :class:`PointFailedError` summarizing any failures."""
        if self.failures:
            lines = ", ".join(f.describe() for f in self.failures[:4])
            more = (
                f" (+{len(self.failures) - 4} more)"
                if len(self.failures) > 4
                else ""
            )
            raise PointFailedError(
                f"{len(self.failures)} of {len(self.cycles)} points "
                f"failed: {lines}{more}"
            )

    def __getitem__(self, index):
        return self.cycles[index]

    def __len__(self) -> int:
        return len(self.cycles)

    def __iter__(self) -> Iterator[Optional[int]]:
        return iter(self.cycles)

    def __eq__(self, other) -> bool:
        if isinstance(other, BatchResult):
            return (
                self.cycles == other.cycles
                and self.failures == other.failures
            )
        if isinstance(other, (list, tuple)):
            return list(self.cycles) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"BatchResult({len(self.cycles)} points, "
            f"{len(self.failures)} failed)"
        )


class CircuitBreaker:
    """Trip to degraded execution after repeated pool incidents.

    The engine already degrades *within* one batch (``degrade_after``);
    the breaker carries that judgement *across* batches for long-lived
    owners like the service supervisor.  Protocol:

    * **closed** — pool execution allowed.  ``record_incident`` counts
      consecutive faulty batches; at ``threshold`` the breaker opens.
    * **open** — ``allow()`` is False: run inline (jobs=1), where the
      simulation watchdog is the containment layer.  After
      ``cooldown_seconds`` the breaker half-opens.
    * **half-open** — exactly one probe batch may use the pool
      (``allow()`` is True once).  Success closes the breaker and
      resets the count; another incident re-opens it for a fresh
      cooldown.

    ``clock`` is injectable for deterministic tests.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        threshold: int = 3,
        cooldown_seconds: float = 30.0,
        clock=time.monotonic,
    ):
        if threshold < 1:
            raise ConfigurationError(
                f"breaker threshold must be >= 1, got {threshold}"
            )
        if cooldown_seconds < 0:
            raise ConfigurationError(
                f"breaker cooldown must be >= 0, got {cooldown_seconds}"
            )
        self.threshold = threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._incidents = 0  #: consecutive incidents while closed
        self._opened_at: Optional[float] = None
        self._probing = False  #: a half-open probe is outstanding
        self.trips = 0  #: times the breaker has opened, ever

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return self.CLOSED
        if self._clock() - self._opened_at >= self.cooldown_seconds:
            return self.HALF_OPEN
        return self.OPEN

    def allow(self) -> bool:
        """May the next batch use the worker pool?

        In the half-open state the first ``allow`` call claims the
        single probe slot; further calls are refused until the probe
        reports back via ``record_success`` / ``record_incident``.
        """
        state = self.state
        if state == self.CLOSED:
            return True
        if state == self.HALF_OPEN and not self._probing:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        """A pool batch completed without incident."""
        self._incidents = 0
        self._opened_at = None
        self._probing = False

    def record_incident(self) -> None:
        """A pool batch misbehaved (timeouts, lost workers, in-batch
        degradation)."""
        self._probing = False
        if self._opened_at is not None:
            # A failed half-open probe (or a late report): re-open for
            # a fresh cooldown.
            self._opened_at = self._clock()
            self.trips += 1
            return
        self._incidents += 1
        if self._incidents >= self.threshold:
            self._opened_at = self._clock()
            self.trips += 1

    def describe(self) -> dict:
        return {
            "state": self.state,
            "incidents": self._incidents,
            "trips": self.trips,
            "threshold": self.threshold,
            "cooldown_seconds": self.cooldown_seconds,
        }

"""Closed-form performance models used to sanity-check the simulators."""

from repro.analysis.model import (
    available_parallelism,
    bus_bound_cycles,
    cacheline_serial_cycles,
    gathering_serial_cycles,
    per_bank_column_bound,
    pva_lower_bound,
)

__all__ = [
    "available_parallelism",
    "bus_bound_cycles",
    "cacheline_serial_cycles",
    "gathering_serial_cycles",
    "per_bank_column_bound",
    "pva_lower_bound",
]

"""Closed-form performance models.

Section 6.3.1 explains the PVA's performance in terms of three effects:
fewer SDRAM accesses, bank parallelism (``M / 2**s`` banks active for a
stride ``sigma * 2**s``), and bus compaction.  This module captures that
reasoning as explicit formulas:

* exact cycle counts for the two serial baselines (their cost models are
  analytic by construction — the test suite pins the simulators to these
  formulas);
* *lower bounds* for the PVA systems: the vector-bus occupancy bound and
  the per-bank column-throughput bound.  The cycle-level simulator can
  approach but never beat these, which makes them powerful invariants —
  any "too fast" simulation result is a scheduling bug, not a win.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.decode import decompose_stride
from repro.core.firsthit import hit_count
from repro.params import SystemParams
from repro.types import AccessType, ExplicitCommand, VectorCommand

__all__ = [
    "available_parallelism",
    "bus_bound_cycles",
    "per_bank_column_bound",
    "pva_lower_bound",
    "cacheline_serial_cycles",
    "gathering_serial_cycles",
]


def available_parallelism(stride: int, num_banks: int) -> int:
    """Banks a stride can keep busy: ``M / 2**s`` (section 6.3.1)."""
    return decompose_stride(stride, num_banks).banks_hit


def bus_bound_cycles(
    commands: Sequence, params: SystemParams
) -> int:
    """Vector-bus occupancy lower bound (per channel).

    Every read costs one request cycle plus a STAGE_READ command and the
    line transfer; every write costs STAGE_WRITE, the transfer, and the
    VEC_WRITE broadcast.  Commands and broadcasts occupy every channel
    simultaneously, while the line transfer splits evenly across
    channels (``channel_stage_cycles``); each channel's timeline
    serializes all of it.
    """
    total = 0
    for command in commands:
        if isinstance(command, ExplicitCommand):
            request = command.broadcast_cycles
        else:
            request = 1
        if command.access is AccessType.READ:
            total += request + 1 + params.channel_stage_cycles
        else:
            total += 1 + params.channel_stage_cycles + request
    return total


def _bank_elements(command, params: SystemParams) -> Dict[int, int]:
    if isinstance(command, ExplicitCommand):
        counts: Dict[int, int] = {}
        mask = params.num_banks - 1
        for address in command.addresses:
            counts[address & mask] = counts.get(address & mask, 0) + 1
        return counts
    return {
        bank: hit_count(command.vector, bank, params.num_banks)
        for bank in range(params.num_banks)
    }


def per_bank_column_bound(
    commands: Sequence, params: SystemParams
) -> int:
    """Column-throughput lower bound: the busiest bank must issue one CAS
    per element it owns, at most one per cycle."""
    totals: Dict[int, int] = {}
    for command in commands:
        for bank, count in _bank_elements(command, params).items():
            totals[bank] = totals.get(bank, 0) + count
    return max(totals.values(), default=0)


def pva_lower_bound(commands: Sequence, params: SystemParams) -> int:
    """A PVA run can finish no sooner than the larger of the bus bound
    and the busiest bank's column bound."""
    return max(
        bus_bound_cycles(commands, params),
        per_bank_column_bound(commands, params),
    )


def cacheline_serial_cycles(
    commands: Sequence[VectorCommand], params: SystemParams
) -> int:
    """Exact analytic cost of the cache-line serial baseline: 20 cycles
    per distinct line per command, serially (the line burst splits
    across channels)."""
    shift = params.cache_line_words.bit_length() - 1
    fill = params.sdram.t_rcd + params.sdram.cas_latency + (
        params.channel_stage_cycles
    )
    total = 0
    for command in commands:
        lines = {a >> shift for a in command.vector.addresses()}
        total += len(lines) * fill
    return total


def gathering_serial_cycles(
    commands: Sequence[VectorCommand], params: SystemParams
) -> int:
    """Exact analytic cost of the gathering serial baseline."""
    timing = params.sdram
    total = 0
    for command in commands:
        total += (
            1
            + timing.t_rp
            + timing.t_rcd
            + timing.cas_latency
            + command.vector.length
            + params.channel_stage_cycles
        )
    return total

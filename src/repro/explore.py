"""Design-space exploration (``python -m repro explore``).

The paper's section 4.3.1 argues the PVA's hardware cost scales
gracefully while section 6 shows its performance; this driver puts both
on one chart.  Given a declarative sweep over the :class:`GenParams`
axes (banks, channels, contexts, FIFO depth, line size, row policy...),
it

1. enumerates every axis combination into a validated
   :class:`~repro.params.SystemParams` (invalid combinations are counted
   and reported, not silently dropped),
2. computes each candidate's :func:`~repro.analysis.model.pva_lower_bound`
   (bus occupancy vs. busiest-bank column throughput) and its Table-1
   style :func:`~repro.experiments.complexity.complexity_score`,
3. walks candidates in ascending complexity order and **prunes** any
   whose analytic lower bound already exceeds the best simulated cycle
   count found among cheaper designs — those configs cannot reach the
   frontier, so their cycle-accurate simulations are skipped,
4. simulates the survivors through the parallel
   :class:`~repro.engine.ExperimentEngine` (cached, submission-ordered),
   asserting every simulated result respects its lower bound, and
5. emits the Pareto frontier of simulated cycles vs. complexity score.

With ``prune_slack=0`` the pruning is exact (a skipped design provably
cannot dominate); a positive slack additionally skips designs whose
bound is within ``slack`` of the incumbent, trading completeness for
sweep speed.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Dict, List, Optional, Tuple

from repro.analysis.model import pva_lower_bound
from repro.engine import ExperimentEngine, ExperimentPoint, KernelTraceSpec
from repro.errors import ConfigurationError
from repro.experiments.complexity import complexity_score
from repro.experiments.report import format_table
from repro.kernels import alignment_by_name, build_trace, kernel_by_name
from repro.params import SystemParams

__all__ = [
    "SWEEP_AXES",
    "SweepSpec",
    "QUICK_SPEC",
    "DEFAULT_SPEC",
    "enumerate_candidates",
    "run_explore",
    "format_explore",
    "main",
]

#: SystemParams constructor keywords a sweep may vary.  Device timing is
#: deliberately excluded: the explorer compares *microarchitectures*
#: under one memory technology, which is what the Pareto axes assume.
SWEEP_AXES: Tuple[str, ...] = (
    "num_banks",
    "num_channels",
    "ranks_per_channel",
    "cache_line_words",
    "max_transactions",
    "num_vector_contexts",
    "request_fifo_depth",
    "fhc_latency",
    "bus_turnaround",
    "bypass_paths",
    "row_policy",
    "issue_interval",
)

#: Systems the analytic lower bound is valid for.
EXPLORABLE_SYSTEMS: Tuple[str, ...] = ("pva-sdram", "pva-sram")


@dataclass
class SweepSpec:
    """A declarative design-space sweep: axes to vary plus one workload.

    ``axes`` maps a :data:`SWEEP_AXES` name to the list of values to
    try; the sweep is their cartesian product.  The workload fields name
    one section-6.2 kernel trace all candidates run, so cycle counts are
    comparable across the sweep.
    """

    axes: Dict[str, List] = field(default_factory=dict)
    kernel: str = "copy"
    stride: int = 1
    alignment: str = "aligned"
    elements: int = 256
    system: str = "pva-sdram"
    prune_slack: float = 0.0

    def __post_init__(self):
        if not self.axes:
            raise ConfigurationError("sweep spec has no axes to vary")
        for name, values in self.axes.items():
            if name not in SWEEP_AXES:
                raise ConfigurationError(
                    f"unknown sweep axis {name!r}; valid axes: "
                    f"{', '.join(SWEEP_AXES)}"
                )
            if not isinstance(values, (list, tuple)) or not values:
                raise ConfigurationError(
                    f"sweep axis {name!r} needs a non-empty list of "
                    f"values, got {values!r}"
                )
        if self.system not in EXPLORABLE_SYSTEMS:
            raise ConfigurationError(
                f"explore needs a PVA system (the analytic lower bound "
                f"models the vector bus), got {self.system!r}"
            )
        if self.stride <= 0:
            raise ConfigurationError(
                f"stride must be positive, got {self.stride}"
            )
        if self.elements <= 0:
            raise ConfigurationError(
                f"elements must be positive, got {self.elements}"
            )
        if self.prune_slack < 0:
            raise ConfigurationError(
                f"prune_slack must be >= 0, got {self.prune_slack}"
            )
        # Fail fast on unknown kernel/alignment names.
        kernel_by_name(self.kernel)
        alignment_by_name(self.alignment)

    def to_dict(self) -> Dict:
        doc = asdict(self)
        doc["axes"] = {k: list(v) for k, v in self.axes.items()}
        return doc

    @classmethod
    def from_dict(cls, doc: Dict) -> "SweepSpec":
        if not isinstance(doc, dict):
            raise ConfigurationError(
                f"sweep spec must be a JSON object, got {type(doc).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown sweep spec key(s): {', '.join(unknown)}; "
                f"valid keys: {', '.join(sorted(known))}"
            )
        return cls(**doc)


#: The ``--quick`` sweep: a 12-point banks x contexts x channels slice
#: on a dense (stride-1) copy, small enough for CI.  The dense workload
#: runs close to its bus bound, so bound-based pruning bites early.
QUICK_SPEC = SweepSpec(
    axes={
        "num_banks": [8, 16],
        "num_vector_contexts": [1, 2, 4],
        "num_channels": [1, 2],
    },
    kernel="copy",
    stride=1,
    alignment="aligned",
    elements=128,
)

#: The default full sweep: 96 microarchitectures on the paper's
#: headline stride-19 saxpy.
DEFAULT_SPEC = SweepSpec(
    axes={
        "num_banks": [4, 8, 16, 32],
        "num_channels": [1, 2],
        "num_vector_contexts": [1, 2, 4],
        "cache_line_words": [16, 32],
        "row_policy": ["paper", "close"],
    },
    kernel="saxpy",
    stride=19,
    alignment="aligned",
    elements=256,
)


@dataclass
class Candidate:
    """One enumerated design point, bounded but not yet simulated."""

    settings: Dict
    params: SystemParams
    elements: int
    complexity: int
    bound: int


def enumerate_candidates(
    spec: SweepSpec,
) -> Tuple[List[Candidate], List[Dict]]:
    """Expand the axes' cartesian product into validated candidates.

    Returns ``(candidates, invalid)`` where ``invalid`` records each
    combination :class:`SystemParams` rejected, with the reason.
    """
    names = list(spec.axes)
    kernel = kernel_by_name(spec.kernel)
    alignment = alignment_by_name(spec.alignment)
    candidates: List[Candidate] = []
    invalid: List[Dict] = []
    for combo in itertools.product(*(spec.axes[n] for n in names)):
        settings = dict(zip(names, combo))
        try:
            params = SystemParams(**settings)
        except ConfigurationError as error:
            invalid.append({"settings": settings, "reason": str(error)})
            continue
        # Traces are chunked into cache-line commands; round the element
        # count up so every line size runs the same (or more) work.
        chunk = params.cache_line_words
        elements = ((spec.elements + chunk - 1) // chunk) * chunk
        trace = build_trace(
            kernel,
            stride=spec.stride,
            params=params,
            elements=elements,
            alignment=alignment,
        )
        candidates.append(
            Candidate(
                settings=settings,
                params=params,
                elements=elements,
                complexity=complexity_score(params),
                bound=pva_lower_bound(trace, params),
            )
        )
    return candidates, invalid


def _record(candidate: Candidate, status: str, cycles: Optional[int]) -> Dict:
    return {
        "settings": candidate.settings,
        "config_key": candidate.params.config_key(),
        "elements": candidate.elements,
        "complexity": candidate.complexity,
        "lower_bound": candidate.bound,
        "cycles": cycles,
        "status": status,
        "pareto": False,
    }


def run_explore(
    spec: SweepSpec, engine: Optional[ExperimentEngine] = None
) -> Dict:
    """Run the sweep; return the JSON-serializable exploration report.

    Raises :class:`ConfigurationError` if any simulated result lands
    below its analytic lower bound — that is a scheduling bug, not a
    design point.
    """
    engine = engine or ExperimentEngine()
    candidates, invalid = enumerate_candidates(spec)
    candidates.sort(key=lambda c: (c.complexity, c.params.config_key()))
    records: List[Dict] = []
    best: Optional[int] = None
    pruned = 0
    # Walk equal-complexity tiers in ascending cost.  A candidate is
    # pruned when some cheaper design already simulated at or under the
    # candidate's lower bound (with slack): it cannot improve on the
    # frontier, so its simulation is skipped.
    for _, group in itertools.groupby(candidates, key=lambda c: c.complexity):
        tier = list(group)
        survivors: List[Candidate] = []
        for candidate in tier:
            threshold = candidate.bound * (1.0 + spec.prune_slack)
            if best is not None and best <= threshold:
                pruned += 1
                records.append(_record(candidate, "pruned", None))
            else:
                survivors.append(candidate)
        if not survivors:
            continue
        # Survivors simulate under the fastest backend on the ladder;
        # sim_mode does not enter the config key, so each record still
        # names the *design* (candidate.params), and ineligible runs
        # fall back to the object backends with identical cycle counts.
        points = [
            ExperimentPoint(
                system=spec.system,
                trace=KernelTraceSpec(
                    kernel=spec.kernel,
                    stride=spec.stride,
                    alignment=spec.alignment,
                    elements=candidate.elements,
                ),
                params=replace(candidate.params, sim_mode="window"),
            )
            for candidate in survivors
        ]
        for candidate, cycles in zip(survivors, engine.run(points)):
            if cycles is None:
                records.append(_record(candidate, "failed", None))
                continue
            if cycles < candidate.bound:
                raise ConfigurationError(
                    f"simulated {cycles} cycles beat the analytic lower "
                    f"bound {candidate.bound} for {candidate.settings} — "
                    f"the bound or the scheduler is wrong"
                )
            records.append(_record(candidate, "simulated", cycles))
            if best is None or cycles < best:
                best = cycles
    records.sort(key=lambda r: (r["complexity"], r["config_key"]))
    # Pareto frontier over the simulated points: ascending complexity,
    # keep each strict improvement in cycles.  Equal-complexity ties
    # contribute at most their cheapest-cycles member (config_key order
    # within a tie is arbitrary, so the walk considers the tie's best,
    # not its first).
    frontier: List[Dict] = []
    incumbent: Optional[int] = None
    for _, group in itertools.groupby(
        (r for r in records if r["status"] == "simulated"),
        key=lambda r: r["complexity"],
    ):
        record = min(group, key=lambda r: r["cycles"])
        if incumbent is None or record["cycles"] < incumbent:
            record["pareto"] = True
            frontier.append(record)
            incumbent = record["cycles"]
    evaluated = len(candidates)
    return {
        "spec": spec.to_dict(),
        "enumerated": evaluated + len(invalid),
        "invalid": len(invalid),
        "invalid_combos": invalid,
        "candidates": evaluated,
        "pruned": pruned,
        "simulated": sum(1 for r in records if r["status"] == "simulated"),
        "prune_fraction": (pruned / evaluated) if evaluated else 0.0,
        "points": records,
        "pareto": frontier,
    }


def format_explore(report: Dict) -> str:
    """Human-readable rendering of :func:`run_explore`'s report."""
    spec = report["spec"]
    axis_names = list(spec["axes"])
    rows = []
    for record in report["points"]:
        cycles = record["cycles"]
        rows.append(
            tuple(record["settings"].get(n, "-") for n in axis_names)
            + (
                record["complexity"],
                record["lower_bound"],
                cycles if cycles is not None else record["status"].upper(),
                "*" if record["pareto"] else "",
            )
        )
    headers = tuple(axis_names) + (
        "complexity",
        "bound",
        "cycles",
        "pareto",
    )
    lines = [
        (
            f"explore: {spec['kernel']} stride={spec['stride']} "
            f"alignment={spec['alignment']} elements={spec['elements']} "
            f"on {spec['system']}"
        ),
        format_table(headers, rows),
        (
            f"{report['enumerated']} enumerated, {report['invalid']} "
            f"invalid, {report['pruned']} pruned by analytic bound "
            f"({report['prune_fraction']:.0%} of {report['candidates']} "
            f"candidates), {report['simulated']} simulated, "
            f"{len(report['pareto'])} on the Pareto frontier"
        ),
    ]
    return "\n".join(lines)


def _spec_from_args(args) -> SweepSpec:
    """Resolve the CLI's spec precedence: --spec file > --quick > axis
    flags, with workload/slack flags overriding whichever base won."""
    if getattr(args, "spec", None):
        with open(args.spec, "r", encoding="utf-8") as handle:
            base = SweepSpec.from_dict(json.load(handle))
    elif getattr(args, "quick", False):
        base = QUICK_SPEC
    else:
        axes = {}
        for flag, axis in (
            ("banks", "num_banks"),
            ("channels", "num_channels"),
            ("ranks", "ranks_per_channel"),
            ("contexts", "num_vector_contexts"),
            ("fifo", "request_fifo_depth"),
            ("line_words", "cache_line_words"),
        ):
            values = getattr(args, flag, None)
            if values:
                axes[axis] = [int(v) for v in values.split(",")]
        if getattr(args, "row_policy", None):
            axes["row_policy"] = args.row_policy.split(",")
        base = SweepSpec(axes=axes) if axes else DEFAULT_SPEC
    overrides = {}
    for name in ("kernel", "stride", "alignment", "elements", "system"):
        value = getattr(args, name, None)
        if value is not None:
            overrides[name] = value
    if getattr(args, "prune_slack", None) is not None:
        overrides["prune_slack"] = args.prune_slack
    if overrides:
        doc = base.to_dict()
        doc.update(overrides)
        base = SweepSpec.from_dict(doc)
    return base


def main(args) -> int:
    """Entry point for the ``explore`` subcommand (parser in cli.py)."""
    from repro.cli import _engine_from

    try:
        spec = _spec_from_args(args)
        report = run_explore(spec, engine=_engine_from(args))
    except (ConfigurationError, OSError, json.JSONDecodeError) as error:
        import sys

        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_explore(report))
    out = getattr(args, "out", None)
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {out}")
    min_prune = getattr(args, "min_prune_fraction", None)
    if min_prune is not None and report["prune_fraction"] < min_prune:
        import sys

        print(
            f"error: prune fraction {report['prune_fraction']:.2f} below "
            f"required {min_prune:.2f}",
            file=sys.stderr,
        )
        return 1
    if not report["pareto"] and report["simulated"]:
        import sys

        print("error: no Pareto frontier emerged", file=sys.stderr)
        return 1
    return 0

"""The paper's primary contribution: Parallel Vector Access algorithms.

This package contains the mathematics of chapter 4 — closed-form
``FirstHit``/``NextHit`` for word-interleaved memories (theorems 4.3/4.4),
the general recursive algorithm for cache-line interleave (section 4.1.2),
the PLA lookup-table implementation models (section 4.2), and the
``SplitVector`` super-page splitting algorithm (section 4.3.2).
"""

from repro.core.decode import BankDecoder, StrideDecomposition, decompose_stride
from repro.core.firsthit import (
    NO_HIT,
    first_hit,
    next_hit,
    hit_count,
    bank_subvector,
)
from repro.core.subvector import SubVector, subvectors_by_bank
from repro.core.pla import FullKiPLA, K1PLA, NextHitPLA, pla_product_terms
from repro.core.split import split_vector

__all__ = [
    "BankDecoder",
    "StrideDecomposition",
    "decompose_stride",
    "NO_HIT",
    "first_hit",
    "next_hit",
    "hit_count",
    "bank_subvector",
    "SubVector",
    "subvectors_by_bank",
    "FullKiPLA",
    "K1PLA",
    "NextHitPLA",
    "pla_product_terms",
    "split_vector",
]

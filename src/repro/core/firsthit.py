"""Word-interleave ``FirstHit`` / ``NextHit`` (theorems 4.3 and 4.4).

These are the closed forms that make broadcast-based parallel vector access
practical: given a vector ``V = <B, S, L>`` and a bank ``b``, each bank
controller decides *independently, without expanding the vector* whether it
holds any elements, and if so which ones:

* ``NextHit(S) = delta = 2**(m-s)``   (theorem 4.4) — once a bank holds
  ``V[k]`` it also holds ``V[k + delta]``.
* ``FirstHit(V, b) = K_i = (K1 * i) mod 2**(m-s)`` where
  ``d = (b - b0) mod M`` must be a multiple of ``2**s`` and ``i = d >> s``
  (theorem 4.3), with ``K1 = sigma^{-1} mod 2**(m-s)``.

The functions here are the *behavioural specification*; the PLA models in
:mod:`repro.core.pla` show how the same values come out of lookup tables in
hardware.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.decode import BankDecoder, decompose_stride
from repro.errors import ConfigurationError
from repro.types import Vector

__all__ = ["NO_HIT", "first_hit", "next_hit", "hit_count", "bank_subvector"]

#: Sentinel returned by :func:`first_hit` when a bank holds no element of
#: the vector.  ``None`` mirrors the hardware's dedicated "no hit" encoding.
NO_HIT: Optional[int] = None


def _check_bank(bank: int, num_banks: int) -> None:
    if not 0 <= bank < num_banks:
        raise ConfigurationError(
            f"bank {bank} out of range for {num_banks} banks"
        )


def next_hit(stride: int, num_banks: int) -> int:
    """Theorem 4.4: the index increment ``delta`` between consecutive
    elements held by the same bank, ``2**(m-s)``."""
    return decompose_stride(stride, num_banks).delta


def first_hit(vector: Vector, bank: int, num_banks: int) -> Optional[int]:
    """Theorem 4.3: index of the first element of ``vector`` stored in
    ``bank`` of a word-interleaved memory, or :data:`NO_HIT`.

    Runs in O(1): a stride decomposition, a modular subtraction, a small
    multiply and a mask — exactly the operations the bank controller's
    FirstHit Predict / Calculate units perform.
    """
    _check_bank(bank, num_banks)
    decoder = BankDecoder(num_banks=num_banks, block_words=1)
    b0 = decoder.bank_of(vector.base)
    decomp = decompose_stride(vector.stride, num_banks)

    if decomp.s == decomp.bank_bits:
        # S mod M == 0: every element lands on the base bank.
        return 0 if bank == b0 else NO_HIT

    d = (bank - b0) % num_banks
    if d & ((1 << decomp.s) - 1):
        # Lemma 4.2: only banks at distances that are multiples of 2**s
        # can hold elements.
        return NO_HIT
    i = d >> decomp.s
    k_i = (decomp.k1 * i) % decomp.delta
    if k_i >= vector.length:
        return NO_HIT
    return k_i


def hit_count(vector: Vector, bank: int, num_banks: int) -> int:
    """Number of elements of ``vector`` stored in ``bank``.

    ``0`` when the bank has no hit; otherwise the arithmetic progression
    ``K, K + delta, K + 2*delta, ...`` truncated at the vector length.
    """
    k = first_hit(vector, bank, num_banks)
    if k is NO_HIT:
        return 0
    delta = next_hit(vector.stride, num_banks)
    return (vector.length - 1 - k) // delta + 1


def bank_subvector(vector: Vector, bank: int, num_banks: int) -> List[int]:
    """Word addresses of every element of ``vector`` held by ``bank``, in
    vector-index order.

    This is what a vector context expands with its shift-and-add datapath:
    starting from ``B + S * FirstHit`` and repeatedly adding
    ``S << (m - s)`` (section 4.2, steps 6-7).
    """
    k = first_hit(vector, bank, num_banks)
    if k is NO_HIT:
        return []
    delta = next_hit(vector.stride, num_banks)
    step = vector.stride * delta
    count = (vector.length - 1 - k) // delta + 1
    start = vector.base + vector.stride * k
    return [start + j * step for j in range(count)]

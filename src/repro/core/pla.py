"""PLA (programmable logic array) implementation models for FirstHit.

Section 4.2 sketches several hardware strategies; section 4.3.1 discusses
how they scale with the number of banks.  We model the two table-based ones:

* :class:`FullKiPLA` — a PLA indexed by ``(S mod M, d)`` returning ``K_i``
  directly.  One product term per legal combination, so the term count
  grows as the *square* of the bank count; the paper bounds this design at
  around 16 banks.
* :class:`K1PLA` — a PLA indexed by ``S mod M`` returning
  ``(s, delta, K1)``; ``K_i`` then costs a small multiply and mask
  (``(K1 * (d >> s)) mod 2**(m-s)``).  Term count grows linearly with the
  bank count.
* :class:`NextHitPLA` — the tiny table mapping ``S mod M`` to
  ``delta = 2**(m-s)``; optionally folded into either FirstHit PLA.

All three are *compiled* from the theorems at construction time — "most of
the variables ... will never be calculated explicitly; instead, their
values will be compiled into the circuitry in the form of look-up tables"
(section 4.2) — and afterwards answer queries with dict lookups only, so
the simulator's per-cycle work mirrors the hardware's.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Tuple

from repro.core.decode import decompose_stride
from repro.errors import ConfigurationError
from repro.params import is_power_of_two, log2_exact

__all__ = [
    "FullKiPLA",
    "K1PLA",
    "NextHitPLA",
    "pla_product_terms",
    "shared_k1_pla",
]


@dataclass(frozen=True)
class K1Entry:
    """One row of the K1 PLA: the stride decomposition a bank controller
    needs to evaluate theorem 4.3 for any bank distance."""

    s: int
    delta: int
    k1: int
    power_of_two: bool


class NextHitPLA:
    """Lookup table ``S mod M -> delta = 2**(m-s)`` (theorem 4.4)."""

    def __init__(self, num_banks: int):
        if not is_power_of_two(num_banks):
            raise ConfigurationError(
                f"num_banks must be a power of two, got {num_banks}"
            )
        self.num_banks = num_banks
        self._table: Dict[int, int] = {}
        for s_mod in range(num_banks):
            stride = s_mod if s_mod != 0 else num_banks
            self._table[s_mod] = decompose_stride(stride, num_banks).delta

    def lookup(self, stride: int) -> int:
        """``NextHit(S)`` via one table read."""
        return self._table[stride % self.num_banks]

    def __len__(self) -> int:
        return len(self._table)


class K1PLA:
    """Lookup table ``S mod M -> (s, delta, K1)`` plus the multiply-and-mask
    evaluation of ``K_i`` (the linear-scaling design of section 4.3.1)."""

    def __init__(self, num_banks: int):
        if not is_power_of_two(num_banks):
            raise ConfigurationError(
                f"num_banks must be a power of two, got {num_banks}"
            )
        self.num_banks = num_banks
        self.bank_bits = log2_exact(num_banks, "num_banks")
        self._table: Dict[int, K1Entry] = {}
        for s_mod in range(num_banks):
            stride = s_mod if s_mod != 0 else num_banks
            decomp = decompose_stride(stride, num_banks)
            self._table[s_mod] = K1Entry(
                s=decomp.s,
                delta=decomp.delta,
                k1=decomp.k1,
                power_of_two=decomp.is_power_of_two_stride,
            )

    def entry(self, stride: int) -> K1Entry:
        return self._table[stride % self.num_banks]

    def first_hit_index(
        self, stride: int, bank_distance: int
    ) -> Optional[int]:
        """``K_i`` for a bank at modulo distance ``bank_distance`` from the
        base bank, or ``None`` when lemma 4.2 rules the bank out.

        The caller still has to compare the result against the vector
        length — the PLA knows nothing about ``L``.
        """
        entry = self._table[stride % self.num_banks]
        if bank_distance & ((1 << entry.s) - 1):
            return None
        if entry.s == self.bank_bits and bank_distance != 0:
            return None
        i = bank_distance >> entry.s
        # (K1 * i) mod 2**(m-s): selecting the least significant m-s bits
        # of the product (section 4.2, step 5).
        return (entry.k1 * i) & (entry.delta - 1)

    def __len__(self) -> int:
        return len(self._table)


@lru_cache(maxsize=32)
def shared_k1_pla(num_banks: int) -> K1PLA:
    """Process-wide compiled K1 PLA for a bank count.

    The table is pure function of ``num_banks`` and immutable after
    construction (frozen :class:`K1Entry` rows, read-only queries), so
    every system instance with the same geometry can share one copy —
    the hardware analogy is exact: all bank controllers read the same
    mask ROM.  Construction is O(M) table rows but happens per *system*
    in hot sweep loops, so memoizing it is a real win for the
    experiment engine.

    LRU-bounded (legal bank counts are powers of two, so 32 entries
    cover every geometry up to 2**32 banks) and hooked into
    :func:`repro.api.clear_caches` so long-lived engine workers can
    release it.
    """
    return K1PLA(num_banks)


class FullKiPLA:
    """Lookup table ``(S mod M, d) -> K_i`` — the low-latency,
    quadratically-growing design viable up to about 16 banks."""

    #: Sentinel stored for (stride, distance) pairs with no hit.
    NO_HIT = -1

    def __init__(self, num_banks: int):
        if not is_power_of_two(num_banks):
            raise ConfigurationError(
                f"num_banks must be a power of two, got {num_banks}"
            )
        self.num_banks = num_banks
        self._table: Dict[Tuple[int, int], int] = {}
        helper = shared_k1_pla(num_banks)
        for s_mod in range(num_banks):
            for d in range(num_banks):
                k_i = helper.first_hit_index(s_mod, d)
                self._table[(s_mod, d)] = (
                    self.NO_HIT if k_i is None else k_i
                )

    def first_hit_index(
        self, stride: int, bank_distance: int
    ) -> Optional[int]:
        """``K_i`` via a single wide lookup, or ``None`` for no hit."""
        value = self._table[(stride % self.num_banks, bank_distance)]
        return None if value == self.NO_HIT else value

    def __len__(self) -> int:
        return len(self._table)

    @property
    def product_terms(self) -> int:
        """Rows that actually encode a hit — a proxy for PLA area."""
        return sum(1 for v in self._table.values() if v != self.NO_HIT)


def pla_product_terms(num_banks: int, design: str) -> int:
    """Scaling model of section 4.3.1: PLA complexity versus bank count.

    ``design`` is ``"full_ki"`` (quadratic) or ``"k1"`` (linear).  Used by
    the hardware-complexity experiment and the bank-scaling ablation.
    """
    if design == "full_ki":
        return FullKiPLA(num_banks).product_terms
    if design == "k1":
        return len(K1PLA(num_banks))
    raise ConfigurationError(f"unknown PLA design {design!r}")

"""``SplitVector``: breaking an application vector at super-page boundaries
(section 4.3.2).

Parallel fetching only works while the vector is physically contiguous, so
the memory controller splits each vector operation into sub-vectors that
each stay inside one super-page.  Computing the *exact* number of on-page
elements needs a division by the stride; the paper instead computes a cheap
*lower bound* with an invert-add-shift:

    lower_bound = (page_size - terminate(phys_address)) >> shift_val

where ``terminate`` keeps the low ``n`` bits of the physical address (page
size ``2**n``) and ``shift_val`` is chosen so that ``2**shift_val`` is at
least the stride — for the bound to actually be a lower bound,
``shift_val = ceil(log2(S))``.  (The paper's prose says "index of most
significant power of 2 in V.S"; for non-power-of-two strides only the
rounded-*up* reading keeps every issued sub-vector on its page, which the
test suite checks as an invariant.)

The routine always makes progress: when the bound comes out zero but the
current element does lie on the page, a single element is issued.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.types import Vector
from repro.vm.tlb import MMCTLB

__all__ = ["split_vector", "exact_split_vector"]


def _ceil_log2(value: int) -> int:
    """Smallest ``k`` with ``2**k >= value``."""
    return (value - 1).bit_length()


def split_vector(vector: Vector, tlb: MMCTLB) -> List[Vector]:
    """Split ``vector`` (virtual addresses) into physically-addressed
    sub-vectors, each contained in one super-page.

    Follows the paper's fast lower-bound algorithm: one TLB lookup and one
    shift per issued sub-vector, no division by the stride.  Returns the
    sub-vectors in issue order; their lengths sum to ``vector.length``.
    """
    shift_val = _ceil_log2(vector.stride)
    pieces: List[Vector] = []
    base = vector.base
    length = vector.length
    while length > 0:
        phys_address, page_words = tlb.lookup(base)
        # terminate(phys_address): the least significant n bits.
        offset_in_page = phys_address & (page_words - 1)
        lower_bound = (page_words - offset_in_page) >> shift_val
        # The bound can be zero near the end of a page even though the
        # current element itself is resident; issue it alone.
        lower_bound = max(1, min(lower_bound, length))
        pieces.append(
            Vector(base=phys_address, stride=vector.stride, length=lower_bound)
        )
        length -= lower_bound
        base += vector.stride * lower_bound
    return pieces


def exact_split_vector(vector: Vector, tlb: MMCTLB) -> List[Vector]:
    """The division-based exact splitter the paper deems too expensive for
    hardware — used as the reference the fast version is tested against.

    Produces the minimal number of sub-vectors; the fast version may
    produce more (never fewer elements per page than legal).
    """
    pieces: List[Vector] = []
    base = vector.base
    length = vector.length
    while length > 0:
        phys_address, page_words = tlb.lookup(base)
        offset_in_page = phys_address & (page_words - 1)
        remaining_words = page_words - offset_in_page
        # Elements whose first word lies on this page.
        on_page = (remaining_words - 1) // vector.stride + 1
        on_page = min(on_page, length)
        pieces.append(
            Vector(base=phys_address, stride=vector.stride, length=on_page)
        )
        length -= on_page
        base += vector.stride * on_page
    return pieces

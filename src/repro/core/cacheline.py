"""The general cache-line-interleave algorithms of section 4.1.2.

For a memory interleaved at ``N = 2**n`` words per bank block, the bank
access pattern of a strided vector is governed by the inequality

    0 <= theta + p1*S0 - p2*N*M - d*N < N        (paper eq. 1)

whose smallest solution ``p1`` is the paper's ``FirstHit`` at bank distance
``d`` (``theta`` is the base offset within a block, ``S0 = S mod N*M``).
Section 4.1.2 derives a recursive Euclidean-style solver and concludes that
its divisions and modulo operations by non-powers-of-two make it a poor fit
for hardware — motivating the logical-bank transformation of section 4.1.3
(implemented in :mod:`repro.interleave.logical`).

This module provides:

* :func:`classify_case` — the case analysis (case 0 / 1 / 2.1 / 2.2) with
  the quantities ``delta_b``, ``delta_theta``, ``theta``;
* :func:`next_hit_paper` — a faithful port of the paper's recursive C
  implementation of ``NextHit(theta, stride, NM)``;
* :func:`next_hit_exact` — the reference semantics (least ``p >= 1`` with
  ``(theta + p*stride) mod NM < N``), against which the port is
  property-tested;
* :func:`first_hit_bruteforce` — sequential-expansion reference used to
  validate every parallel algorithm in the library.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.core.decode import BankDecoder
from repro.errors import ConfigurationError, VectorSpecError
from repro.params import is_power_of_two
from repro.types import Vector

__all__ = [
    "InterleaveCase",
    "CaseAnalysis",
    "classify_case",
    "next_hit_exact",
    "next_hit_paper",
    "first_hit_bruteforce",
    "bank_sequence",
]


class InterleaveCase(enum.Enum):
    """The case taxonomy of section 4.1.2."""

    CASE_0 = "case 0: base lands on the queried bank"
    CASE_1 = "case 1: delta_theta == 0 (offset never drifts)"
    CASE_2_1 = "case 2.1: offsets drift but never spill into the next block"
    CASE_2_2 = "case 2.2: offset drift crosses block boundaries"


@dataclass(frozen=True)
class CaseAnalysis:
    """The quantities the paper defines for the case analysis.

    ``delta_b = (S mod NM) / N`` — banks skipped between consecutive
    elements; ``delta_theta = (S mod NM) mod N`` — drift of the offset
    within a block; ``theta = B mod N`` — offset of the first element.
    """

    case: InterleaveCase
    theta: int
    delta_theta: int
    delta_b: int


def _validate_geometry(num_banks: int, block_words: int) -> None:
    if not is_power_of_two(num_banks):
        raise ConfigurationError(
            f"num_banks must be a power of two, got {num_banks}"
        )
    if not is_power_of_two(block_words):
        raise ConfigurationError(
            f"block_words must be a power of two, got {block_words}"
        )


def classify_case(
    vector: Vector, bank: int, num_banks: int, block_words: int
) -> CaseAnalysis:
    """Classify ``(vector, bank)`` into the paper's case taxonomy."""
    _validate_geometry(num_banks, block_words)
    decoder = BankDecoder(num_banks=num_banks, block_words=block_words)
    nm = num_banks * block_words
    theta = vector.base % block_words
    s0 = vector.stride % nm
    delta_theta = s0 % block_words
    delta_b = s0 // block_words

    if decoder.bank_of(vector.base) == bank:
        case = InterleaveCase.CASE_0
    elif delta_theta == 0:
        case = InterleaveCase.CASE_1
    elif theta + (vector.length - 1) * delta_theta < block_words:
        case = InterleaveCase.CASE_2_1
    else:
        case = InterleaveCase.CASE_2_2
    return CaseAnalysis(
        case=case, theta=theta, delta_theta=delta_theta, delta_b=delta_b
    )


def next_hit_exact(
    theta: int, stride: int, num_banks: int, block_words: int
) -> Optional[int]:
    """Reference ``NextHit`` for cache-line interleave.

    Returns the least ``p >= 1`` such that ``(theta + p*stride) mod NM`` is
    less than ``N`` — i.e. the element ``p`` strides later falls back into
    a block owned by the same bank — or ``None`` if no such ``p`` exists
    within one full period ``NM / gcd(stride, NM)`` (in which case the bank
    only ever holds one element per period).
    """
    _validate_geometry(num_banks, block_words)
    if not 0 <= theta < block_words:
        raise VectorSpecError(
            f"theta must satisfy 0 <= theta < {block_words}, got {theta}"
        )
    if stride <= 0:
        raise VectorSpecError(f"stride must be positive, got {stride}")
    nm = num_banks * block_words
    s0 = stride % nm
    if s0 == 0:
        return 1
    # The residue sequence (theta + p*s0) mod NM is periodic with period
    # NM / gcd(s0, NM); scanning one period is exact.
    import math

    period = nm // math.gcd(s0, nm)
    residue = theta
    for p in range(1, period + 1):
        residue += s0
        if residue >= nm:
            residue -= nm
        if residue < block_words:
            return p
    return None


def next_hit_paper(
    theta: int, stride: int, nm: int, block_words: int
) -> int:
    """Faithful port of the paper's recursive C ``NextHit`` (section 4.1.2).

    The C source carries an implicit global ``N`` (the block size), passed
    here as ``block_words``.  The routine assumes a hit at offset ``theta``
    exists and that ``stride`` has been reduced modulo ``NM``; callers
    wanting validated results should prefer :func:`next_hit_exact`.  The
    test suite characterises exactly where the draft-paper code agrees with
    the reference semantics.
    """
    n = block_words
    if stride < n:
        if theta + stride < n:
            return 1
        p3_plus_1 = (nm - theta) // stride
        if p3_plus_1 and ((theta + p3_plus_1 * stride) % nm < n):
            return p3_plus_1
        return p3_plus_1 + 1
    s1 = nm % stride
    if s1 <= theta:
        return nm // stride
    if s1 < n:
        p2 = (stride - n + theta) // s1 + 1
    else:
        s2 = stride % s1
        p3_plus_1 = next_hit_paper(theta, s2, s1, n)
        p2 = (p3_plus_1 * stride + theta) // s1
    carry = 1
    if (p2 * nm) % stride <= stride - n + theta:
        carry = 0
    p1_minus_1 = (p2 * nm) // stride
    return p1_minus_1 + carry


def first_hit_bruteforce(
    vector: Vector, bank: int, num_banks: int, block_words: int = 1
) -> Optional[int]:
    """Sequential-expansion reference for ``FirstHit`` on any interleave.

    O(L); exists purely to validate the O(1) parallel algorithms.
    """
    _validate_geometry(num_banks, block_words)
    decoder = BankDecoder(num_banks=num_banks, block_words=block_words)
    for index, address in enumerate(vector.addresses()):
        if decoder.bank_of(address) == bank:
            return index
    return None


def bank_sequence(
    vector: Vector, num_banks: int, block_words: int = 1
) -> List[int]:
    """The sequence of banks hit by consecutive vector elements.

    Reproduces the worked examples of section 4.1.2 (e.g. ``B=0, S=9,
    L=10`` with ``M=8, N=4`` gives ``0,2,4,6,1,3,5,7,2,4``).
    """
    _validate_geometry(num_banks, block_words)
    decoder = BankDecoder(num_banks=num_banks, block_words=block_words)
    return [decoder.bank_of(address) for address in vector.addresses()]

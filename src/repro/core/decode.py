"""Bank decoding and stride decomposition (section 4.1.1).

``DecodeBank(addr)`` maps a word address to the memory bank that owns it.
For an ``N``-word interleave block over ``M = 2**m`` banks it is the
bit-select ``(addr >> n) mod M`` — word interleave is the ``N = 1`` case.

Every stride can be written ``S = sigma * 2**s`` with ``sigma`` odd
(section 4.1.4); ``s`` — the number of trailing zero bits — determines both
the set of banks a vector touches (lemma 4.2: banks at modulo distances
that are multiples of ``2**s``) and the revisit period
``NextHit = 2**(m-s)`` (theorem 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.config import Topology
from repro.errors import ConfigurationError, VectorSpecError
from repro.params import is_power_of_two, log2_exact

__all__ = [
    "BankCoordinates",
    "BankDecoder",
    "StrideDecomposition",
    "TopologyDecoder",
    "decompose_stride",
]


@dataclass(frozen=True)
class BankDecoder:
    """Bit-select bank decoder for an interleaved memory.

    Parameters
    ----------
    num_banks:
        ``M = 2**m``, the number of banks.
    block_words:
        ``N = 2**n``, the number of consecutive words each bank holds
        before the next bank takes over.  ``1`` for word interleave,
        the cache-line size for cache-line interleave.
    """

    num_banks: int
    block_words: int = 1

    def __post_init__(self) -> None:
        if not is_power_of_two(self.num_banks):
            raise ConfigurationError(
                f"num_banks must be a power of two, got {self.num_banks}"
            )
        if not is_power_of_two(self.block_words):
            raise ConfigurationError(
                f"block_words must be a power of two, got {self.block_words}"
            )

    @cached_property
    def bank_bits(self) -> int:
        """``m`` such that ``num_banks == 2**m`` (cached: hot in
        ``bank_of``/``local_word``)."""
        return log2_exact(self.num_banks, "num_banks")

    @cached_property
    def block_bits(self) -> int:
        """``n`` such that ``block_words == 2**n`` (cached likewise)."""
        return log2_exact(self.block_words, "block_words")

    def bank_of(self, address: int) -> int:
        """``DecodeBank(addr) = (addr >> n) mod M`` (section 4.1.1)."""
        if address < 0:
            raise VectorSpecError(f"address must be >= 0, got {address}")
        return (address >> self.block_bits) & (self.num_banks - 1)

    def local_word(self, address: int) -> int:
        """Index of ``address`` within its bank's local storage.

        The bank sees blocks of ``block_words`` at a block pitch of
        ``num_banks`` blocks; words inside a block stay consecutive.
        """
        if address < 0:
            raise VectorSpecError(f"address must be >= 0, got {address}")
        block = address >> self.block_bits
        offset = address & (self.block_words - 1)
        return (block >> self.bank_bits) * self.block_words + offset

    def block_offset(self, address: int) -> int:
        """Offset of ``address`` within its interleave block
        (the paper's ``theta`` for the vector base)."""
        return address & (self.block_words - 1)


@dataclass(frozen=True)
class BankCoordinates:
    """Full physical decode of one word address: which channel, which
    rank on that channel, which bank within the rank, and the word's
    index in that bank's local storage."""

    bank: int
    channel: int
    rank: int
    bank_in_rank: int
    local_word: int


@dataclass(frozen=True)
class TopologyDecoder:
    """Channel/rank-aware address decode over a word-interleaved system.

    The system-wide bank index is the plain bit-select of
    :class:`BankDecoder`; the :class:`~repro.config.Topology` then splits
    that index into (channel, rank, bank-within-rank): the low channel
    bits alternate consecutive words across channels (channel-interleaved
    word addressing), the next bits pick the rank, the top bits the bank
    inside the rank.
    """

    topology: Topology
    block_words: int = 1
    banks: BankDecoder = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "banks",
            BankDecoder(
                num_banks=self.topology.total_banks,
                block_words=self.block_words,
            ),
        )

    def bank_of(self, address: int) -> int:
        return self.banks.bank_of(address)

    def channel_of(self, address: int) -> int:
        """Channel serving ``address`` — the low bits of its bank index."""
        return self.topology.channel_of_bank(self.banks.bank_of(address))

    def coordinates(self, address: int) -> BankCoordinates:
        """Decode ``address`` into full physical coordinates."""
        bank = self.banks.bank_of(address)
        return BankCoordinates(
            bank=bank,
            channel=self.topology.channel_of_bank(bank),
            rank=self.topology.rank_of_bank(bank),
            bank_in_rank=self.topology.bank_within_rank(bank),
            local_word=self.banks.local_word(address),
        )


@dataclass(frozen=True)
class StrideDecomposition:
    """``S mod M`` written as ``sigma * 2**s`` with ``sigma`` odd.

    The degenerate case ``S mod M == 0`` is represented with
    ``sigma == 1`` and ``s == m``: the vector touches a single bank and
    revisits it on every element (``delta == 2**(m-s) == 1``).
    """

    stride: int
    num_banks: int
    sigma: int
    s: int

    @property
    def bank_bits(self) -> int:
        return log2_exact(self.num_banks, "num_banks")

    @property
    def delta(self) -> int:
        """Theorem 4.4: ``NextHit(S) = 2**(m-s)``."""
        return 1 << (self.bank_bits - self.s)

    @property
    def banks_hit(self) -> int:
        """Number of distinct banks the vector can touch
        (``M / 2**s``, lemma 4.2) — the available parallelism."""
        return self.num_banks >> self.s

    @property
    def is_power_of_two_stride(self) -> bool:
        """True when the bus-visible stride is a power of two (or hits a
        single bank), i.e. the FirstHit address needs only shift/mask and
        the FHP can complete it in one cycle (section 5.2.2)."""
        return self.sigma == 1

    @property
    def k1(self) -> int:
        """Theorem 4.3's ``K1``: the smallest vector index hitting the bank
        at modulo distance ``2**s`` from the base bank.

        ``K1`` satisfies ``K1 * sigma === 1 (mod 2**(m-s))`` — it is the
        multiplicative inverse of the odd factor, which always exists.
        """
        modulus = self.delta
        if modulus == 1:
            return 0
        return pow(self.sigma, -1, modulus)


def decompose_stride(stride: int, num_banks: int) -> StrideDecomposition:
    """Decompose ``stride mod num_banks`` into ``sigma * 2**s``.

    Per lemma 4.1 only the least-significant ``m`` bits of the stride
    matter for the bank access pattern, so the decomposition operates on
    ``stride mod M``.
    """
    if stride <= 0:
        raise VectorSpecError(f"stride must be positive, got {stride}")
    if not is_power_of_two(num_banks):
        raise ConfigurationError(
            f"num_banks must be a power of two, got {num_banks}"
        )
    m = num_banks.bit_length() - 1
    s_mod = stride % num_banks
    if s_mod == 0:
        return StrideDecomposition(
            stride=stride, num_banks=num_banks, sigma=1, s=m
        )
    s = (s_mod & -s_mod).bit_length() - 1  # trailing zero count
    sigma = s_mod >> s
    return StrideDecomposition(
        stride=stride, num_banks=num_banks, sigma=sigma, s=s
    )

"""Per-bank subvector descriptors.

A :class:`SubVector` is the compact result of the FirstHit/NextHit
computation for one bank: first index, index increment, element count, and
the arithmetic progression of word addresses.  The PVA bank controllers
carry these around instead of expanded address lists, which is the whole
point of the parallel scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

from repro.core.decode import decompose_stride
from repro.core.firsthit import NO_HIT, first_hit, next_hit
from repro.types import Vector

__all__ = ["SubVector", "subvectors_by_bank"]


@dataclass(frozen=True)
class SubVector:
    """The slice of a vector owned by one bank of a word-interleaved memory.

    Attributes
    ----------
    bank:
        The owning bank.
    first_index:
        ``FirstHit(V, bank)`` — index of the first element held here.
    delta:
        ``NextHit(S)`` — index distance between consecutive elements here.
    count:
        Number of elements held here.
    first_address:
        Word address of element ``first_index``.
    address_step:
        ``S * delta`` — word-address distance between consecutive elements
        held here (always a multiple of the bank count).
    """

    bank: int
    first_index: int
    delta: int
    count: int
    first_address: int
    address_step: int

    @property
    def is_empty(self) -> bool:
        return self.count == 0

    @property
    def last_index(self) -> int:
        if self.is_empty:
            raise ValueError("empty subvector has no last index")
        return self.first_index + (self.count - 1) * self.delta

    def indices(self) -> Iterator[int]:
        """Vector indices of the elements held by this bank, ascending."""
        for j in range(self.count):
            yield self.first_index + j * self.delta

    def addresses(self) -> Iterator[int]:
        """Word addresses of the elements held by this bank, in index
        order — the stream a vector context issues to its SDRAM."""
        addr = self.first_address
        for _ in range(self.count):
            yield addr
            addr += self.address_step


def subvector_for_bank(vector: Vector, bank: int, num_banks: int) -> SubVector:
    """Compute the :class:`SubVector` of ``vector`` owned by ``bank``."""
    k = first_hit(vector, bank, num_banks)
    delta = next_hit(vector.stride, num_banks)
    if k is NO_HIT:
        return SubVector(
            bank=bank,
            first_index=0,
            delta=delta,
            count=0,
            first_address=vector.base,
            address_step=vector.stride * delta,
        )
    count = (vector.length - 1 - k) // delta + 1
    return SubVector(
        bank=bank,
        first_index=k,
        delta=delta,
        count=count,
        first_address=vector.base + vector.stride * k,
        address_step=vector.stride * delta,
    )


def subvectors_by_bank(vector: Vector, num_banks: int) -> Dict[int, SubVector]:
    """Subvector of every bank, keyed by bank number.

    Banks with no hit get an empty subvector, mirroring the broadcast: every
    bank controller sees every command and produces an answer, possibly
    "nothing for me".
    """
    return {
        bank: subvector_for_bank(vector, bank, num_banks)
        for bank in range(num_banks)
    }

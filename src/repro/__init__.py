"""repro — a reproduction of *Design of a Parallel Vector Access Unit for
SDRAM Memory Systems* (Mathew, McKee, Carter, Davis — HPCA 2000).

The library provides:

* the PVA mathematics (``repro.core``): closed-form FirstHit/NextHit for
  word-interleaved memories, the general cache-line-interleave algorithm,
  PLA implementation models and SplitVector;
* a cycle-level simulator of the PVA memory controller (``repro.pva``)
  over parametric SDRAM/SRAM device models;
* the paper's comparison systems (``repro.baselines``), kernels and trace
  generation (``repro.kernels``), and the experiment harness
  (``repro.experiments``) regenerating every figure and table;
* the simulation facade (``repro.api``) and the parallel experiment
  engine with result caching (``repro.engine``).

Quick start::

    from repro import simulate, SystemParams, kernel_by_name, build_trace

    params = SystemParams()                      # the paper's prototype
    trace = build_trace(kernel_by_name("copy"), stride=4, params=params)
    result = simulate(trace, params, system="pva-sdram")
    print(result.cycles, result.summary())

Constructing the memory-system classes directly
(``PVAMemorySystem(params)`` and friends imported from the top level) is
deprecated in favour of :func:`repro.api.build_system` /
:func:`repro.api.simulate`; the old names keep working but emit a
``DeprecationWarning``.
"""

import importlib
import warnings

from repro.api import (
    available_systems,
    build_system,
    register_system,
    simulate,
    system_entry,
    unregister_system,
)
from repro.engine.resilience import BatchResult, PointFailure, RetryPolicy
from repro.core import (
    NO_HIT,
    bank_subvector,
    first_hit,
    hit_count,
    next_hit,
    split_vector,
    subvectors_by_bank,
)
from repro.errors import ConfigurationError, ReproError, SimulationTimeout
from repro.kernels import ALIGNMENTS, KERNELS, build_trace, kernel_by_name
from repro.params import SDRAMTiming, SRAMTiming, SystemParams
from repro.sim import RunResult
from repro.types import AccessType, Vector, VectorCommand
from repro.vm import MMCTLB, PageMapping

__version__ = "1.0.0"

#: Old construction paths, kept as deprecation shims: top-level access
#: resolves lazily (PEP 562) and points callers at the repro.api facade.
_DEPRECATED_CONSTRUCTORS = {
    "PVAMemorySystem": ("repro.pva", 'build_system("pva-sdram", params)'),
    "CacheLineSerialSDRAM": (
        "repro.baselines",
        'build_system("cacheline-serial", params)',
    ),
    "GatheringSerialSDRAM": (
        "repro.baselines",
        'build_system("gathering-serial", params)',
    ),
    "make_pva_sram": ("repro.baselines", 'build_system("pva-sram", params)'),
}


def __getattr__(name):
    if name in _DEPRECATED_CONSTRUCTORS:
        module_name, replacement = _DEPRECATED_CONSTRUCTORS[name]
        warnings.warn(
            f"importing {name} from the top-level repro package is "
            f"deprecated; use repro.api: {replacement} (or import the "
            f"class from {module_name} directly)",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(importlib.import_module(module_name), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AccessType",
    "Vector",
    "VectorCommand",
    "SystemParams",
    "SDRAMTiming",
    "SRAMTiming",
    "simulate",
    "build_system",
    "register_system",
    "unregister_system",
    "available_systems",
    "system_entry",
    "BatchResult",
    "PointFailure",
    "RetryPolicy",
    "PVAMemorySystem",
    "CacheLineSerialSDRAM",
    "GatheringSerialSDRAM",
    "make_pva_sram",
    "RunResult",
    "first_hit",
    "next_hit",
    "hit_count",
    "bank_subvector",
    "subvectors_by_bank",
    "split_vector",
    "NO_HIT",
    "KERNELS",
    "ALIGNMENTS",
    "kernel_by_name",
    "build_trace",
    "MMCTLB",
    "PageMapping",
    "ReproError",
    "ConfigurationError",
    "SimulationTimeout",
    "__version__",
]

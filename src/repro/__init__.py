"""repro — a reproduction of *Design of a Parallel Vector Access Unit for
SDRAM Memory Systems* (Mathew, McKee, Carter, Davis — HPCA 2000).

The library provides:

* the PVA mathematics (``repro.core``): closed-form FirstHit/NextHit for
  word-interleaved memories, the general cache-line-interleave algorithm,
  PLA implementation models and SplitVector;
* a cycle-level simulator of the PVA memory controller (``repro.pva``)
  over parametric SDRAM/SRAM device models;
* the paper's comparison systems (``repro.baselines``), kernels and trace
  generation (``repro.kernels``), and the experiment harness
  (``repro.experiments``) regenerating every figure and table;
* the simulation facade (``repro.api``) and the parallel experiment
  engine with result caching (``repro.engine``).

Quick start::

    from repro import simulate, SystemParams, kernel_by_name, build_trace

    params = SystemParams()                      # the paper's prototype
    trace = build_trace(kernel_by_name("copy"), stride=4, params=params)
    result = simulate(trace, params, system="pva-sdram")
    print(result.cycles, result.summary())

Memory-system classes are no longer exported from the top level: build
systems through :func:`repro.api.build_system` / :func:`repro.api.simulate`
(or import a class from its home module, e.g. ``repro.pva``).  The old
top-level names were deprecated in favour of the facade and now raise
:class:`~repro.errors.ReproError` naming the replacement.
"""

from repro.api import (
    available_systems,
    build_system,
    register_system,
    simulate,
    system_entry,
    unregister_system,
)
from repro.engine.resilience import BatchResult, PointFailure, RetryPolicy
from repro.core import (
    NO_HIT,
    bank_subvector,
    first_hit,
    hit_count,
    next_hit,
    split_vector,
    subvectors_by_bank,
)
from repro.errors import ConfigurationError, ReproError, SimulationTimeout
from repro.kernels import ALIGNMENTS, KERNELS, build_trace, kernel_by_name
from repro.params import SDRAMTiming, SRAMTiming, SystemParams
from repro.sim import RunResult
from repro.types import AccessType, Vector, VectorCommand
from repro.vm import MMCTLB, PageMapping

__version__ = "1.0.0"

#: Construction paths removed after their deprecation period: top-level
#: access raises a ReproError pointing at the repro.api facade (and the
#: class's home module for callers that need the type itself).
_REMOVED_CONSTRUCTORS = {
    "PVAMemorySystem": ("repro.pva", 'build_system("pva-sdram", params)'),
    "CacheLineSerialSDRAM": (
        "repro.baselines",
        'build_system("cacheline-serial", params)',
    ),
    "GatheringSerialSDRAM": (
        "repro.baselines",
        'build_system("gathering-serial", params)',
    ),
    "make_pva_sram": ("repro.baselines", 'build_system("pva-sram", params)'),
}


def __getattr__(name):
    if name in _REMOVED_CONSTRUCTORS:
        module_name, replacement = _REMOVED_CONSTRUCTORS[name]
        raise ReproError(
            f"{name} is no longer exported from the top-level repro "
            f"package; use repro.api: {replacement} (or import the "
            f"class from {module_name} directly)"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AccessType",
    "Vector",
    "VectorCommand",
    "SystemParams",
    "SDRAMTiming",
    "SRAMTiming",
    "simulate",
    "build_system",
    "register_system",
    "unregister_system",
    "available_systems",
    "system_entry",
    "BatchResult",
    "PointFailure",
    "RetryPolicy",
    "RunResult",
    "first_hit",
    "next_hit",
    "hit_count",
    "bank_subvector",
    "subvectors_by_bank",
    "split_vector",
    "NO_HIT",
    "KERNELS",
    "ALIGNMENTS",
    "kernel_by_name",
    "build_trace",
    "MMCTLB",
    "PageMapping",
    "ReproError",
    "ConfigurationError",
    "SimulationTimeout",
    "__version__",
]

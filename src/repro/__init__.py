"""repro — a reproduction of *Design of a Parallel Vector Access Unit for
SDRAM Memory Systems* (Mathew, McKee, Carter, Davis — HPCA 2000).

The library provides:

* the PVA mathematics (``repro.core``): closed-form FirstHit/NextHit for
  word-interleaved memories, the general cache-line-interleave algorithm,
  PLA implementation models and SplitVector;
* a cycle-level simulator of the PVA memory controller (``repro.pva``)
  over parametric SDRAM/SRAM device models;
* the paper's comparison systems (``repro.baselines``), kernels and trace
  generation (``repro.kernels``), and the experiment harness
  (``repro.experiments``) regenerating every figure and table.

Quick start::

    from repro import (
        PVAMemorySystem, SystemParams, kernel_by_name, build_trace,
    )

    params = SystemParams()                      # the paper's prototype
    trace = build_trace(kernel_by_name("copy"), stride=4, params=params)
    result = PVAMemorySystem(params).run(trace)
    print(result.cycles, result.summary())
"""

from repro.baselines import (
    CacheLineSerialSDRAM,
    GatheringSerialSDRAM,
    make_pva_sram,
)
from repro.core import (
    NO_HIT,
    bank_subvector,
    first_hit,
    hit_count,
    next_hit,
    split_vector,
    subvectors_by_bank,
)
from repro.errors import ReproError
from repro.kernels import ALIGNMENTS, KERNELS, build_trace, kernel_by_name
from repro.params import SDRAMTiming, SRAMTiming, SystemParams
from repro.pva import PVAMemorySystem
from repro.sim import RunResult
from repro.types import AccessType, Vector, VectorCommand
from repro.vm import MMCTLB, PageMapping

__version__ = "1.0.0"

__all__ = [
    "AccessType",
    "Vector",
    "VectorCommand",
    "SystemParams",
    "SDRAMTiming",
    "SRAMTiming",
    "PVAMemorySystem",
    "CacheLineSerialSDRAM",
    "GatheringSerialSDRAM",
    "make_pva_sram",
    "RunResult",
    "first_hit",
    "next_hit",
    "hit_count",
    "bank_subvector",
    "subvectors_by_bank",
    "split_vector",
    "NO_HIT",
    "KERNELS",
    "ALIGNMENTS",
    "kernel_by_name",
    "build_trace",
    "MMCTLB",
    "PageMapping",
    "ReproError",
    "__version__",
]

"""Physical interleaving schemes.

The paper generalises memory geometry to ``W x N x M``: ``M`` banks, each
``W`` machine words wide, interleaved at ``N`` memory-words per block
(figure 4).  A *memory word* is ``W`` machine words, so each bank owns
contiguous runs of ``W * N`` machine words.

* word interleave: ``W = N = 1``
* cache-line interleave: ``N = line size in memory words``
* block interleave: ``N`` = some larger block factor

The scheme object answers, for any machine-word address: which bank owns
it, and where inside that bank it lives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, VectorSpecError
from repro.params import is_power_of_two, log2_exact

__all__ = ["InterleaveScheme"]


@dataclass(frozen=True)
class InterleaveScheme:
    """A ``W x N x M`` interleaved memory geometry.

    Attributes
    ----------
    num_banks:
        ``M``, number of banks (power of two).
    block_words:
        ``N``, memory-words per interleave block (power of two).
    bank_width_words:
        ``W``, machine words per memory word (power of two).
    """

    num_banks: int
    block_words: int = 1
    bank_width_words: int = 1

    def __post_init__(self) -> None:
        for name in ("num_banks", "block_words", "bank_width_words"):
            if not is_power_of_two(getattr(self, name)):
                raise ConfigurationError(
                    f"{name} must be a power of two, got {getattr(self, name)}"
                )

    @classmethod
    def word(cls, num_banks: int) -> "InterleaveScheme":
        """Word interleave — consecutive machine words rotate banks."""
        return cls(num_banks=num_banks, block_words=1, bank_width_words=1)

    @classmethod
    def cache_line(
        cls, num_banks: int, line_words: int
    ) -> "InterleaveScheme":
        """Cache-line interleave — consecutive lines rotate banks."""
        return cls(
            num_banks=num_banks, block_words=line_words, bank_width_words=1
        )

    @property
    def chunk_words(self) -> int:
        """Contiguous machine words per bank per rotation (``W * N``)."""
        return self.block_words * self.bank_width_words

    @property
    def chunk_bits(self) -> int:
        return log2_exact(self.chunk_words, "chunk_words")

    @property
    def bank_bits(self) -> int:
        return log2_exact(self.num_banks, "num_banks")

    @property
    def logical_banks(self) -> int:
        """Number of logical banks after the section-4.1.3 transformation:
        ``W * N * M``."""
        return self.chunk_words * self.num_banks

    def bank_of(self, address: int) -> int:
        """Physical bank owning machine-word ``address``."""
        if address < 0:
            raise VectorSpecError(f"address must be >= 0, got {address}")
        return (address >> self.chunk_bits) & (self.num_banks - 1)

    def local_word(self, address: int) -> int:
        """Index of ``address`` within its bank's local storage."""
        if address < 0:
            raise VectorSpecError(f"address must be >= 0, got {address}")
        chunk = address >> self.chunk_bits
        offset = address & (self.chunk_words - 1)
        return (chunk >> self.bank_bits) * self.chunk_words + offset

    def logical_bank_of(self, address: int) -> int:
        """Logical bank (word-interleaved over ``W*N*M`` banks) owning
        ``address`` — simply ``address mod (W*N*M)``."""
        if address < 0:
            raise VectorSpecError(f"address must be >= 0, got {address}")
        return address & (self.logical_banks - 1)

    def physical_bank_of_logical(self, logical_bank: int) -> int:
        """Which physical bank hosts a given logical bank."""
        if not 0 <= logical_bank < self.logical_banks:
            raise ConfigurationError(
                f"logical bank {logical_bank} out of range "
                f"[0, {self.logical_banks})"
            )
        return logical_bank >> self.chunk_bits

"""Memory interleaving schemes and the logical-bank transformation that
reduces cache-line interleave to word interleave (section 4.1.3)."""

from repro.interleave.schemes import InterleaveScheme
from repro.interleave.logical import LogicalBankView

__all__ = ["InterleaveScheme", "LogicalBankView"]

"""The logical-bank transformation (section 4.1.3).

Cache-line interleave makes ``FirstHit`` hard (section 4.1.2's recursive
solver full of non-power-of-two divisions).  The paper's fix: view a
``W x N x M`` memory as ``W*N*M`` *logical* banks, each one word wide and
word-interleaved.  With ``N = 1`` every vector access falls into the easy
"case 1", so the fast theorems of section 4.1.4 apply — at the price of
``W*N`` copies of the FirstHit logic per physical bank controller.

:class:`LogicalBankView` packages that construction: it answers FirstHit /
hit-count / subvector queries for a *physical* bank by consulting the
word-interleave closed forms on each of the physical bank's logical banks
and merging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.firsthit import NO_HIT, first_hit, next_hit
from repro.errors import ConfigurationError
from repro.interleave.schemes import InterleaveScheme
from repro.types import Vector

__all__ = ["LogicalBankView"]


@dataclass(frozen=True)
class LogicalBankView:
    """FirstHit machinery for an arbitrary ``W x N x M`` interleave, built
    from ``W*N`` copies of the word-interleave logic per physical bank."""

    scheme: InterleaveScheme

    def _logical_banks_of(self, physical_bank: int) -> range:
        if not 0 <= physical_bank < self.scheme.num_banks:
            raise ConfigurationError(
                f"bank {physical_bank} out of range for "
                f"{self.scheme.num_banks} banks"
            )
        start = physical_bank * self.scheme.chunk_words
        return range(start, start + self.scheme.chunk_words)

    def first_hit(self, vector: Vector, physical_bank: int) -> Optional[int]:
        """Index of the first element of ``vector`` held by
        ``physical_bank``, or ``None``.

        In hardware all ``W*N`` FirstHit units evaluate concurrently and a
        comparator tree takes the minimum; here that is a ``min`` over the
        logical-bank results.
        """
        best: Optional[int] = None
        m_logical = self.scheme.logical_banks
        for logical in self._logical_banks_of(physical_bank):
            k = first_hit(vector, logical, m_logical)
            if k is not NO_HIT and (best is None or k < best):
                best = k
        return best

    def hit_indices(self, vector: Vector, physical_bank: int) -> List[int]:
        """All vector indices held by ``physical_bank``, ascending.

        Merges the arithmetic progressions of the constituent logical
        banks; each progression has common difference
        ``NextHit = 2**(m'-s)`` in the ``W*N*M``-bank logical space.
        """
        m_logical = self.scheme.logical_banks
        delta = next_hit(vector.stride, m_logical)
        indices: List[int] = []
        for logical in self._logical_banks_of(physical_bank):
            k = first_hit(vector, logical, m_logical)
            if k is NO_HIT:
                continue
            indices.extend(range(k, vector.length, delta))
        indices.sort()
        return indices

    def subvector(
        self, vector: Vector, physical_bank: int
    ) -> List[Tuple[int, int]]:
        """``(index, word_address)`` pairs for every element of ``vector``
        held by ``physical_bank``, in index order."""
        return [
            (index, vector.base + index * vector.stride)
            for index in self.hit_indices(vector, physical_bank)
        ]

    def hit_count(self, vector: Vector, physical_bank: int) -> int:
        """Number of elements of ``vector`` held by ``physical_bank``."""
        return len(self.hit_indices(vector, physical_bank))

"""Memory-controller TLB with power-of-two super-pages (section 4.3.2).

The paper's ``SplitVector`` algorithm assumes the memory controller "has
access to the page table and the function ``mmc_tlb_lookup(vaddress)``
returns the physical address corresponding to virtual address ``vaddress``
and the size of the superpage it is contained in" — this module is that
function.

Pages here are sized in *words* and must be powers of two, as the paper
assumes ("the size of a superpage is always a power of 2").  Mappings may
be registered explicitly, or the TLB can be built identity-mapped for
experiments that do not exercise paging.  Pages are kept sorted by
virtual base so lookups and overlap checks are O(log n).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError, TLBMissError
from repro.params import is_power_of_two

__all__ = ["PageMapping", "MMCTLB"]


@dataclass(frozen=True)
class PageMapping:
    """One super-page: a virtual page base mapped to a physical frame base.

    Both bases must be aligned to the page size.
    """

    virtual_base: int
    physical_base: int
    page_words: int

    def __post_init__(self) -> None:
        if not is_power_of_two(self.page_words):
            raise ConfigurationError(
                f"page_words must be a power of two, got {self.page_words}"
            )
        if self.virtual_base % self.page_words:
            raise ConfigurationError(
                f"virtual_base {self.virtual_base} not aligned to page of "
                f"{self.page_words} words"
            )
        if self.physical_base % self.page_words:
            raise ConfigurationError(
                f"physical_base {self.physical_base} not aligned to page of "
                f"{self.page_words} words"
            )

    @property
    def virtual_end(self) -> int:
        return self.virtual_base + self.page_words

    def contains(self, vaddr: int) -> bool:
        return self.virtual_base <= vaddr < self.virtual_end

    def translate(self, vaddr: int) -> int:
        return self.physical_base + (vaddr - self.virtual_base)


class MMCTLB:
    """The memory controller's view of the page table.

    ``lookup`` is the paper's ``mmc_tlb_lookup``: it returns the physical
    word address *and the page size*, which is what lets ``SplitVector``
    bound how many vector elements stay on the current super-page.
    """

    def __init__(self) -> None:
        self._pages: List[PageMapping] = []  # sorted by virtual_base
        self._bases: List[int] = []
        self.lookups = 0

    def map(self, mapping: PageMapping) -> None:
        """Register a super-page; overlapping virtual ranges are rejected."""
        position = bisect.bisect_left(self._bases, mapping.virtual_base)
        if position < len(self._pages):
            right = self._pages[position]
            if mapping.virtual_end > right.virtual_base:
                raise ConfigurationError(
                    f"page at {mapping.virtual_base} overlaps existing page "
                    f"at {right.virtual_base}"
                )
        if position > 0:
            left = self._pages[position - 1]
            if left.virtual_end > mapping.virtual_base:
                raise ConfigurationError(
                    f"page at {mapping.virtual_base} overlaps existing page "
                    f"at {left.virtual_base}"
                )
        self._pages.insert(position, mapping)
        self._bases.insert(position, mapping.virtual_base)

    @classmethod
    def identity(cls, total_words: int, page_words: int) -> "MMCTLB":
        """An identity-mapped TLB covering ``total_words`` of memory with
        uniform super-pages of ``page_words`` — the configuration under
        which ``SplitVector`` degenerates to simple chunking."""
        tlb = cls()
        # Bulk build: the pages are disjoint by construction.
        base = 0
        while base < total_words:
            tlb._pages.append(
                PageMapping(
                    virtual_base=base, physical_base=base, page_words=page_words
                )
            )
            tlb._bases.append(base)
            base += page_words
        return tlb

    def lookup(self, vaddr: int) -> Tuple[int, int]:
        """``mmc_tlb_lookup``: map a virtual word address to
        ``(physical_address, page_words)``; raise :class:`TLBMissError` if
        unmapped."""
        self.lookups += 1
        position = bisect.bisect_right(self._bases, vaddr) - 1
        if position >= 0:
            page = self._pages[position]
            if page.contains(vaddr):
                return page.translate(vaddr), page.page_words
        raise TLBMissError(f"virtual word address {vaddr} is not mapped")

    def __len__(self) -> int:
        return len(self._pages)

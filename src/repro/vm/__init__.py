"""Virtual-memory substrate: the memory-controller TLB with super-pages
that the ``SplitVector`` algorithm of section 4.3.2 relies on."""

from repro.vm.tlb import MMCTLB, PageMapping

__all__ = ["MMCTLB", "PageMapping"]

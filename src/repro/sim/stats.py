"""Run results and statistics.

Every memory system in the library — the PVA unit, the PVA-SRAM variant
and the two serial baselines — reports the same :class:`RunResult`, so the
experiment harness can compare them uniformly.  ``cycles`` is the paper's
figure of merit: memory-bus clock cycles from the first command issue to
the completion of the last transaction, under the "infinitely fast CPU"
assumption of section 6.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sdram.devstats import DeviceStats

__all__ = ["BusStats", "ComponentCycles", "RunResult"]


@dataclass
class ComponentCycles:
    """Where one clocked component spent the run, cycle by cycle.

    Every simulated cycle of a run is attributed to exactly one of the
    three buckets, per component, by the simulation kernel
    (:class:`repro.sim.kernel.SimKernel`):

    * **busy** — the component changed observable state this cycle
      (issued an operation, moved data, retired a transaction);
    * **stalled** — it had pending work but could not act (waiting on a
      restimer, the bus, or another component);
    * **idle** — it had nothing to do.

    The invariant ``busy + stalled + idle == RunResult.cycles`` holds for
    every registered component; the bench harness cross-checks it.
    """

    busy: int = 0
    stalled: int = 0
    idle: int = 0

    @property
    def total(self) -> int:
        return self.busy + self.stalled + self.idle

    def as_dict(self) -> Dict[str, int]:
        return {"busy": self.busy, "stalled": self.stalled, "idle": self.idle}

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "ComponentCycles":
        return cls(
            busy=int(data.get("busy", 0)),
            stalled=int(data.get("stalled", 0)),
            idle=int(data.get("idle", 0)),
        )


@dataclass
class BusStats:
    """Occupancy of the shared vector bus."""

    request_cycles: int = 0
    data_cycles: int = 0
    turnaround_cycles: int = 0

    @property
    def busy_cycles(self) -> int:
        return self.request_cycles + self.data_cycles + self.turnaround_cycles

    def utilization(self, total_cycles: int) -> float:
        """Fraction of cycles the bus carried requests or data."""
        if total_cycles <= 0:
            return 0.0
        return self.busy_cycles / total_cycles


@dataclass
class RunResult:
    """Outcome of running one command trace through a memory system."""

    system: str
    cycles: int
    commands: int
    read_commands: int
    write_commands: int
    elements_read: int
    elements_written: int
    device: DeviceStats = field(default_factory=DeviceStats)
    bus: BusStats = field(default_factory=BusStats)
    #: Gathered cache lines for read commands, in trace order, when the
    #: run was asked to capture data (functional verification).
    read_lines: Optional[List[Tuple[int, ...]]] = None
    #: Per-command latency (issue cycle to completion: staging-transfer
    #: end for reads, commit for writes), in trace order.  Populated by
    #: the cycle-level PVA systems; None for the analytic baselines.
    command_latencies: Optional[List[int]] = None
    #: Per-component cycle attribution (component name ->
    #: :class:`ComponentCycles`), recorded by the simulation kernel.
    #: Identical between the tick and time-skip run loops, and every
    #: component's buckets sum to :attr:`cycles`.
    attribution: Optional[Dict[str, ComponentCycles]] = None

    @property
    def cycles_per_command(self) -> float:
        if self.commands == 0:
            return 0.0
        return self.cycles / self.commands

    def speedup_over(self, other: "RunResult") -> float:
        """How much faster this run is than ``other`` (ratio of cycles)."""
        if self.cycles == 0:
            raise ZeroDivisionError("run completed in zero cycles")
        return other.cycles / self.cycles

    def normalized_to(self, baseline: "RunResult") -> float:
        """Execution time of this run as a fraction of ``baseline`` —
        the paper's bar annotations (1.0 == 100%)."""
        if baseline.cycles == 0:
            raise ZeroDivisionError("baseline completed in zero cycles")
        return self.cycles / baseline.cycles

    def attribution_consistent(self) -> bool:
        """Does every component's busy/stalled/idle split sum to the
        run's total cycle count?  Vacuously True without attribution."""
        if not self.attribution:
            return True
        return all(
            entry.total == self.cycles for entry in self.attribution.values()
        )

    def attribution_summary(self) -> Optional[Dict[str, Dict[str, int]]]:
        """The attribution ledger as plain nested dicts (JSON-ready)."""
        if self.attribution is None:
            return None
        return {
            name: entry.as_dict()
            for name, entry in self.attribution.items()
        }

    def latency_summary(self) -> Optional[Dict[str, float]]:
        """Min/mean/max per-command latency, when recorded."""
        if not self.command_latencies:
            return None
        latencies = self.command_latencies
        return {
            "min": min(latencies),
            "mean": round(sum(latencies) / len(latencies), 2),
            "max": max(latencies),
        }

    def summary(self) -> Dict[str, float]:
        return {
            "system": self.system,
            "cycles": self.cycles,
            "commands": self.commands,
            "cycles_per_command": round(self.cycles_per_command, 2),
            "activates": self.device.activates,
            "precharges": self.device.precharges + self.device.auto_precharges,
            "row_reuse": self.device.row_reuse,
            "bus_utilization": round(self.bus.utilization(self.cycles), 3),
        }

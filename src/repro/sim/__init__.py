"""Simulation support: run results, statistics, and the memory-system
runner protocol shared by the PVA unit and all baseline systems."""

from repro.sim.stats import BusStats, RunResult
from repro.sim.runner import (
    MemorySystem,
    SimulationLimits,
    Watchdog,
    active_limits,
    simulation_limits,
)

__all__ = [
    "BusStats",
    "RunResult",
    "MemorySystem",
    "SimulationLimits",
    "Watchdog",
    "active_limits",
    "simulation_limits",
]

"""Simulation support: the shared clocked-component kernel, run results,
statistics, and the memory-system runner protocol shared by the PVA unit
and all baseline systems."""

from repro.sim.stats import BusStats, ComponentCycles, RunResult
from repro.sim.kernel import ClockedComponent, PassiveComponent, SimKernel
from repro.sim.runner import (
    MemorySystem,
    SimulationLimits,
    Watchdog,
    active_limits,
    simulation_limits,
)

__all__ = [
    "BusStats",
    "ClockedComponent",
    "ComponentCycles",
    "PassiveComponent",
    "RunResult",
    "SimKernel",
    "MemorySystem",
    "SimulationLimits",
    "Watchdog",
    "active_limits",
    "simulation_limits",
]

"""Per-device SDRAM command logging.

A :class:`CommandLog` records every command a device executes —
``(cycle, command, internal bank, row, column)`` — the same stream a
logic analyzer on the SDRAM command bus would capture.  Logging is opt-in
(attach a log to a device, or call
:meth:`repro.pva.system.PVAMemorySystem.attach_command_logs`) so the hot
simulation path pays nothing by default.

Uses: asserting precise command sequences in tests (e.g. that an
auto-precharge really was folded into the last column of a request),
debugging scheduling pathologies, and rendering human-readable timelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.sdram.commands import SDRAMCommand

__all__ = ["CommandEvent", "CommandLog"]


@dataclass(frozen=True)
class CommandEvent:
    """One SDRAM command as seen on a device's command bus."""

    cycle: int
    command: SDRAMCommand
    internal_bank: int
    row: Optional[int] = None
    column: Optional[int] = None

    def render(self) -> str:
        place = f"ib{self.internal_bank}"
        if self.command is SDRAMCommand.ACTIVATE:
            detail = f"row {self.row}"
        elif self.command.is_column:
            detail = f"col {self.column}"
        else:
            detail = ""
        return f"{self.cycle:>6}  {self.command.value:<10} {place} {detail}"


class CommandLog:
    """An append-only record of device commands."""

    def __init__(self) -> None:
        self.events: List[CommandEvent] = []

    def record(self, event: CommandEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def commands(self) -> List[SDRAMCommand]:
        """Just the command sequence, in issue order."""
        return [e.command for e in self.events]

    def of_kind(self, *kinds: SDRAMCommand) -> List[CommandEvent]:
        wanted = set(kinds)
        return [e for e in self.events if e.command in wanted]

    def columns(self) -> List[CommandEvent]:
        return [e for e in self.events if e.command.is_column]

    def activates(self) -> List[CommandEvent]:
        return self.of_kind(SDRAMCommand.ACTIVATE)

    def precharges(self) -> List[CommandEvent]:
        """Explicit precharges only (auto-precharge rides on columns)."""
        return self.of_kind(SDRAMCommand.PRECHARGE)

    def auto_precharges(self) -> List[CommandEvent]:
        return self.of_kind(SDRAMCommand.READ_AP, SDRAMCommand.WRITE_AP)

    def busy_cycles(self) -> int:
        """Distinct cycles carrying a non-NOP command."""
        return len({e.cycle for e in self.events})

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable timeline (one line per command)."""
        events: Iterable[CommandEvent] = self.events
        if limit is not None:
            events = self.events[:limit]
        lines = [" cycle  command    where"]
        lines.extend(e.render() for e in events)
        if limit is not None and len(self.events) > limit:
            lines.append(f"  ... ({len(self.events) - limit} more)")
        return "\n".join(lines)

    def verify_monotone(self) -> None:
        """Sanity invariant: cycles never decrease within a device log."""
        for before, after in zip(self.events, self.events[1:]):
            if after.cycle < before.cycle:
                raise AssertionError(
                    f"command log out of order: {before} then {after}"
                )

"""The shared clocked-component simulation kernel.

Every memory system in the library used to own a private run loop: the
PVA front end's bus/bank/completion loop, and one analytic
command-costing loop per serial baseline.  Each of them re-implemented
the same skeleton — watchdog ticking, an acted-this-cycle flag, the
next-event time-skip advance of :mod:`repro.sim.events`, and final
statistics assembly — and each copy drifted independently.  This module
replaces all of them with **one** loop.

A system decomposes itself into :class:`ClockedComponent`\\ s (the PVA
unit registers its front end, the vector bus, every bank controller and
a completion unit; a serial baseline registers a single component) and
hands them to a :class:`SimKernel`, which owns the canonical loop:

1. ``watchdog.check(cycle)`` once per iteration;
2. tick every component in registration order; each returns an *acted*
   flag — did it change observable state this cycle?
3. attribute the cycle to each component's busy/stalled/idle ledger;
4. advance time: one cycle after an acted iteration, otherwise (in
   time-skip mode) jump to the minimum of every component's
   ``next_event_cycle`` lower bound, capped at the watchdog's cycle
   limit so a deadlocked run still raises
   :class:`~repro.errors.SimulationTimeout`.

The lower-bound safety argument is therefore stated once, here, instead
of once per system: the kernel only skips after an iteration in which
**no** component acted, and each bound promises its component takes no
action strictly before it (assuming nobody else acts — which the
acted-flag aggregation guarantees).  An underestimated bound degrades
to a plain tick; it can never change simulated behaviour.

**Cycle attribution.**  The kernel keeps a per-component ledger of
where cycles went: *busy* (the component acted), *stalled* (it had
pending work but could not act), *idle* (nothing to do).  Ticked cycles
are classified directly; skipped spans are classified through each
component's :meth:`ClockedComponent.account` — legal because no state
changes inside a skipped span, so one query describes every cycle in
it.  The classification depends only on component state, never on which
cycles the loop happened to visit, so the ledger is identical between
the tick and time-skip loops and each component's buckets sum to the
run's total cycle count (:meth:`SimKernel.finalize` pads the tail when
a data transfer outlives the loop).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol, Tuple, runtime_checkable

from repro.errors import ConfigurationError
from repro.sim.events import HORIZON
from repro.sim.runner import Watchdog
from repro.sim.stats import ComponentCycles

__all__ = ["ClockedComponent", "PassiveComponent", "SimKernel"]

#: (busy, stalled, idle) cycle counts for one quiet span.
SpanSplit = Tuple[int, int, int]


@runtime_checkable
class ClockedComponent(Protocol):
    """One clocked piece of a memory system, driven by the kernel.

    ``name``
        Stable label used in the attribution ledger (and therefore in
        :class:`~repro.sim.stats.RunResult`, ``EngineMetrics`` and the
        bench report).
    ``tick(cycle)``
        One cycle of work.  Returns True iff the component changed
        observable state — the kernel may only time-skip after an
        iteration in which every component returned False.
    ``next_event_cycle(cycle)``
        Lower bound on the next cycle at which :meth:`tick` could act,
        under the contract of :mod:`repro.sim.events`.  Return
        :data:`~repro.sim.events.HORIZON` when only another component's
        action can re-enable this one.
    ``account(start, end)``
        Classify the quiet span ``[start, end)`` — cycles in which this
        component provably did not act — into (busy, stalled, idle)
        counts summing to ``end - start``.  Must depend only on current
        component state so the split is identical whether the loop
        visited those cycles one by one or jumped over them.  (A
        passive component such as the bus may report *busy* here: it
        carries data without taking scheduling actions.)
    """

    name: str

    def tick(self, cycle: int) -> bool:
        ...

    def next_event_cycle(self, cycle: int) -> int:
        ...

    def account(self, start: int, end: int) -> SpanSplit:
        ...


class PassiveComponent:
    """Convenience base for components that never take actions of their
    own (state machines driven entirely by other components, like the
    vector bus).  Subclasses override :meth:`account` to classify their
    quiet cycles; ``tick`` never acts and ``next_event_cycle`` never
    wakes the kernel."""

    name = "passive"

    def tick(self, cycle: int) -> bool:
        return False

    def next_event_cycle(self, cycle: int) -> int:
        return HORIZON

    def account(self, start: int, end: int) -> SpanSplit:
        return (0, 0, end - start)


class SimKernel:
    """The canonical run loop over a registry of clocked components.

    Parameters
    ----------
    watchdog:
        The run's :class:`~repro.sim.runner.Watchdog`; checked once per
        loop iteration, and its cycle limit caps every time-skip jump.
    time_skip:
        Resolved run-loop mode (see
        :func:`repro.sim.events.time_skip_enabled`).  False ticks every
        cycle — the reference loop; True enables the next-event jump.
    """

    def __init__(self, *, watchdog: Watchdog, time_skip: bool = True):
        self.watchdog = watchdog
        self.time_skip = time_skip
        self._components: List[ClockedComponent] = []
        self._ledger: Dict[str, ComponentCycles] = {}
        self._names: set = set()
        self._self_accounting: List[ClockedComponent] = []
        self.cycle = 0
        self._finalized_to: Optional[int] = None

    # ------------------------------------------------------------- #
    # Registry
    # ------------------------------------------------------------- #

    def register(self, component: ClockedComponent) -> ClockedComponent:
        """Add a component; tick order is registration order.

        A **self-accounting** component — one that exposes a
        ``ledger_names`` tuple and a ``finalize_ledger(total_cycles)``
        method — keeps its own per-name cycle ledger instead of being
        attributed by the kernel.  It represents several logical
        components stepped as one (the structure-of-arrays bank
        automaton speaks for all sixteen ``bank-*`` entries): the kernel
        reserves its names in ledger order here and merges its buckets
        at :meth:`finalize`; the per-cycle ``account`` splits it returns
        to the run loop are discarded.
        """
        name = getattr(component, "name", None)
        if not name:
            raise ConfigurationError(
                f"component {component!r} has no usable name"
            )
        if name in self._names:
            raise ConfigurationError(
                f"component name {name!r} registered twice"
            )
        self._names.add(name)
        ledger_names = getattr(component, "ledger_names", None)
        if ledger_names is None:
            self._ledger[name] = ComponentCycles()
        else:
            for entry_name in ledger_names:
                if entry_name in self._names:
                    raise ConfigurationError(
                        f"component name {entry_name!r} registered twice"
                    )
                self._names.add(entry_name)
                self._ledger[entry_name] = ComponentCycles()
            self._self_accounting.append(component)
        self._components.append(component)
        return component

    @property
    def components(self) -> Tuple[ClockedComponent, ...]:
        return tuple(self._components)

    # ------------------------------------------------------------- #
    # Bulk accounting
    # ------------------------------------------------------------- #

    def bulk_account(
        self, name: str, busy: int = 0, stalled: int = 0, idle: int = 0
    ) -> None:
        """Deposit a span's worth of cycles into ledger entry ``name``
        in one call.

        This is the closed-form backends' commit path: a component that
        resolves a whole service chain arithmetically attributes the
        chain's cycles here as bulk deltas instead of cycle-by-cycle
        ``account`` splits.  Deposits land in the live entry and are
        *added to* (not replaced by) whatever the component's
        ``finalize_ledger`` later contributes, so a backend may mix
        closed-form spans with event-stepped fallback spans freely.
        """
        if self._finalized_to is not None:
            raise ConfigurationError(
                f"bulk_account({name!r}) after the ledger was finalized"
            )
        entry = self._ledger.get(name)
        if entry is None:
            raise ConfigurationError(
                f"bulk_account: unknown ledger entry {name!r}"
            )
        if busy < 0 or stalled < 0 or idle < 0:
            raise ConfigurationError(
                f"bulk_account({name!r}): negative delta "
                f"(busy={busy}, stalled={stalled}, idle={idle})"
            )
        entry.busy += busy
        entry.stalled += stalled
        entry.idle += idle

    # ------------------------------------------------------------- #
    # The loop
    # ------------------------------------------------------------- #

    def run(self, done: Callable[[], bool]) -> int:
        """Drive all registered components until ``done()``; return the
        final cycle (the first cycle value at which ``done`` held)."""
        if not self._components:
            raise ConfigurationError(
                "SimKernel.run called with no registered components"
            )
        components = self._components
        ledger = self._ledger
        watchdog = self.watchdog
        time_skip = self.time_skip
        cycle = self.cycle
        # Hot-loop locals: bound methods and ledger entries resolved once,
        # indexed by registration position.
        n = len(components)
        positions = range(n)
        ticks = [component.tick for component in components]
        bounds = [component.next_event_cycle for component in components]
        accounts = [component.account for component in components]
        # Self-accounting components write their own ledgers; the run
        # loop's per-cycle attribution for them lands in a throwaway
        # entry (their account() is a constant-cost placeholder).
        entries = [
            ledger[component.name]
            if component.name in ledger
            else ComponentCycles()
            for component in components
        ]
        acted_flags = [False] * n
        # Dispatch gating: after a no-act iteration every component's
        # lower bound is cached; on later cycles a component whose cached
        # bound is still ahead is not re-polled at all.  A cached bound
        # is only trusted while *nothing* has acted since it was computed
        # (the events.py contract: "assuming no other component acts") —
        # any action, even by an earlier component in the same cycle,
        # voids the cache, so gated components are exactly those the old
        # loop would have ticked to no effect.  Works in both run-loop
        # modes; in skip mode the same cache also feeds the jump target.
        cached = [0] * n
        cache_valid = False
        while not done():
            watchdog.check(cycle)
            acted_any = False
            for i in positions:
                if cache_valid and not acted_any and cached[i] > cycle:
                    acted_flags[i] = False
                    continue
                acted = ticks[i](cycle)
                acted_flags[i] = acted
                if acted:
                    acted_any = True
            # -- attribute this (visited) cycle ----------------------
            # Skipped-dispatch components take the non-acted branch: the
            # account() split is what the old always-tick loop recorded
            # for them, so the ledger is invariant under gating.
            for i in positions:
                if acted_flags[i]:
                    entries[i].busy += 1
                else:
                    busy, stalled, idle = accounts[i](cycle, cycle + 1)
                    entry = entries[i]
                    entry.busy += busy
                    entry.stalled += stalled
                    entry.idle += idle
            # -- advance time ----------------------------------------
            # Reference loop: one cycle at a time.  Fast path: after an
            # iteration in which nothing acted, jump to the earliest
            # cycle at which anything *could* happen — the min over
            # every component's lower bound, clamped to the watchdog's
            # deadline so a deadlocked run still times out.  A bound at
            # or below the current cycle degrades to a plain tick.
            if acted_any:
                cache_valid = False
                cycle += 1
                continue
            target = HORIZON
            for i in positions:
                if not cache_valid or cached[i] <= cycle:
                    cached[i] = bounds[i](cycle)
                bound = cached[i]
                if bound < target:
                    target = bound
            cache_valid = True
            if time_skip:
                target = watchdog.clamp_skip(target)
                if target > cycle + 1:
                    for i in positions:
                        busy, stalled, idle = accounts[i](cycle + 1, target)
                        entry = entries[i]
                        entry.busy += busy
                        entry.stalled += stalled
                        entry.idle += idle
                    cycle = target
                    continue
            cycle += 1
        self.cycle = cycle
        return cycle

    # ------------------------------------------------------------- #
    # Attribution ledger
    # ------------------------------------------------------------- #

    def finalize(self, total_cycles: int) -> Dict[str, ComponentCycles]:
        """Close the ledger at ``total_cycles`` and return it.

        The loop exits as soon as the last transaction is accounted for,
        which can be *before* its final data transfer leaves the bus; the
        tail span ``[exit_cycle, total_cycles)`` is attributed here so
        every component's buckets sum to the run's reported cycle count.
        Idempotent for a fixed ``total_cycles``.
        """
        if self._finalized_to is None:
            if total_cycles < self.cycle:
                raise ConfigurationError(
                    f"finalize({total_cycles}) below the kernel's final "
                    f"cycle {self.cycle}"
                )
            if total_cycles > self.cycle:
                for component in self._components:
                    if component.name not in self._ledger:
                        continue  # self-accounting: closes its own tail
                    busy, stalled, idle = component.account(
                        self.cycle, total_cycles
                    )
                    entry = self._ledger[component.name]
                    entry.busy += busy
                    entry.stalled += stalled
                    entry.idle += idle
            for component in self._self_accounting:
                merged = component.finalize_ledger(total_cycles)
                for entry_name in component.ledger_names:
                    if entry_name not in merged:
                        raise ConfigurationError(
                            f"{component.name}: finalize_ledger returned "
                            f"no entry for {entry_name!r}"
                        )
                    # Merge by addition: :meth:`bulk_account` deposits
                    # already live in the reserved entry (zero for
                    # backends that never bulk-deposit), and
                    # finalize_ledger returns only the component's own
                    # event-stepped buckets.
                    entry = self._ledger[entry_name]
                    contribution = merged[entry_name]
                    entry.busy += contribution.busy
                    entry.stalled += contribution.stalled
                    entry.idle += contribution.idle
            self._finalized_to = total_cycles
        elif total_cycles != self._finalized_to:
            raise ConfigurationError(
                f"kernel already finalized at {self._finalized_to} cycles; "
                f"cannot re-finalize at {total_cycles}"
            )
        return dict(self._ledger)

    @property
    def ledger(self) -> Dict[str, ComponentCycles]:
        """Live view of the attribution ledger (component name ->
        :class:`~repro.sim.stats.ComponentCycles`)."""
        return dict(self._ledger)

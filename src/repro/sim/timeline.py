"""Text timelines from SDRAM command logs.

Turns the per-device :class:`~repro.sim.trace_log.CommandLog` streams of a
run into a compact bank x cycle Gantt chart — the view a hardware
engineer gets from a logic analyzer, and the quickest way to *see*
whether activates are being hidden under column traffic or whether a
single bank is serialising a stride.

Symbols: ``A`` activate, ``P`` explicit precharge, ``r``/``w`` column
read/write, ``R``/``W`` column with auto-precharge, ``.`` idle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.sdram.commands import SDRAMCommand
from repro.sim.trace_log import CommandLog

__all__ = ["render_timeline", "bank_utilization"]

_SYMBOLS: Dict[SDRAMCommand, str] = {
    SDRAMCommand.ACTIVATE: "A",
    SDRAMCommand.PRECHARGE: "P",
    SDRAMCommand.READ: "r",
    SDRAMCommand.WRITE: "w",
    SDRAMCommand.READ_AP: "R",
    SDRAMCommand.WRITE_AP: "W",
}


def render_timeline(
    logs: Sequence[CommandLog],
    start: int = 0,
    end: Optional[int] = None,
    width: int = 100,
) -> str:
    """Render one row per bank over the cycle window ``[start, end)``.

    ``end`` defaults to the last recorded event + 1; windows wider than
    ``width`` cycles are truncated with an ellipsis note.
    """
    last = 0
    for log in logs:
        if log.events:
            last = max(last, log.events[-1].cycle)
    if end is None:
        end = last + 1
    end = max(end, start)
    truncated = end - start > width
    window_end = start + width if truncated else end

    lines: List[str] = []
    header_span = window_end - start
    ruler = []
    for offset in range(header_span):
        cycle = start + offset
        ruler.append("|" if cycle % 10 == 0 else " ")
    lines.append("bank " + "".join(ruler) + f"   [{start}..{window_end})")
    for bank, log in enumerate(logs):
        row = ["."] * header_span
        for event in log.events:
            if start <= event.cycle < window_end:
                row[event.cycle - start] = _SYMBOLS.get(event.command, "?")
        lines.append(f"{bank:>4} " + "".join(row))
    if truncated:
        lines.append(f"     ... {end - window_end} more cycles")
    lines.append(
        "     A=activate P=precharge r/w=read/write R/W=with auto-precharge"
    )
    return "\n".join(lines)


def bank_utilization(
    logs: Sequence[CommandLog], total_cycles: int
) -> List[float]:
    """Fraction of cycles each bank's command bus carried a command."""
    if total_cycles <= 0:
        return [0.0] * len(logs)
    return [log.busy_cycles() / total_cycles for log in logs]

"""The memory-system protocol every simulated system implements, plus
the trace-level simulation watchdog shared by all of them.

The watchdog turns runaway simulations into contained errors: every
system's run loop ticks a :class:`Watchdog`, which raises
:class:`~repro.errors.SimulationTimeout` once the run exceeds its cycle
budget (``max_cycles_per_command`` x trace length) or an optional
wall-clock deadline.  An infinite-loop scheduler bug — or the fault
harness's deliberate cycle burner (:mod:`repro.faults`) — therefore
surfaces as a catchable :class:`~repro.errors.ReproError` instead of a
hung worker process.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Optional, Protocol, Sequence

from repro.errors import ConfigurationError, SimulationTimeout
from repro.sim.stats import RunResult
from repro.types import VectorCommand

__all__ = [
    "MemorySystem",
    "SimulationLimits",
    "Watchdog",
    "active_limits",
    "simulation_limits",
]

#: Default per-command cycle ceiling.  Generous: the slowest serial
#: baseline needs well under a thousand cycles per command.
_DEFAULT_MAX_CYCLES_PER_COMMAND = 4096


@dataclass(frozen=True)
class SimulationLimits:
    """Watchdog budgets applied to every simulation run.

    ``max_cycles_per_command`` bounds the simulated-cycle count at
    ``max(1, len(trace)) * max_cycles_per_command``.
    ``max_wall_seconds`` (None disables it) additionally bounds the
    host wall-clock time of one ``run`` call, catching loops that stall
    without advancing the cycle counter.
    """

    max_cycles_per_command: int = _DEFAULT_MAX_CYCLES_PER_COMMAND
    max_wall_seconds: Optional[float] = None

    def __post_init__(self):
        if self.max_cycles_per_command < 1:
            raise ConfigurationError(
                "max_cycles_per_command must be positive, got "
                f"{self.max_cycles_per_command}"
            )
        if self.max_wall_seconds is not None and self.max_wall_seconds <= 0:
            raise ConfigurationError(
                "max_wall_seconds must be positive or None, got "
                f"{self.max_wall_seconds}"
            )


_active = SimulationLimits()


def active_limits() -> SimulationLimits:
    """The limits new :class:`Watchdog` instances pick up by default."""
    return _active


@contextmanager
def simulation_limits(
    max_cycles_per_command: Optional[int] = None,
    max_wall_seconds: Optional[float] = None,
):
    """Temporarily override the default watchdog budgets.

    >>> with simulation_limits(max_cycles_per_command=64):
    ...     simulate(trace, params)  # doctest: +SKIP
    """
    global _active
    previous = _active
    overrides = {}
    if max_cycles_per_command is not None:
        overrides["max_cycles_per_command"] = max_cycles_per_command
    if max_wall_seconds is not None:
        overrides["max_wall_seconds"] = max_wall_seconds
    _active = replace(previous, **overrides)
    try:
        yield _active
    finally:
        _active = previous


class Watchdog:
    """Per-run cycle and wall-clock budget enforcement.

    Construct one per ``run`` call with the trace length, then call
    :meth:`check` with the current simulated cycle once per loop
    iteration.  The wall clock is consulted every 1024 checks *or*
    every 1024 simulated cycles, whichever comes first; the common-case
    per-iteration cost stays an integer compare.  The cycle-stride
    probe matters under the time-skip run loop, where a single check
    can stand for thousands of skipped cycles — counting checks alone
    would let a slow run blow far past its wall-clock budget; the
    check-count probe still covers loops that stall without advancing
    the cycle counter.
    """

    _WALL_CHECK_MASK = 1023
    #: Simulated-cycle stride between wall-clock probes.
    _WALL_PROBE_STRIDE = 1024

    def __init__(
        self,
        commands: int,
        *,
        system: str = "?",
        limits: Optional[SimulationLimits] = None,
    ):
        limits = limits if limits is not None else _active
        self.system = system
        self.cycle_limit = max(1, commands) * limits.max_cycles_per_command
        self.deadline = (
            time.monotonic() + limits.max_wall_seconds
            if limits.max_wall_seconds is not None
            else None
        )
        self._checks = 0
        self._next_wall_probe_cycle = 0

    def clamp_skip(self, target: int) -> int:
        """Cap a time-skip jump target at the first cycle :meth:`check`
        rejects (``cycle_limit + 1``).

        The single authority on how skip advances interact with the
        cycle budget: jumping exactly to ``cycle_limit + 1`` lets the
        next :meth:`check` raise, while jumping past it would skip over
        the deadline and to ``cycle_limit`` or below would stall the
        timeout by a lap of plain ticks.
        """
        limit = self.cycle_limit + 1
        return limit if target > limit else target

    def check(self, cycle: int) -> None:
        """Raise :class:`SimulationTimeout` if a budget is exhausted."""
        if cycle > self.cycle_limit:
            raise SimulationTimeout(
                f"{self.system}: simulation exceeded {self.cycle_limit} "
                "cycles — scheduler deadlock or runaway trace"
            )
        self._checks += 1
        if self.deadline is None:
            return
        if (
            cycle >= self._next_wall_probe_cycle
            or not self._checks & self._WALL_CHECK_MASK
        ):
            self._next_wall_probe_cycle = cycle + self._WALL_PROBE_STRIDE
            if time.monotonic() > self.deadline:
                raise SimulationTimeout(
                    f"{self.system}: simulation exceeded its wall-clock "
                    f"budget at cycle {cycle}"
                )


class MemorySystem(Protocol):
    """A memory system that can execute a trace of vector commands.

    Implementations: :class:`repro.pva.system.PVAMemorySystem`,
    :class:`repro.baselines.cacheline_serial.CacheLineSerialSDRAM`,
    :class:`repro.baselines.gathering_serial.GatheringSerialSDRAM`, and the
    PVA-SRAM variant.
    """

    name: str

    def run(
        self, commands: Sequence[VectorCommand], capture_data: bool = False
    ) -> RunResult:
        """Execute ``commands`` in order and report cycle-level results."""
        ...

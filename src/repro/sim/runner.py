"""The memory-system protocol every simulated system implements."""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.sim.stats import RunResult
from repro.types import VectorCommand

__all__ = ["MemorySystem"]


class MemorySystem(Protocol):
    """A memory system that can execute a trace of vector commands.

    Implementations: :class:`repro.pva.system.PVAMemorySystem`,
    :class:`repro.baselines.cacheline_serial.CacheLineSerialSDRAM`,
    :class:`repro.baselines.gathering_serial.GatheringSerialSDRAM`, and the
    PVA-SRAM variant.
    """

    name: str

    def run(
        self, commands: Sequence[VectorCommand], capture_data: bool = False
    ) -> RunResult:
        """Execute ``commands`` in order and report cycle-level results."""
        ...

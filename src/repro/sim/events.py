"""Next-event time skipping: the shared vocabulary of the fast path.

Cycle-accurate simulation traditionally advances the clock one cycle per
loop iteration, even though every stalled component already knows the
exact cycle at which its state can next change — an SDRAM restimer holds
its release cycle, the vector bus its busy-until cycle, a queued request
its ready cycle.  The **time-skip engine** exploits that: each component
exposes a ``next_event_cycle(cycle)`` lower bound, the run loop takes the
``min()`` over all of them, and when nothing happened this cycle the
clock jumps straight to that bound instead of ticking through the idle
gap.

The contract every bound must honour:

* it is a **lower bound** — the component provably takes no action and
  changes no observable state at any cycle strictly between ``cycle``
  and the returned value, *assuming no other component acts either*
  (the run loop only skips when the whole machine was idle, so any
  cross-component interaction resets the search);
* it may be **conservative** — returning ``cycle`` itself (or any
  earlier-than-necessary cycle) merely degrades the skip to a plain
  tick, never changes simulated behaviour;
* :data:`HORIZON` means "no self-timed event pending": the component
  can only be re-enabled by another component's action.

Because skipped cycles are exactly the iterations in which the reference
tick loop performs no state change, the fast path is cycle-exact with
``SystemParams(sim_mode="tick")`` — the differential suite in
``tests/sim/test_time_skip_equivalence.py`` holds the two loops to
byte-identical :class:`~repro.sim.stats.RunResult`\\ s.
"""

from __future__ import annotations

import os

__all__ = ["HORIZON", "time_skip_enabled"]

#: Sentinel "infinitely far" cycle: no self-timed event pending.  An int
#: (not ``float('inf')``) so arithmetic on simulated cycles stays exact.
HORIZON = 1 << 62

#: Environment variable overriding the run-loop aspect of
#: :attr:`SystemParams.sim_mode`:
#: ``0``/``off``/``false``/``no`` forces the reference tick loop,
#: any other non-empty value (except ``auto``) forces the fast path.
ENV_TOGGLE = "REPRO_TIME_SKIP"

_FALSY = ("0", "off", "false", "no")


def time_skip_enabled(params) -> bool:
    """Resolve the effective run-loop mode for ``params``.

    The :data:`ENV_TOGGLE` environment variable wins over the parameter
    when set (and not ``auto``/empty), so a whole experiment tree can be
    forced onto either loop without touching configuration objects.
    """
    env = os.environ.get(ENV_TOGGLE)
    if env is not None and env != "" and env.lower() != "auto":
        return env.lower() not in _FALSY
    return params.uses_time_skip

"""The configuration composition root.

Everything the simulators, analytic models and complexity estimators
need to know about the machine lives in one frozen, validated, hashable
container: :class:`GenParams` (the coreblocks-style *generation
parameters* idiom).  It composes

* device timing — :class:`SDRAMTiming` / :class:`SRAMTiming`,
* :class:`Topology` — channels x ranks x banks-per-rank geometry,
* the bank-controller microarchitecture knobs (vector contexts, FIFO
  depth, bypass paths, FirstHit-Calculate latency),
* the scheduler's ``row_policy``, and
* the ``sim_mode`` backend selector,

and owns the **canonical serialization**: :meth:`GenParams.to_dict` /
:meth:`GenParams.from_dict` round-trip exactly, and
:meth:`GenParams.config_key` is a stable content hash used by the engine
result cache, the service journal and the bench reports.  Bumping
:data:`CONFIG_SCHEMA_VERSION` is the single switch that retires every
stale cached document.

:class:`repro.params.SystemParams` remains as a thin compatibility
façade over this module — it accepts the historical flat field list and
forwards to a :class:`GenParams` (see ``SystemParams.gen``).

Topology addressing
-------------------
Word addresses are bank-interleaved exactly as before: the low
``log2(total_banks)`` bits of a word address select the bank.  Within
the bank index, the low ``log2(num_channels)`` bits name the channel
(channel-interleaved word addressing: consecutive words alternate
channels), the next ``log2(ranks_per_channel)`` bits name the rank on
that channel, and the remaining bits the bank within the rank.  Ranks
are organizational (electrical load / capacity) and share the channel's
timing; channels each carry their own 8-byte-per-cycle data path, so a
cache line staged to the CPU splits evenly across channels —
``channel_stage_cycles == stage_cycles // num_channels`` data cycles of
occupancy per channel.  Because every vector broadcast addresses all
banks and the staging split is uniform, the channels advance in
lock-step and one bus timeline models all of them; this is what keeps
every ``sim_mode`` backend bit-identical for multi-channel configs.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Type, TypeVar

from repro.errors import ConfigurationError
from repro.types import WORD_BYTES

__all__ = [
    "CONFIG_SCHEMA_VERSION",
    "ENV_SIM_MODE",
    "GenParams",
    "ROW_POLICIES",
    "SDRAMTiming",
    "SIM_MODES",
    "SRAMTiming",
    "Topology",
    "canonical_sim_mode",
    "is_power_of_two",
    "log2_exact",
]

#: Version stamp of the canonical config document (and, by adoption, of
#: the engine cache schema).  v4: GenParams/Topology introduction —
#: nested device/topology documents, ``sram`` timing and channel/rank
#: geometry join the schema; the legacy ``time_skip``/``precompute``
#: aliases leave it.  v5: ``"window"`` joins the ``sim_mode`` ladder —
#: cached result documents record the producing mode, so the enum
#: widening must invalidate them.
CONFIG_SCHEMA_VERSION = 5

#: The five simulation backends, from slowest/most-literal to fastest.
#: Each mode is bit-exact with the others (``RunResult`` equality is
#: held by the differential suites); they differ only in how the
#: machine is stepped:
#:
#: * ``"tick"`` — reference loop, every component ticked every cycle.
#: * ``"skip"`` — next-event time skipping, incremental FirstHit expansion.
#: * ``"precompute"`` — time skipping + broadcast-time hit schedules.
#: * ``"soa"`` — precompute + the structure-of-arrays bank automaton:
#:   all banks stepped as flat-array operations (:mod:`repro.pva.soa`).
#: * ``"window"`` — soa + closed-form broadcast-window resolution:
#:   whole per-bank service chains charged arithmetically from the
#:   precomputed hit schedules instead of event-stepped
#:   (:mod:`repro.pva.window`).
SIM_MODES = ("tick", "skip", "precompute", "soa", "window")

#: Environment variable overriding ``sim_mode`` at construction time
#: (mirrors ``REPRO_TIME_SKIP`` for the run loop): any of
#: :data:`SIM_MODES` forces that backend for every config object built
#: while it is set; empty or ``auto`` defers to the configuration.
ENV_SIM_MODE = "REPRO_SIM_MODE"

#: Valid scheduler row-management policies.  Kept in lock-step with
#: :mod:`repro.pva.rowpolicy` (a unit test cross-checks the registry) —
#: listed here so the composition root validates without importing the
#: simulator packages.
ROW_POLICIES = ("close", "history", "open", "paper")


def is_power_of_two(value: int) -> bool:
    """True iff ``value`` is a positive power of two."""
    return isinstance(value, int) and value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int, what: str = "value") -> int:
    """Return ``log2(value)`` for an exact power of two, else raise."""
    if not is_power_of_two(value):
        raise ConfigurationError(f"{what} must be a power of two, got {value}")
    return value.bit_length() - 1


def canonical_sim_mode(mode: str) -> str:
    """Validate ``mode`` against :data:`SIM_MODES` and apply the
    ``REPRO_SIM_MODE`` environment override (which, when set to a mode
    name, wins wholesale)."""
    env = os.environ.get(ENV_SIM_MODE)
    if env is not None:
        env = env.strip().lower()
        if env and env != "auto":
            if env not in SIM_MODES:
                raise ConfigurationError(
                    f"{ENV_SIM_MODE} must be one of {SIM_MODES} "
                    f"(or empty/'auto'), got {env!r}"
                )
            return env
    if mode not in SIM_MODES:
        raise ConfigurationError(
            f"sim_mode must be one of {SIM_MODES}, got {mode!r}"
        )
    return mode


@dataclass(frozen=True)
class SDRAMTiming:
    """Timing and geometry of one SDRAM bank (a 32-bit wide module built
    from x16 parts, per section 5.1).

    All latencies are in memory-bus clock cycles (100 MHz in the prototype).

    Attributes
    ----------
    t_rcd:
        RAS-to-CAS delay: cycles between a bank-activate (row open) and the
        first column command to that row.  Paper: 2.
    cas_latency:
        Cycles between a READ command and its data appearing on the device
        data pins.  Paper: 2.
    t_rp:
        Precharge period: cycles after a PRECHARGE before the internal bank
        can be activated again.  Paper models 2.
    t_wr:
        Write recovery: cycles after the last write datum before a
        precharge of the same internal bank may be issued.
    internal_banks:
        Independent banks (row buffers) inside one device.  Paper: 4.
    row_words:
        Row (page) size per internal bank in machine words.  A 2 KB page of
        a 32-bit module is 512 words.
    """

    t_rcd: int = 2
    cas_latency: int = 2
    t_rp: int = 2
    t_wr: int = 1
    internal_banks: int = 4
    row_words: int = 512
    #: Auto-refresh period in cycles; 0 disables refresh, which is what
    #: the paper's evaluation implicitly assumes.  A realistic 100 MHz
    #: part refreshing 8192 rows every 64 ms needs one refresh per ~780
    #: cycles.
    refresh_interval: int = 0
    #: Cycles one auto-refresh occupies the whole device (rows close,
    #: no activates until it completes).
    t_rfc: int = 8

    def __post_init__(self) -> None:
        for name in ("t_rcd", "cas_latency", "t_rp"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")
        if self.t_wr < 0:
            raise ConfigurationError("t_wr must be >= 0")
        if self.refresh_interval < 0:
            raise ConfigurationError("refresh_interval must be >= 0")
        if self.t_rfc < 1:
            raise ConfigurationError("t_rfc must be >= 1")
        if not is_power_of_two(self.internal_banks):
            raise ConfigurationError(
                f"internal_banks must be a power of two, got {self.internal_banks}"
            )
        if not is_power_of_two(self.row_words):
            raise ConfigurationError(
                f"row_words must be a power of two, got {self.row_words}"
            )

    @property
    def row_miss_penalty(self) -> int:
        """Cycles added by a row conflict versus an open-row hit."""
        return self.t_rp + self.t_rcd


@dataclass(frozen=True)
class SRAMTiming:
    """Timing of the idealized SRAM used by the PVA-SRAM comparison system:
    every access completes in ``access_cycles`` with no row state."""

    access_cycles: int = 1

    def __post_init__(self) -> None:
        if self.access_cycles < 1:
            raise ConfigurationError("access_cycles must be >= 1")


@dataclass(frozen=True)
class Topology:
    """Channel / rank / bank geometry of the memory system.

    The default ``1 x 1 x 16`` reproduces the paper's prototype exactly:
    one channel, one rank, sixteen word-interleaved banks.  All three
    dimensions must be powers of two so the bank index of a word address
    stays a contiguous low bit-field (see the module docstring for the
    bit layout).
    """

    num_channels: int = 1
    ranks_per_channel: int = 1
    banks_per_rank: int = 16

    def __post_init__(self) -> None:
        for name in ("num_channels", "ranks_per_channel", "banks_per_rank"):
            value = getattr(self, name)
            if not is_power_of_two(value):
                raise ConfigurationError(
                    f"{name} must be a power of two, got {value!r}"
                )

    @property
    def total_banks(self) -> int:
        """Banks across the whole system — the interleave factor."""
        return self.num_channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def channel_bits(self) -> int:
        return log2_exact(self.num_channels, "num_channels")

    @property
    def rank_bits(self) -> int:
        return log2_exact(self.ranks_per_channel, "ranks_per_channel")

    @property
    def bank_bits(self) -> int:
        """Bits selecting the bank within one rank."""
        return log2_exact(self.banks_per_rank, "banks_per_rank")

    @property
    def total_bank_bits(self) -> int:
        """``log2(total_banks)`` — the full bank-select field of a word
        address (channel + rank + in-rank bank bits)."""
        return self.channel_bits + self.rank_bits + self.bank_bits

    def channel_of_bank(self, bank: int) -> int:
        """Channel serving system-wide bank index ``bank`` (the low bits
        of the bank index: word-interleave alternates channels)."""
        return bank & (self.num_channels - 1)

    def rank_of_bank(self, bank: int) -> int:
        """Rank (within its channel) of system-wide bank index ``bank``."""
        return (bank >> self.channel_bits) & (self.ranks_per_channel - 1)

    def bank_within_rank(self, bank: int) -> int:
        """Position of system-wide bank index ``bank`` inside its rank."""
        return bank >> (self.channel_bits + self.rank_bits)


_D = TypeVar("_D")


def _sub_from_dict(cls: Type[_D], doc: Any, what: str) -> _D:
    """Build a nested config dataclass from a plain mapping, rejecting
    unknown keys (missing keys take their defaults)."""
    if not isinstance(doc, Mapping):
        raise ConfigurationError(
            f"{what} must be a mapping of field names, got {type(doc).__name__}"
        )
    allowed = {f.name for f in fields(cls)}
    unknown = sorted(set(doc) - allowed)
    if unknown:
        raise ConfigurationError(f"unknown {what} keys: {unknown}")
    return cls(**dict(doc))


@dataclass(frozen=True)
class GenParams:
    """The validated, hashable configuration of one simulated machine.

    Frozen; experiments derive variants with :func:`dataclasses.replace`.
    Defaults reproduce the paper's prototype (section 5.1): 16 banks of
    word-interleaved 32-bit SDRAM on one channel, 128-byte L2 lines
    (32-word vector commands), a split-transaction bus with 8
    outstanding transactions, and bank controllers with 4 vector
    contexts.
    """

    topology: Topology = field(default_factory=Topology)
    sdram: SDRAMTiming = field(default_factory=SDRAMTiming)
    sram: SRAMTiming = field(default_factory=SRAMTiming)
    cache_line_words: int = 32
    max_transactions: int = 8
    num_vector_contexts: int = 4
    request_fifo_depth: int = 8
    #: Cycles the FirstHit-Calculate multiply-add needs for a non-power-of-
    #: two stride (29.5 ns FPGA critical path -> 2 cycles at 100 MHz).
    fhc_latency: int = 2
    #: One dead cycle whenever the data-bus direction reverses (5.2.5).
    bus_turnaround: int = 1
    #: Enable the latency-reduction bypass paths of section 5.2.3.
    bypass_paths: bool = True
    #: Row-management policy — one of :data:`ROW_POLICIES`
    #: (:mod:`repro.pva.rowpolicy`).
    row_policy: str = "paper"
    #: Minimum cycles between vector-command issues from the front end.
    #: 0 models the paper's infinitely fast CPU (section 6.2).
    issue_interval: int = 0
    #: Simulation backend — one of :data:`SIM_MODES`.  Always stores the
    #: concrete label (the ``REPRO_SIM_MODE`` environment variable, when
    #: set to a mode name, overrides it wholesale at construction).
    sim_mode: str = "precompute"

    def __post_init__(self) -> None:
        if not isinstance(self.topology, Topology):
            raise ConfigurationError(
                f"topology must be a Topology, got {type(self.topology).__name__}"
            )
        if not isinstance(self.sdram, SDRAMTiming):
            raise ConfigurationError(
                f"sdram must be an SDRAMTiming, got {type(self.sdram).__name__}"
            )
        if not isinstance(self.sram, SRAMTiming):
            raise ConfigurationError(
                f"sram must be an SRAMTiming, got {type(self.sram).__name__}"
            )
        if not is_power_of_two(self.cache_line_words):
            raise ConfigurationError(
                "cache_line_words must be a power of two, got "
                f"{self.cache_line_words}"
            )
        if self.max_transactions < 1:
            raise ConfigurationError("max_transactions must be >= 1")
        if self.max_transactions > 8:
            raise ConfigurationError(
                "the vector bus carries a three-bit transaction id; "
                f"max_transactions must be <= 8, got {self.max_transactions}"
            )
        if self.num_vector_contexts < 1:
            raise ConfigurationError("num_vector_contexts must be >= 1")
        if self.request_fifo_depth < self.max_transactions:
            raise ConfigurationError(
                "the register file must hold as many entries as the bus "
                "allows outstanding transactions (section 5.2.2): depth "
                f"{self.request_fifo_depth} < {self.max_transactions}"
            )
        if self.fhc_latency < 1:
            raise ConfigurationError("fhc_latency must be >= 1")
        if self.bus_turnaround < 0:
            raise ConfigurationError("bus_turnaround must be >= 0")
        if self.issue_interval < 0:
            raise ConfigurationError("issue_interval must be >= 0")
        if not isinstance(self.bypass_paths, bool):
            raise ConfigurationError(
                f"bypass_paths must be a bool, got {self.bypass_paths!r}"
            )
        if self.row_policy not in ROW_POLICIES:
            raise ConfigurationError(
                f"row_policy must be one of {ROW_POLICIES}, "
                f"got {self.row_policy!r}"
            )
        if self.topology.num_channels > self.stage_cycles:
            raise ConfigurationError(
                "a cache line stages to the CPU in "
                f"{self.stage_cycles} data cycles, which cannot split "
                f"evenly across num_channels={self.topology.num_channels}; "
                "grow cache_line_words or shrink the channel count"
            )
        object.__setattr__(self, "sim_mode", canonical_sim_mode(self.sim_mode))

    # ---------------------------------------------------------- derived

    @property
    def num_banks(self) -> int:
        """Total interleaved banks across channels and ranks."""
        return self.topology.total_banks

    @property
    def bank_bits(self) -> int:
        return self.topology.total_bank_bits

    @property
    def line_bytes(self) -> int:
        return self.cache_line_words * WORD_BYTES

    @property
    def stage_cycles(self) -> int:
        """Data cycles to stage one cache line over the 128-bit BC bus
        (128 bytes at 8 bytes per cycle = 16, section 5.2.6) — summed
        over all channels."""
        return (self.cache_line_words * WORD_BYTES) // 8

    @property
    def channel_stage_cycles(self) -> int:
        """Data cycles one *channel* is occupied staging its share of a
        cache line — the line splits evenly across channels."""
        return self.stage_cycles // self.topology.num_channels

    @property
    def max_vector_length(self) -> int:
        """Longest vector one bus command may carry (one cache line)."""
        return self.cache_line_words

    @property
    def uses_time_skip(self) -> bool:
        """Whether this mode runs the next-event skip loop (every mode
        except the reference ``tick`` loop)."""
        return self.sim_mode != "tick"

    @property
    def uses_precompute(self) -> bool:
        """Whether this mode expands broadcast-time hit schedules
        (:mod:`repro.pva.schedule`)."""
        return self.sim_mode in ("precompute", "soa", "window")

    # ---------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, Any]:
        """The canonical, JSON-ready document for this configuration.

        Nested and complete: every field appears (no drift-prone
        hand-listing), stamped with :data:`CONFIG_SCHEMA_VERSION`.
        """
        doc: Dict[str, Any] = {"schema_version": CONFIG_SCHEMA_VERSION}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name in ("topology", "sdram", "sram"):
                doc[f.name] = {
                    sub.name: getattr(value, sub.name) for sub in fields(value)
                }
            else:
                doc[f.name] = value
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "GenParams":
        """Rebuild a :class:`GenParams` from :meth:`to_dict` output.

        Unknown keys are rejected (typo safety); missing keys take their
        defaults; a present ``schema_version`` must match.
        """
        if not isinstance(doc, Mapping):
            raise ConfigurationError(
                f"config document must be a mapping, got {type(doc).__name__}"
            )
        doc = dict(doc)
        version = doc.pop("schema_version", CONFIG_SCHEMA_VERSION)
        if version != CONFIG_SCHEMA_VERSION:
            raise ConfigurationError(
                f"config schema_version {version!r} is not the supported "
                f"{CONFIG_SCHEMA_VERSION}"
            )
        allowed = {f.name for f in fields(cls)}
        unknown = sorted(set(doc) - allowed)
        if unknown:
            raise ConfigurationError(f"unknown config keys: {unknown}")
        kwargs: Dict[str, Any] = {}
        for name, sub_cls in (
            ("topology", Topology),
            ("sdram", SDRAMTiming),
            ("sram", SRAMTiming),
        ):
            if name in doc:
                kwargs[name] = _sub_from_dict(sub_cls, doc.pop(name), name)
        kwargs.update(doc)
        return cls(**kwargs)

    def config_key(self) -> str:
        """Stable SHA-256 content address of the canonical document —
        the identity the engine cache, service journal and bench reports
        key on."""
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # --------------------------------------------------- compatibility

    def to_system_params(self):
        """The equivalent :class:`repro.params.SystemParams` façade."""
        from repro.params import SystemParams

        return SystemParams(
            num_banks=self.topology.total_banks,
            cache_line_words=self.cache_line_words,
            max_transactions=self.max_transactions,
            num_vector_contexts=self.num_vector_contexts,
            request_fifo_depth=self.request_fifo_depth,
            sdram=self.sdram,
            fhc_latency=self.fhc_latency,
            bus_turnaround=self.bus_turnaround,
            bypass_paths=self.bypass_paths,
            row_policy=self.row_policy,
            issue_interval=self.issue_interval,
            sim_mode=self.sim_mode,
            num_channels=self.topology.num_channels,
            ranks_per_channel=self.topology.ranks_per_channel,
            sram=self.sram,
        )

    @classmethod
    def from_system_params(cls, params) -> "GenParams":
        """Lift a :class:`repro.params.SystemParams` façade into the
        canonical container (``params.gen`` caches this)."""
        channels = params.num_channels * params.ranks_per_channel
        return cls(
            topology=Topology(
                num_channels=params.num_channels,
                ranks_per_channel=params.ranks_per_channel,
                banks_per_rank=params.num_banks // channels,
            ),
            sdram=params.sdram,
            sram=params.sram,
            cache_line_words=params.cache_line_words,
            max_transactions=params.max_transactions,
            num_vector_contexts=params.num_vector_contexts,
            request_fifo_depth=params.request_fifo_depth,
            fhc_latency=params.fhc_latency,
            bus_turnaround=params.bus_turnaround,
            bypass_paths=params.bypass_paths,
            row_policy=params.row_policy,
            issue_interval=params.issue_interval,
            sim_mode=params.sim_mode,
        )

"""The simulation facade: one front door for building and running systems.

Callers historically imported :class:`~repro.pva.system.PVAMemorySystem`
and the baseline classes directly and wired them up by hand.  This module
replaces that with a single **registry of system names** and two
keyword-only entry points:

* :func:`build_system` — construct any registered memory system from a
  :class:`~repro.params.SystemParams`;
* :func:`simulate` — run a command trace through a named system and
  return its :class:`~repro.sim.stats.RunResult`.

The four paper systems are pre-registered::

    from repro import simulate, SystemParams
    from repro.kernels import build_trace, kernel_by_name

    params = SystemParams()
    trace = build_trace(kernel_by_name("copy"), stride=4, params=params)
    result = simulate(trace, params, system="pva-sdram")

New systems (alternative DRAM technologies, research variants) register
through :func:`register_system` and immediately become available to the
experiment engine, the grid runner and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.baselines import (
    CacheLineSerialSDRAM,
    GatheringSerialSDRAM,
    make_pva_sram,
)
from repro.errors import ConfigurationError
from repro.params import SystemParams
from repro.pva import PVAMemorySystem
from repro.sim import RunResult

__all__ = [
    "SystemEntry",
    "available_systems",
    "system_entry",
    "register_system",
    "unregister_system",
    "build_system",
    "simulate",
    "clear_caches",
]


def clear_caches() -> None:
    """Release every process-wide simulation memo.

    Three live today: the compiled FirstHit PLAs
    (:func:`repro.core.pla.shared_k1_pla`), the broadcast-time hit
    schedules (:mod:`repro.pva.schedule`), and the structure-of-arrays
    broadcast tables (:func:`repro.pva.soa.broadcast_schedules`).  All
    are pure value caches — dropping them can never change results, only
    cost the next call a recompute — so this is safe at any point.  The
    experiment engine calls it when a worker pool shuts down, bounding
    memory growth of long-lived sweep processes.
    """
    from repro.core.pla import shared_k1_pla
    from repro.pva.schedule import clear_schedule_cache
    from repro.pva.soa import clear_soa_cache

    shared_k1_pla.cache_clear()
    clear_schedule_cache()
    clear_soa_cache()


@dataclass(frozen=True)
class SystemEntry:
    """One registered memory system.

    ``alignment_free`` marks systems whose cycle counts do not depend on
    the relative vector alignment (the serial baselines: their cost
    models see only addresses-per-command).  The experiment engine uses
    the flag to evaluate such systems once per (kernel, stride) and share
    the result across alignments.
    """

    name: str
    factory: Callable[[SystemParams], object]
    description: str = ""
    alignment_free: bool = False


_REGISTRY: Dict[str, SystemEntry] = {}


def register_system(
    name: str,
    factory: Callable[[SystemParams], object],
    *,
    description: str = "",
    alignment_free: bool = False,
    overwrite: bool = False,
) -> SystemEntry:
    """Register a memory-system factory under ``name``.

    The factory takes a :class:`SystemParams` and returns an object with
    the :class:`~repro.sim.runner.MemorySystem` protocol (``run(trace,
    capture_data=...) -> RunResult``).
    """
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"system {name!r} is already registered; pass overwrite=True "
            "to replace it"
        )
    entry = SystemEntry(
        name=name,
        factory=factory,
        description=description,
        alignment_free=alignment_free,
    )
    _REGISTRY[name] = entry
    return entry


def unregister_system(name: str, *, missing_ok: bool = False) -> None:
    """Remove ``name`` from the registry.

    Used by the fault-injection harness (:mod:`repro.faults`) to clean
    up its ``fault-*`` registrations; unknown names raise
    ``ConfigurationError`` unless ``missing_ok`` is set.
    """
    if name not in _REGISTRY:
        if missing_ok:
            return
        raise ConfigurationError(
            f"unknown memory system {name!r}; available: "
            f"{sorted(_REGISTRY)}"
        )
    del _REGISTRY[name]


def available_systems() -> Tuple[str, ...]:
    """Names of every registered memory system, in registration order."""
    return tuple(_REGISTRY)


def system_entry(name: str) -> SystemEntry:
    """The registry entry for ``name``; raises ``ConfigurationError`` for
    unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown memory system {name!r}; available: "
            f"{sorted(_REGISTRY)}"
        ) from None


def build_system(name: str = "pva-sdram", params: Optional[SystemParams] = None):
    """Construct a registered memory system.

    >>> system = build_system("pva-sdram", SystemParams())
    >>> system.run(trace).cycles  # doctest: +SKIP
    """
    return system_entry(name).factory(params or SystemParams())


def simulate(
    trace: Sequence,
    params: Optional[SystemParams] = None,
    *,
    system: str = "pva-sdram",
    capture_data: bool = False,
) -> RunResult:
    """Run ``trace`` through a named memory system.

    A fresh system instance is built per call, so repeated calls are
    independent (no carried-over row state or statistics).
    """
    instance = build_system(system, params)
    return instance.run(trace, capture_data=capture_data)


# --------------------------------------------------------------------- #
# The paper's four systems (section 6.1).
# --------------------------------------------------------------------- #

register_system(
    "pva-sdram",
    lambda p: PVAMemorySystem(p),
    description="the paper's prototype: PVA unit over interleaved SDRAM",
)
register_system(
    "pva-sram",
    lambda p: make_pva_sram(p),
    description="the PVA controller over idealized single-cycle SRAM",
)
register_system(
    "cacheline-serial",
    lambda p: CacheLineSerialSDRAM(p),
    description="conventional cache-line-fill memory system",
    alignment_free=True,
)
register_system(
    "gathering-serial",
    lambda p: GatheringSerialSDRAM(p),
    description="pipelined gathering vector unit (CVMS-class)",
    alignment_free=True,
)

"""A set-associative, write-back/write-allocate L2 cache model.

Chapter 1: "Though modern processors generate memory operations at
several granularities, such operations are filtered through the cache and
the real memory accesses are done by the cache controllers at cacheline
grain size."  This model is that filter: scalar accesses go in, line
fills and write-backs come out.

It also quantifies the paper's *cache pollution* argument: for a strided
application vector only ``line_words / stride`` of each fetched line is
useful, so large strides both thrash the cache and waste bus bandwidth —
the numbers `utilization()` reports.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.params import is_power_of_two

__all__ = ["CacheStats", "L2Cache"]


@dataclass
class CacheStats:
    """Access and traffic counters."""

    hits: int = 0
    misses: int = 0
    fills: int = 0
    writebacks: int = 0
    #: Distinct words actually touched in filled lines (for pollution
    #: accounting).
    words_used: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def utilization(self, line_words: int) -> float:
        """Fraction of fetched words the processor actually used —
        chapter 1's 'poor cache utilization' number."""
        fetched = self.fills * line_words
        if fetched == 0:
            return 0.0
        return min(1.0, self.words_used / fetched)


class _Line:
    __slots__ = ("tag", "dirty", "touched")

    def __init__(self, tag: int):
        self.tag = tag
        self.dirty = False
        self.touched: Set[int] = set()


class L2Cache:
    """Set-associative cache with LRU replacement, write-back and
    write-allocate — the policy the paper assumes for the L2
    (section 5.2.4 relies on write-allocate separating same-line writes
    with a read)."""

    def __init__(
        self,
        total_words: int = 1 << 16,  # 256 KB of 4-byte words
        associativity: int = 4,
        line_words: int = 32,
    ):
        if not is_power_of_two(total_words):
            raise ConfigurationError(
                f"total_words must be a power of two, got {total_words}"
            )
        if not is_power_of_two(line_words):
            raise ConfigurationError(
                f"line_words must be a power of two, got {line_words}"
            )
        if associativity < 1:
            raise ConfigurationError("associativity must be >= 1")
        lines = total_words // line_words
        if lines % associativity:
            raise ConfigurationError(
                f"{lines} lines do not divide into ways of {associativity}"
            )
        self.total_words = total_words
        self.associativity = associativity
        self.line_words = line_words
        self.num_sets = lines // associativity
        self._line_bits = line_words.bit_length() - 1
        # Per set: OrderedDict tag -> _Line, LRU first.
        self._sets: List["OrderedDict[int, _Line]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()

    # ----------------------------------------------------------------- #

    def _locate(self, address: int) -> Tuple[int, int, int]:
        line_address = address >> self._line_bits
        set_index = line_address % self.num_sets
        tag = line_address // self.num_sets
        return line_address, set_index, tag

    def line_base(self, address: int) -> int:
        """Word address of the start of the line containing ``address``."""
        return (address >> self._line_bits) << self._line_bits

    def access(
        self, address: int, is_write: bool = False
    ) -> Tuple[bool, Optional[int]]:
        """One scalar access.

        Returns ``(hit, writeback_line_base)``: on a miss the line is
        allocated (write-allocate) and, if the victim was dirty, its base
        address is returned so the front end can issue the write-back.
        """
        line_address, set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        offset = address & (self.line_words - 1)
        line = ways.get(tag)
        if line is not None:
            ways.move_to_end(tag)
            self.stats.hits += 1
            if offset not in line.touched:
                line.touched.add(offset)
                self.stats.words_used += 1
            if is_write:
                line.dirty = True
            return True, None
        # Miss: fill, possibly evicting the LRU way.
        self.stats.misses += 1
        self.stats.fills += 1
        writeback = None
        if len(ways) >= self.associativity:
            victim_tag, victim = ways.popitem(last=False)
            if victim.dirty:
                self.stats.writebacks += 1
                victim_line_address = victim_tag * self.num_sets + set_index
                writeback = victim_line_address << self._line_bits
        line = _Line(tag)
        line.touched.add(offset)
        self.stats.words_used += 1
        if is_write:
            line.dirty = True
        ways[tag] = line
        return False, writeback

    def flush(self) -> List[int]:
        """Write back every dirty line; return their base addresses."""
        writebacks: List[int] = []
        for set_index, ways in enumerate(self._sets):
            for tag, line in ways.items():
                if line.dirty:
                    line_address = tag * self.num_sets + set_index
                    writebacks.append(line_address << self._line_bits)
                    line.dirty = False
                    self.stats.writebacks += 1
        return writebacks

    def contains(self, address: int) -> bool:
        _, set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    @property
    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)

"""L2 cache substrate: the filter between the processor and the memory
controller (chapter 1's motivation, and the paper's future-work
full-program functional simulation)."""

from repro.cache.l2 import CacheStats, L2Cache
from repro.cache.frontend import CacheFrontEnd, ScalarAccess

__all__ = ["L2Cache", "CacheStats", "CacheFrontEnd", "ScalarAccess"]

"""Cache front end: scalar access streams -> memory-controller commands.

This is the machinery chapter 1 describes: the processor issues loads and
stores; the cache filters them; the memory controller sees only
cache-line-grain traffic.  Feeding a strided loop through it produces the
"conventional system" command stream — every miss a unit-stride line
fill, every eviction a write-back — which can then be run on any of the
simulated memory systems and compared against the PVA's gathered
commands for the same loop.

The comparison quantifies both halves of the paper's motivation:

* **bus traffic**: fills x line size versus the elements actually used;
* **cache pollution**: `L2Cache.stats.utilization()`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.cache.l2 import L2Cache
from repro.params import SystemParams
from repro.types import AccessType, Vector, VectorCommand

__all__ = ["ScalarAccess", "CacheFrontEnd"]


@dataclass(frozen=True)
class ScalarAccess:
    """One processor load/store of a single word."""

    address: int
    is_write: bool = False


class CacheFrontEnd:
    """Filters a scalar access stream through an L2 and emits the
    line-grain command trace the memory controller would see."""

    def __init__(
        self,
        params: Optional[SystemParams] = None,
        cache: Optional[L2Cache] = None,
    ):
        self.params = params or SystemParams()
        self.cache = cache or L2Cache(
            line_words=self.params.cache_line_words
        )

    def feed(self, accesses: Iterable[ScalarAccess]) -> List[VectorCommand]:
        """Run the accesses; return the memory commands in issue order
        (fills as unit-stride reads, write-backs as unit-stride writes)."""
        line_words = self.cache.line_words
        commands: List[VectorCommand] = []
        for access in accesses:
            hit, writeback = self.cache.access(
                access.address, access.is_write
            )
            if writeback is not None:
                commands.append(
                    VectorCommand(
                        vector=Vector(
                            base=writeback, stride=1, length=line_words
                        ),
                        access=AccessType.WRITE,
                        tag=f"writeback[{writeback}]",
                    )
                )
            if not hit:
                commands.append(
                    VectorCommand(
                        vector=Vector(
                            base=self.cache.line_base(access.address),
                            stride=1,
                            length=line_words,
                        ),
                        access=AccessType.READ,
                        tag=f"fill[{access.address}]",
                    )
                )
        return commands

    def drain(self) -> List[VectorCommand]:
        """Flush dirty lines at the end of a region of interest."""
        line_words = self.cache.line_words
        return [
            VectorCommand(
                vector=Vector(base=base, stride=1, length=line_words),
                access=AccessType.WRITE,
                tag=f"flush[{base}]",
            )
            for base in self.cache.flush()
        ]

    # ----------------------------------------------------------------- #
    # Convenience generators
    # ----------------------------------------------------------------- #

    @staticmethod
    def strided_loop(
        base: int, stride: int, length: int, is_write: bool = False
    ) -> List[ScalarAccess]:
        """The scalar accesses of ``for i: touch x[i * stride]``."""
        return [
            ScalarAccess(address=base + i * stride, is_write=is_write)
            for i in range(length)
        ]

    def traffic_words(self, commands: List[VectorCommand]) -> int:
        """Bus traffic in words for a line-grain command trace."""
        return sum(c.vector.length for c in commands)

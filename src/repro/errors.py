"""Exception hierarchy for the PVA reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration mistakes from protocol-level
simulation faults.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "VectorSpecError",
    "AddressError",
    "ProtocolError",
    "SchedulingError",
    "TimingViolation",
    "TLBMissError",
    "CapacityError",
    "SimulationTimeout",
    "EngineError",
    "PointFailedError",
    "IncompleteBatchError",
    "BatchAbortedError",
    "CacheIntegrityError",
    "ServiceError",
    "AdmissionError",
    "QueueFullError",
    "QuotaExceededError",
    "JobNotFoundError",
    "JobStateError",
    "JournalError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A memory-system or experiment configuration is inconsistent.

    Raised eagerly at construction time (e.g. a bank count that is not a
    power of two, or a cache line smaller than one word) so that simulations
    never start from an invalid geometry.
    """


class VectorSpecError(ReproError):
    """A base-stride vector tuple ``<B, S, L>`` is malformed.

    Examples: non-positive length, negative base address, or a stride the
    word-interleaved hardware cannot express.
    """


class AddressError(ReproError):
    """An address fell outside the simulated physical address space."""


class ProtocolError(ReproError):
    """The vector-bus protocol was violated.

    Raised when, for instance, a ``STAGE_READ`` is issued for a transaction
    that is not complete, or a transaction id is reused while outstanding.
    """


class SchedulingError(ReproError):
    """Internal invariant of the access scheduler was broken.

    These indicate bugs in the simulator rather than user error; they should
    never surface during a correctly-configured run.
    """


class TimingViolation(SchedulingError):
    """An SDRAM command was issued while a restimer held the resource busy."""


class TLBMissError(ReproError):
    """A virtual address was not mapped by the memory-controller TLB."""


class CapacityError(ReproError):
    """A fixed-capacity hardware structure (FIFO, register file, staging
    buffer) was pushed beyond its configured size."""


class SimulationTimeout(ReproError):
    """A simulation watchdog tripped: the run exceeded its cycle budget
    or wall-clock deadline.

    Raised by :class:`repro.sim.runner.Watchdog` from inside the run
    loop of every memory system, so an infinite-loop scheduler bug (or a
    deliberately injected cycle burner) becomes a contained, catchable
    error instead of a hang.
    """


class EngineError(ReproError):
    """Base class for failures of the experiment engine itself (as
    opposed to errors raised by the simulated systems it runs)."""


class PointFailedError(EngineError):
    """An experiment point exhausted its retry budget.

    Raised by :meth:`repro.engine.ExperimentEngine.run` in
    ``on_error="raise"`` mode when a point's terminal failure has no
    original exception object to re-raise — a per-point timeout or a
    worker process that died mid-task.
    """


class IncompleteBatchError(EngineError):
    """``ExperimentEngine.run`` finished its stream but one or more
    points have neither a cycle count nor a recorded failure.

    This indicates an engine bug (a dropped task id), never user error;
    it replaces a bare ``assert`` so the check survives ``python -O``.
    """


class BatchAbortedError(EngineError):
    """``ExperimentEngine.run`` was stopped early by its ``abort``
    callback (job cancellation or a service deadline).

    Every point that completed before the abort has already been
    written to the result cache, so a re-submitted batch resumes from
    those entries instead of recomputing them.
    """


class CacheIntegrityError(ReproError):
    """A document offered to :meth:`repro.engine.ResultCache.put` is not
    a valid result record (missing or malformed ``cycles``)."""


class ServiceError(ReproError):
    """Base class for failures of the simulation service daemon
    (:mod:`repro.service`), as opposed to engine or simulator errors."""


class AdmissionError(ServiceError):
    """Base class for job submissions the service refuses to accept.

    Maps to HTTP 429 at the service boundary: the request was valid but
    the daemon is protecting itself — retry later, with backoff.
    """


class QueueFullError(AdmissionError):
    """The bounded job queue is at capacity; the submission was
    rejected rather than buffered without limit."""


class QuotaExceededError(AdmissionError):
    """The submitting tenant already holds its full share of queued and
    running jobs."""


class JobNotFoundError(ServiceError):
    """No job with the requested id exists in the service's registry
    (maps to HTTP 404)."""


class JobStateError(ServiceError):
    """A job operation is invalid in the job's current state — e.g.
    cancelling a job that already reached a terminal state."""


class JournalError(ServiceError):
    """The write-ahead job journal could not be written or replayed.

    Unreadable *individual* records are skipped and counted during
    replay (a SIGKILL can tear the final line); this error is reserved
    for structural failures such as an unwritable journal directory.
    """
